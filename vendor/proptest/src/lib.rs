//! Vendored mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`, `prop_map`, and
//! `prop_assert*`.
//!
//! Compared to upstream proptest there is no shrinking and no persisted
//! failure regressions: each test runs `cases` deterministic samples drawn
//! from an RNG seeded by the test's name, so failures reproduce exactly
//! from one run to the next. That trade keeps the dependency graph fully
//! offline-resolvable while preserving the randomized-coverage intent of
//! the property suites.

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// An RNG whose stream is a pure function of `name` — typically
        /// the property test's function name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name picks the stream.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index range must be non-empty");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe strategy helper backing [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among equally-weighted boxed alternatives.
    pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.index(self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a whole-domain default strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.start < self.size.end,
                "empty vec length range"
            );
            let len = self.size.start + rng.index(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -4i32..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn map_and_tuples_compose(v in (0u8..4, 10u64..20).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!((10..24).contains(&v));
        }

        #[test]
        fn oneof_picks_each_arm(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn vec_lengths_stay_in_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(x in any::<u64>()) {
            let _ = x;
        }
    }
}
