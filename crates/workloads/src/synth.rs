//! The program synthesiser: turns a [`WorkloadSpec`] into a runnable
//! SES-64 program.
//!
//! ## Register conventions
//!
//! | Register | Role |
//! |---|---|
//! | `r1`  | outer-loop down-counter |
//! | `r2`  | live output accumulator (periodically `out`) |
//! | `r3`  | base of the cache-stressing array **A** |
//! | `r4`  | base of the branch-pattern array **B** (random-initialised) |
//! | `r5`  | byte index into A |
//! | `r6`  | A index mask (working set − 1) |
//! | `r7`  | constant 1 |
//! | `r8`  | current pattern value (loaded from B each iteration) |
//! | `r9`  | control-block scratch (branch tests, call gates) |
//! | `r10`–`r13` | live accumulators, folded into `r2` each iteration |
//! | `r52` | far-load gate mask constant |
//! | `r53` | deep-load gate mask constant (31) |
//! | `r54` | base of the cold-streaming deep region **E** |
//! | `r55` | deep-region byte index (never wraps) |
//! | `r14`, `r15`, `r32`–`r51` | per-block temporaries (straight-line blocks are register-renamed and interleaved for ILP, as an IA-64 compiler would schedule them) |
//! | `r16` | short-distance dead register (dead loads) |
//! | `r17`–`r19` | dead chain (one FDD def, two TDD defs) |
//! | `r24` | slow-killed dead register (written every 8th iteration) |
//! | `r20`–`r23`, `r56`–`r61` | procedure scratch banks (return-killed dead registers) |
//! | `r62` | dead-store index mask constant (511) |
//! | `r63` | second call-gate phase constant (4) |
//! | `r25` | constant 15 (call / output gate mask) |
//! | `r26` | constant 7 (slow-dead gate mask) |
//! | `r27` | byte index into B / store regions |
//! | `r28` | B index mask (4095) |
//! | `r29` | base of the never-read store region **C** (dead stores) |
//! | `r30` | base of the read-back store region **D** (live stores) |
//! | `r31` | link register |
//!
//! Predicates: `p1` loop, `p2` data-dependent branches, `p3` call/output
//! gate, `p4` predication, `p5` slow-dead gate, `p6` far-load gate, `p7`
//! deep-load gate.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ses_isa::{Instruction, Opcode, Program, ProgramBuilder};
use ses_types::{Addr, Pred, Reg};

use crate::spec::{Category, WorkloadSpec};

const A_BASE: i32 = 0x10_0000;
const B_BASE: i32 = 0x8000;
const C_BASE: i32 = 0x4_0000;
const D_BASE: i32 = 0x6_0000;
const E_BASE: i32 = 0x1000_0000;
const B_WORDS: usize = 512;
const B_MASK: i32 = 4095;

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn p(n: u8) -> Pred {
    Pred::new(n)
}

/// One of the shuffled per-iteration block kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    Arith,
    LoadLive(u8),
    LoadFar(u8),
    LoadDeep(u8),
    LoadDead(u8),
    StoreLive,
    StoreDead,
    DeadChain,
    DeadSlow,
    Neutral,
    Predicated,
    Branchy,
    Call(u8),
}

fn block_list(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<Block> {
    let m = &spec.mix;
    let mut blocks = Vec::new();
    for _ in 0..m.arith {
        blocks.push(Block::Arith);
    }
    for i in 0..m.load_live {
        blocks.push(Block::LoadLive(i));
    }
    for i in 0..m.load_far {
        blocks.push(Block::LoadFar(i));
    }
    for i in 0..m.load_deep {
        blocks.push(Block::LoadDeep(i));
    }
    for i in 0..m.load_dead {
        blocks.push(Block::LoadDead(i));
    }
    for _ in 0..m.store_live {
        blocks.push(Block::StoreLive);
    }
    for _ in 0..m.store_dead {
        blocks.push(Block::StoreDead);
    }
    for _ in 0..m.dead_chain {
        blocks.push(Block::DeadChain);
    }
    for _ in 0..m.dead_slow {
        blocks.push(Block::DeadSlow);
    }
    for _ in 0..m.neutral {
        blocks.push(Block::Neutral);
    }
    for _ in 0..m.predicated {
        blocks.push(Block::Predicated);
    }
    for _ in 0..m.branchy {
        blocks.push(Block::Branchy);
    }
    for i in 0..m.call {
        blocks.push(Block::Call(i));
    }
    blocks.shuffle(rng);
    blocks
}

/// Emits a straight-line block as an instruction list using temporary
/// register `t`, so blocks can be interleaved for instruction-level
/// parallelism without hazards.
fn straight_block(block: Block, t: Reg, fp: bool, rng: &mut StdRng) -> Vec<Instruction> {
    match block {
        Block::Arith => {
            let acc = r(10 + rng.gen_range(0..4));
            let mut v = vec![
                Instruction::movi(t, rng.gen_range(1..1000)),
                Instruction::add(t, t, r(8)),
            ];
            if fp {
                // FP-like codes carry longer-latency chains.
                v.push(Instruction::mul(t, t, t));
            }
            v.push(Instruction::add(acc, acc, t));
            v
        }
        Block::LoadLive(i) => {
            // Hot-region load: L0-resident after warm-up.
            let acc = r(10 + (i % 4));
            let off = (i as i32) * 64;
            vec![
                Instruction::add(t, r(30), r(27)),
                Instruction::ld(t, t, off),
                Instruction::add(acc, acc, t),
            ]
        }
        Block::LoadFar(i) => {
            // Far load: walks the large working set, gated by the
            // iteration counter so the miss *frequency* is a spec knob
            // (p6 true when (counter & far_gate_mask) == 0).
            let acc = r(10 + (i % 4));
            let off = (i as i32) * 8;
            vec![
                Instruction::alu(Opcode::And, t, r(1), r(52)),
                Instruction::cmp_eq(p(6), t, Reg::ZERO),
                Instruction::add(t, r(3), r(5)).guarded_by(p(6)),
                Instruction::ld(t, t, off).guarded_by(p(6)),
                Instruction::add(acc, acc, t).guarded_by(p(6)),
            ]
        }
        Block::LoadDeep(i) => {
            // Deep load: fires every 64th iteration and streams cold lines
            // (touched once) from main memory -- the occasional critical
            // miss every real workload exhibits (p7 gate).
            let acc = r(10 + (i % 4));
            vec![
                Instruction::alu(Opcode::And, t, r(1), r(53)),
                Instruction::cmp_eq(p(7), t, Reg::ZERO),
                Instruction::add(t, r(54), r(55)).guarded_by(p(7)),
                Instruction::ld(t, t, (i as i32) * 8).guarded_by(p(7)),
                Instruction::add(acc, acc, t).guarded_by(p(7)),
            ]
        }
        Block::LoadDead(i) => {
            // Destination r16 is written by every dead load and never
            // read: each def but the last dies within the iteration (short
            // PET distance), the last at the next iteration.
            let off = (i as i32) * 64 + 8;
            vec![
                Instruction::add(t, r(30), r(27)),
                Instruction::ld(r(16), t, off),
            ]
        }
        Block::StoreLive => vec![
            Instruction::add(t, r(30), r(27)),
            Instruction::st(t, r(2), 0),
            Instruction::ld(t, t, 0),
            Instruction::add(r(11), r(11), t),
        ],
        Block::StoreDead => vec![
            // Region C is never loaded: these stores are dynamically dead,
            // tracked via memory. The narrow index mask (r62 = 511) makes
            // the same word be re-stored every 64 iterations, giving dead
            // stores the long kill distances of Figure 3's memory curve.
            Instruction::alu(Opcode::And, t, r(27), r(62)),
            Instruction::add(t, t, r(29)),
            Instruction::st(t, r(10), 0),
        ],
        Block::DeadChain => vec![
            // r19 is never read (FDD); r17/r18 feed only dead consumers
            // (TDD).
            Instruction::movi(r(17), rng.gen_range(1..100)),
            Instruction::add(r(18), r(17), r(7)),
            Instruction::mul(r(19), r(18), r(18)),
        ],
        Block::DeadSlow => vec![
            // Written only when (counter & 7) == 0, so the overwrite
            // arrives 8 iterations later: a medium PET distance.
            Instruction::alu(Opcode::And, t, r(1), r(26)),
            Instruction::cmp_eq(p(5), t, Reg::ZERO),
            Instruction::movi(r(24), rng.gen_range(1..100)).guarded_by(p(5)),
        ],
        Block::Neutral => {
            // FP codes carry more prefetches; INT more plain no-ops.
            let roll: f64 = rng.gen();
            vec![if roll < if fp { 0.4 } else { 0.1 } {
                Instruction::prefetch(r(3), rng.gen_range(0..64) * 64)
            } else if roll < 0.55 {
                Instruction::hint()
            } else {
                Instruction::nop()
            }]
        }
        Block::Predicated => vec![
            // p4 follows a data bit: roughly half the guarded adds are
            // falsely predicated.
            Instruction::alu(Opcode::And, t, r(8), r(7)),
            Instruction::cmp_eq(p(4), t, Reg::ZERO),
            Instruction::add(r(12), r(12), r(7)).guarded_by(p(4)),
        ],
        Block::Branchy | Block::Call(_) => unreachable!("control blocks are emitted separately"),
    }
}

/// The rotating per-block temporary pool.
const TEMP_POOL: [u8; 20] = [
    32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51,
];

/// Emits a control block (branch or call) in place; returns a function
/// label for call blocks.
fn emit_control(
    b: &mut ProgramBuilder,
    block: Block,
    rng: &mut StdRng,
) -> Option<(ses_isa::Label, u8)> {
    match block {
        Block::Branchy => {
            // Taken iff the pattern value clears a threshold. Most branches
            // are heavily skewed (predictable, like real codes); a minority
            // sit near 50/50 and drive mispredictions.
            let threshold = match rng.gen_range(0..10) {
                0..=4 => rng.gen_range(8..24),    // rarely taken
                5..=8 => rng.gen_range(232..248), // almost always taken
                _ => rng.gen_range(96..160),      // hard to predict
            };
            let skip = b.new_label();
            b.push(Instruction::addi(r(9), r(8), -threshold));
            b.push(Instruction::cmp_lt(p(2), r(9), Reg::ZERO));
            b.branch(p(2), skip);
            b.push(Instruction::add(r(13), r(13), r(7)));
            b.push(Instruction::hint());
            b.bind(skip);
            None
        }
        Block::Call(i) => {
            // Call cadences stagger the lifetimes of the return-killed
            // register banks (Figure 3's long-distance FDD population):
            // function 0 runs every 8th iteration, function 1 every 16th,
            // function 2 every 64th.
            let label = b.new_label();
            match i % 3 {
                0 => {
                    b.push(Instruction::alu(Opcode::And, r(9), r(1), r(26)));
                    b.push(Instruction::cmp_eq(p(3), r(9), Reg::ZERO));
                }
                1 => {
                    b.push(Instruction::alu(Opcode::And, r(9), r(1), r(25)));
                    b.push(Instruction::cmp_eq(p(3), r(9), r(63)));
                }
                _ => {
                    b.push(Instruction::alu(Opcode::And, r(9), r(1), r(53)));
                    b.push(Instruction::cmp_eq(p(3), r(9), Reg::ZERO));
                }
            }
            b.call_guarded(p(3), r(31), label);
            Some((label, i))
        }
        _ => unreachable!("straight-line blocks are emitted separately"),
    }
}

/// Synthesises a runnable program from a workload specification.
///
/// The same spec always produces the identical program (all randomness is
/// drawn from `spec.seed`).
///
/// # Panics
///
/// Panics if the spec fails [`WorkloadSpec::validate`].
pub fn synthesize(spec: &WorkloadSpec) -> Program {
    spec.validate().expect("invalid workload spec");

    // Pass 1: count instructions per iteration so we can hit the dynamic
    // target. Uses a throwaway builder with the same RNG stream.
    let body_len = {
        let mut scratch = ProgramBuilder::new();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        emit_iteration(&mut scratch, spec, &mut rng, None);
        scratch.len() as u64
    };
    // +4 loop-control instructions per iteration are inside
    // emit_iteration, so body_len is the full per-iteration cost.
    let iters = (spec.target_dynamic / body_len.max(1)).max(4);

    let mut b = ProgramBuilder::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // --- prologue: constants and bases ---
    b.push(Instruction::movi(r(1), iters as i32));
    b.push(Instruction::movi(r(2), 0));
    b.push(Instruction::movi(r(3), A_BASE));
    b.push(Instruction::movi(r(4), B_BASE));
    b.push(Instruction::movi(r(5), 0));
    b.push(Instruction::movi(r(6), (spec.working_set_bytes - 1) as i32));
    b.push(Instruction::movi(r(7), 1));
    b.push(Instruction::movi(r(25), 15));
    b.push(Instruction::movi(r(26), 7));
    b.push(Instruction::movi(r(27), 0));
    b.push(Instruction::movi(r(28), B_MASK));
    b.push(Instruction::movi(r(29), C_BASE));
    b.push(Instruction::movi(r(30), D_BASE));
    b.push(Instruction::movi(r(52), spec.far_gate_mask as i32));
    b.push(Instruction::movi(r(53), 63));
    b.push(Instruction::movi(r(54), E_BASE));
    b.push(Instruction::movi(r(55), 0));
    b.push(Instruction::movi(r(62), 511));
    b.push(Instruction::movi(r(63), 4));

    let loop_top = b.new_label();
    b.bind(loop_top);
    let func_labels = emit_iteration(&mut b, spec, &mut rng, Some(loop_top));

    // --- epilogue: final output and halt ---
    b.push(Instruction::out(r(2)));
    b.push(Instruction::halt());

    // --- functions ---
    // Each function writes an independent bank of scratch registers that
    // nothing reads; the same function's next activation (8 iterations
    // later) overwrites them. These are the return-attributed FDD
    // registers whose coverage requires large PET buffers (Figure 3).
    const BANKS: [&[u8]; 3] = [&[20, 21, 22, 23, 56, 57], &[58, 59, 60, 61], &[14, 15]];
    for (label, fidx) in func_labels {
        b.bind(label);
        for (k, &reg) in BANKS[fidx as usize % BANKS.len()].iter().enumerate() {
            b.push(Instruction::movi(r(reg), 11 + fidx as i32 + k as i32));
        }
        // A visible side effect so the call itself is live.
        b.push(Instruction::add(r(2), r(2), r(7)));
        b.push(Instruction::ret(r(31)));
    }

    // --- data: random pattern array B ---
    let mut data_rng = StdRng::seed_from_u64(spec.seed ^ 0xB157_F00D);
    let pattern: Vec<u64> = (0..B_WORDS).map(|_| data_rng.gen_range(0..256)).collect();
    b.data_segment(Addr::new(B_BASE as u64), pattern);

    b.build().expect("synthesised program must build")
}

/// Emits one loop iteration: pattern load, interleaved straight-line
/// blocks, control blocks, accumulator fold, gated call/output, index
/// update and loop control. Returns labels for functions to be emitted
/// after the main body, with their indices.
fn emit_iteration(
    b: &mut ProgramBuilder,
    spec: &WorkloadSpec,
    rng: &mut StdRng,
    loop_top: Option<ses_isa::Label>,
) -> Vec<(ses_isa::Label, u8)> {
    let mut funcs = Vec::new();
    let fp = spec.category == Category::FloatingPoint;

    // Pattern load: r8 = B[r27].
    b.push(Instruction::add(r(9), r(4), r(27)));
    b.push(Instruction::ld(r(8), r(9), 0));
    b.push(Instruction::addi(r(27), r(27), 8));
    b.push(Instruction::alu(Opcode::And, r(27), r(27), r(28)));

    let blocks = block_list(spec, rng);
    let mut straight: Vec<Vec<Instruction>> = Vec::new();
    let mut control: Vec<Block> = Vec::new();
    let mut temp_i = 0usize;
    for block in blocks {
        match block {
            Block::Branchy | Block::Call(_) => control.push(block),
            other => {
                // Neutral blocks never touch their temporary; skip them
                // when assigning pool registers so the blocks that do use
                // temporaries never collide (a collision would corrupt
                // gating predicates computed through the temp).
                let t = r(TEMP_POOL[temp_i % TEMP_POOL.len()]);
                if other != Block::Neutral {
                    temp_i += 1;
                    assert!(
                        temp_i <= TEMP_POOL.len(),
                        "block mix exceeds the temporary pool; raise TEMP_POOL"
                    );
                }
                straight.push(straight_block(other, t, fp, rng));
            }
        }
    }

    // Interleave the straight-line blocks round-robin within small
    // windows: consecutive instructions come from a few independent
    // blocks, exposing moderate ILP to the in-order issue logic the way a
    // compiler schedule would, while keeping issue (not fetch) the
    // steady-state bottleneck -- the regime the paper's 1.2-IPC machine
    // operates in.
    const INTERLEAVE_WINDOW: usize = 3;
    for window in straight.chunks(INTERLEAVE_WINDOW) {
        let mut round = 0;
        loop {
            let mut any = false;
            for list in window {
                if let Some(&instr) = list.get(round) {
                    b.push(instr);
                    any = true;
                }
            }
            if !any {
                break;
            }
            round += 1;
        }
    }

    for block in control {
        if let Some(f) = emit_control(b, block, rng) {
            funcs.push(f);
        }
    }

    // Fold the per-iteration accumulators into the output register.
    for acc in 10..14 {
        b.push(Instruction::add(r(2), r(2), r(acc)));
    }

    // Output gate shares p3's cadence when calls exist; otherwise compute it.
    if spec.mix.call == 0 {
        b.push(Instruction::alu(Opcode::And, r(9), r(1), r(25)));
        b.push(Instruction::cmp_eq(p(3), r(9), Reg::ZERO));
    }
    b.push(Instruction::out(r(2)).guarded_by(p(3)));

    // Advance the A index and the (unwrapped) deep-region index.
    b.push(Instruction::addi(r(5), r(5), spec.stride_bytes as i32));
    b.push(Instruction::alu(Opcode::And, r(5), r(5), r(6)));
    b.push(Instruction::addi(r(55), r(55), 4096));

    // Loop control.
    b.push(Instruction::addi(r(1), r(1), -1));
    b.push(Instruction::cmp_lt(p(1), Reg::ZERO, r(1)));
    match loop_top {
        Some(top) => {
            b.branch(p(1), top);
        }
        None => {
            // Pass-1 scratch: account for the branch without a target.
            b.push(Instruction::nop());
        }
    }
    funcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BlockMix;
    use ses_arch::Emulator;

    fn quick() -> WorkloadSpec {
        WorkloadSpec::quick("unit", 42)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(&quick());
        let b = synthesize(&quick());
        assert_eq!(a, b);
        let mut other = quick();
        other.seed = 43;
        assert_ne!(a, synthesize(&other), "different seed, different program");
    }

    #[test]
    fn program_runs_to_halt_near_target() {
        let spec = quick();
        let p = synthesize(&spec);
        let trace = Emulator::new(&p)
            .run(spec.target_dynamic * 3)
            .expect("golden run");
        assert!(trace.halted(), "program must halt");
        let n = trace.len() as u64;
        assert!(
            n > spec.target_dynamic / 2 && n < spec.target_dynamic * 2,
            "dynamic length {n} far from target {}",
            spec.target_dynamic
        );
        assert!(!trace.output().is_empty(), "program must emit output");
    }

    #[test]
    fn trace_has_all_phenomena() {
        let spec = quick();
        let p = synthesize(&spec);
        let trace = Emulator::new(&p).run(100_000).unwrap();
        let s = trace.stats();
        assert!(s.falsely_predicated > 0, "predication present");
        assert!(s.neutral > 0, "neutral instructions present");
        assert!(s.loads > 0 && s.stores > 0, "memory traffic present");
        assert!(s.cond_branches > 0, "branches present");
        assert!(
            s.taken_fraction() > 0.05 && s.taken_fraction() < 0.99,
            "branches must vary, got {}",
            s.taken_fraction()
        );
        assert!(s.calls > 0, "calls present");
        assert!(s.outputs > 1, "periodic output present");
    }

    #[test]
    fn working_set_is_respected() {
        let mut spec = quick();
        spec.working_set_bytes = 4096;
        let p = synthesize(&spec);
        let trace = Emulator::new(&p).run(100_000).unwrap();
        for e in trace.entries() {
            if let Some(a) = e.mem_read {
                let a = a.as_u64();
                if (A_BASE as u64..A_BASE as u64 + 0x10_0000).contains(&a) {
                    assert!(
                        a < A_BASE as u64 + 4096 + 4096,
                        "A access {a:#x} beyond working set + block offsets"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_store_region_is_never_loaded() {
        let p = synthesize(&quick());
        let trace = Emulator::new(&p).run(100_000).unwrap();
        let c_lo = C_BASE as u64;
        let c_hi = c_lo + 0x2_0000;
        assert!(
            trace
                .entries()
                .iter()
                .filter_map(|e| e.mem_read)
                .all(|a| !(c_lo..c_hi).contains(&a.as_u64())),
            "no load may touch the dead-store region"
        );
        assert!(
            trace
                .entries()
                .iter()
                .filter_map(|e| e.mem_written)
                .any(|a| (c_lo..c_hi).contains(&a.as_u64())),
            "dead stores must exist"
        );
    }

    #[test]
    fn zero_call_mix_still_outputs() {
        let mut spec = quick();
        spec.mix = BlockMix {
            call: 0,
            ..BlockMix::balanced()
        };
        let p = synthesize(&spec);
        let trace = Emulator::new(&p).run(100_000).unwrap();
        assert!(trace.halted());
        assert!(trace.stats().outputs > 0);
        assert_eq!(trace.stats().calls, 0);
    }

    #[test]
    fn output_differs_across_seeds() {
        let a = synthesize(&quick());
        let mut s2 = quick();
        s2.seed = 1234;
        let b = synthesize(&s2);
        let ta = Emulator::new(&a).run(100_000).unwrap();
        let tb = Emulator::new(&b).run(100_000).unwrap();
        assert_ne!(ta.output(), tb.output());
    }
}
