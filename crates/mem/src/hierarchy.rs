//! The three-level cache hierarchy of the modelled machine.

use serde::{Deserialize, Serialize};
use ses_types::{Addr, ConfigError};

use crate::cache::{Cache, CacheConfig, CacheSnapshot, LookupOutcome};

/// Which level serviced (or missed in) an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// First-level (8 KB) cache.
    L0,
    /// Second-level (256 KB) cache.
    L1,
    /// Third-level (10 MB) cache.
    L2,
    /// Main memory.
    Memory,
}

impl Level {
    /// All levels, closest first.
    pub const ALL: [Level; 4] = [Level::L0, Level::L1, Level::L2, Level::Memory];
}

/// The kind of access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-allocate).
    Store,
    /// Software prefetch (fills caches, latency not observed by the core).
    Prefetch,
}

/// Result of presenting one access to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles until data is available to the core.
    pub latency: u64,
    /// The level that supplied the data.
    pub hit_level: Level,
}

impl AccessResult {
    /// Whether the access missed in `level` (i.e. was serviced further
    /// away). Squash triggers use this: the paper's "load miss in the L1
    /// cache" is `missed_in(Level::L1)`.
    pub fn missed_in(&self, level: Level) -> bool {
        self.hit_level > level
    }
}

/// Configuration of the full hierarchy.
///
/// Defaults reproduce the paper's machine (§5): 8 KB L0 with 2-cycle hits,
/// 256 KB L1 with 10-cycle hits, 10 MB L2 with 25-cycle hits, and a
/// 200-cycle memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L0 geometry.
    pub l0: CacheConfig,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Flat main-memory latency in cycles.
    pub memory_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l0: CacheConfig {
                size_bytes: 8 * 1024,
                block_bytes: 64,
                associativity: 4,
                hit_latency: 2,
            },
            l1: CacheConfig {
                size_bytes: 256 * 1024,
                block_bytes: 128,
                associativity: 8,
                hit_latency: 10,
            },
            l2: CacheConfig {
                size_bytes: 10 * 1024 * 1024 / 8 * 8, // 10 MB, kept pow2-divisible
                block_bytes: 128,
                associativity: 10,
                hit_latency: 25,
            },
            memory_latency: 200,
        }
    }
}

/// Per-level hit/miss statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Hits observed at this level.
    pub hits: u64,
    /// Misses observed at this level.
    pub misses: u64,
}

/// The modelled L0/L1/L2 + memory hierarchy.
///
/// Inclusive fills: a miss at level *n* allocates the block at every level
/// from *n* down to L0 on the way back.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l0: Cache,
    l1: Cache,
    l2: Cache,
    config: HierarchyConfig,
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Hierarchy::try_new`]
    /// to handle configuration errors.
    pub fn new(config: HierarchyConfig) -> Self {
        Self::try_new(config).expect("invalid hierarchy configuration")
    }

    /// Builds the hierarchy, reporting configuration problems.
    ///
    /// # Errors
    ///
    /// Returns the first geometry error found, identifying the level.
    pub fn try_new(config: HierarchyConfig) -> Result<Self, ConfigError> {
        Ok(Hierarchy {
            l0: Cache::new(config.l0)
                .map_err(|e| ConfigError::new(format!("L0: {}", e.message())))?,
            l1: Cache::new(config.l1)
                .map_err(|e| ConfigError::new(format!("L1: {}", e.message())))?,
            l2: Cache::new(config.l2)
                .map_err(|e| ConfigError::new(format!("L2: {}", e.message())))?,
            config,
        })
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Presents an access and returns where it hit and the total latency.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let is_write = matches!(kind, AccessKind::Store);
        let mut latency = self.config.l0.hit_latency;
        if let LookupOutcome::Hit = self.l0.access(addr, is_write) {
            return AccessResult {
                latency,
                hit_level: Level::L0,
            };
        }
        latency = self.config.l1.hit_latency;
        if let LookupOutcome::Hit = self.l1.access(addr, is_write) {
            return AccessResult {
                latency,
                hit_level: Level::L1,
            };
        }
        latency = self.config.l2.hit_latency;
        if let LookupOutcome::Hit = self.l2.access(addr, is_write) {
            return AccessResult {
                latency,
                hit_level: Level::L2,
            };
        }
        AccessResult {
            latency: self.config.memory_latency,
            hit_level: Level::Memory,
        }
    }

    /// Whether `addr` is resident at the given level (no state change).
    pub fn probe(&self, addr: Addr, level: Level) -> bool {
        match level {
            Level::L0 => self.l0.probe(addr),
            Level::L1 => self.l1.probe(addr),
            Level::L2 => self.l2.probe(addr),
            Level::Memory => true,
        }
    }

    /// Statistics for one cache level.
    pub fn stats(&self, level: Level) -> LevelStats {
        let c = match level {
            Level::L0 => &self.l0,
            Level::L1 => &self.l1,
            Level::L2 => &self.l2,
            Level::Memory => {
                return LevelStats {
                    hits: self.l2.misses(),
                    misses: 0,
                }
            }
        };
        LevelStats {
            hits: c.hits(),
            misses: c.misses(),
        }
    }

    /// Clears statistics only, keeping contents (used after warm-up).
    pub fn reset_stats(&mut self) {
        self.l0.reset_stats();
        self.l1.reset_stats();
        self.l2.reset_stats();
    }

    /// Clears all cache contents and statistics.
    pub fn reset(&mut self) {
        self.l0.reset();
        self.l1.reset();
        self.l2.reset();
    }

    /// Captures a compact image of every level's contents and statistics.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l0: self.l0.snapshot(),
            l1: self.l1.snapshot(),
            l2: self.l2.snapshot(),
        }
    }

    /// Restores every level from a snapshot of an identically configured
    /// hierarchy.
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        self.l0.restore(&snapshot.l0);
        self.l1.restore(&snapshot.l1);
        self.l2.restore(&snapshot.l2);
    }
}

/// Compact image of the whole hierarchy (contents and statistics), from
/// [`Hierarchy::snapshot`].
#[derive(Debug, Clone)]
pub struct HierarchySnapshot {
    l0: CacheSnapshot,
    l1: CacheSnapshot,
    l2: CacheSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let h = Hierarchy::new(HierarchyConfig::default());
        assert_eq!(h.config().l0.hit_latency, 2);
        assert_eq!(h.config().l1.hit_latency, 10);
        assert_eq!(h.config().l2.hit_latency, 25);
        assert_eq!(h.config().l0.size_bytes, 8 * 1024);
    }

    #[test]
    fn cold_miss_goes_to_memory_then_near_hits() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let a = Addr::new(0x1_0000);
        let first = h.access(a, AccessKind::Load);
        assert_eq!(first.hit_level, Level::Memory);
        assert_eq!(first.latency, 200);
        assert!(first.missed_in(Level::L0));
        assert!(first.missed_in(Level::L1));

        let second = h.access(a, AccessKind::Load);
        assert_eq!(second.hit_level, Level::L0);
        assert_eq!(second.latency, 2);
        assert!(!second.missed_in(Level::L0));
    }

    #[test]
    fn l0_capacity_eviction_leaves_l1_hit() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let a = Addr::new(0);
        h.access(a, AccessKind::Load);
        // Blow out the 8KB L0 with 16KB of distinct blocks.
        for i in 1..=256u64 {
            h.access(Addr::new(i * 64), AccessKind::Load);
        }
        let back = h.access(a, AccessKind::Load);
        assert_eq!(back.hit_level, Level::L1, "L1 retains what L0 evicted");
        assert_eq!(back.latency, 10);
        assert!(back.missed_in(Level::L0));
        assert!(!back.missed_in(Level::L1));
    }

    #[test]
    fn missed_in_semantics_match_paper_triggers() {
        // An access serviced by L2 is "an L1 load miss" in paper terms.
        let r = AccessResult {
            latency: 25,
            hit_level: Level::L2,
        };
        assert!(r.missed_in(Level::L0));
        assert!(r.missed_in(Level::L1));
        assert!(!r.missed_in(Level::L2));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(Addr::new(0), AccessKind::Load);
        h.access(Addr::new(0), AccessKind::Load);
        let s0 = h.stats(Level::L0);
        assert_eq!(s0.hits, 1);
        assert_eq!(s0.misses, 1);
        assert_eq!(h.stats(Level::Memory).hits, 1);
        h.reset();
        assert_eq!(h.stats(Level::L0), LevelStats::default());
    }

    #[test]
    fn invalid_config_is_reported_with_level() {
        let mut cfg = HierarchyConfig::default();
        cfg.l1.block_bytes = 48;
        let err = Hierarchy::try_new(cfg).unwrap_err();
        assert!(err.to_string().contains("L1"));
    }

    #[test]
    fn hierarchy_snapshot_restore_roundtrips() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        for i in 0..32u64 {
            h.access(Addr::new(i * 64), AccessKind::Load);
        }
        let snap = h.snapshot();
        let stats_before = (h.stats(Level::L0), h.stats(Level::L1), h.stats(Level::L2));
        h.access(Addr::new(0x9_0000), AccessKind::Store);
        h.restore(&snap);
        assert_eq!(
            (h.stats(Level::L0), h.stats(Level::L1), h.stats(Level::L2)),
            stats_before
        );
        assert!(h.probe(Addr::new(0), Level::L0));
        assert!(!h.probe(Addr::new(0x9_0000), Level::L2));
    }

    #[test]
    fn stores_allocate_like_loads() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let a = Addr::new(0x2000);
        h.access(a, AccessKind::Store);
        let r = h.access(a, AccessKind::Load);
        assert_eq!(r.hit_level, Level::L0);
    }
}
