//! Public facade of the soft-error-rate reproduction suite.
//!
//! This crate ties the substrates together into the workflow a user
//! actually wants:
//!
//! 1. pick a workload (one of the 26 suite entries, or a custom
//!    [`WorkloadSpec`]);
//! 2. pick a machine configuration ([`PipelineConfig`], optionally with
//!    the paper's squash/throttle exposure-reduction actions);
//! 3. [`run_workload`] → a [`WorkloadRun`] bundling the functional trace,
//!    dead-instruction map, timing result and AVF analysis;
//! 4. summarise ([`WorkloadRun::summary`]) or sweep the whole suite
//!    ([`run_suite`] / [`for_each_workload`]).
//!
//! # Example
//!
//! ```
//! use ses_core::{run_workload, PipelineConfig, WorkloadSpec};
//!
//! let spec = WorkloadSpec::quick("hello", 1);
//! let run = run_workload(&spec, &PipelineConfig::default())?;
//! let s = run.summary();
//! assert!(s.due_avf.fraction() >= s.sdc_avf.fraction());
//! # Ok::<(), ses_types::SesError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod compare;
mod run;
mod suite_runner;
pub mod telemetry;

pub use compare::{compare_suites, Comparison};
pub use run::{run_workload, BenchSummary, TechniqueCoverage, WorkloadRun};
pub use suite_runner::{for_each_workload, run_suite, run_suite_with};

// Re-export the vocabulary a downstream user needs, so `ses-core` is a
// one-stop dependency.
pub use ses_avf::{
    AvfAnalysis, BoundaryKind, DeadKind, DeadMap, FalseDueCause, KindAvf, RegFileAvf, Region,
    RegionFault, RegionMap, StateFractions, Technique, TimelinePoint,
};
pub use ses_faults::{
    build_strata, build_strata_with, class_instances, mask_for_class, read_probability,
    run_ecc_campaign, AdaptiveCampaignConfig, AdaptiveCampaignReport, AdaptiveSession, Campaign,
    CampaignConfig, CampaignPerf, CampaignReport, DetailedReport, EccCampaignConfig,
    EccCampaignReport, LatencyDistribution, MetricKind, Outcome, PatternDistribution,
    PatternModel, PruneReport, RecoveryDecision, RecoveryPolicy, RecoveryReport, ResidualModel,
    StratumReport, StrikePattern, UniformRun,
};
pub use ses_sampler::{
    AdaptiveCheckpoint, AdaptiveConfig, AdaptiveScheduler, BitClass, FaultCoord,
    OccupancyProfile, PatternClass, RoundRecord, Strata, StratifiedEstimate, StratumKey,
};
pub use ses_mem::{ClassProfile, EccClass, EccDomain, EccScheme, Level, WordVerdict};
pub use ses_metrics::{geomean, mean, RateInterval, RatePoint, ReliabilityModel, Table};
pub use ses_metrics::{fit_to_mttf, raw_fit_per_bit, Environment, TechNode};
pub use ses_metrics::{JsonParseError, JsonValue, TelemetryLevel, SCHEMA_VERSION};
pub use ses_metrics::binomial_ci95;
pub use ses_oracle::{
    check_program, run_fuzz, splitmix64, Divergence, DivergenceKind, FuzzConfig, FuzzFailure,
    FuzzReport, InjectionCheck, OracleConfig,
};
pub use ses_pipeline::{
    DetectionModel, FaultSpec, IssueOrder, PiScope, Pipeline, PipelineConfig, PipelineResult,
    PredictorKind, Snapshot, SquashPolicy, ThrottlePolicy, TrackingConfig,
};
pub use ses_types::{Avf, Cycle, Fit, Ipc, Mitf, Mttf, SesError};
pub use ses_workloads::{spec_by_name, suite, synthesize, Category, TraceMix, WorkloadSpec};
