//! Regenerates **Figure 2**: coverage of the instruction queue's false
//! DUE AVF by the π-bit tracking techniques, per benchmark.
//!
//! Paper findings being reproduced:
//!
//! * π-at-commit (wrong path + false predication) covers ~18 % of false
//!   DUE on average, more for integer codes;
//! * the anti-π bit covers ~49 % on average — ~60 % for FP versus ~35 %
//!   for INT (FP codes carry more no-ops and prefetches);
//! * a 512-entry PET buffer adds ~3 %;
//! * register-file π bits add ~11 %; store-commit scope another ~8 %;
//!   memory scope the final ~12 % — reaching 100 % cumulative coverage.
//!
//! Run with `cargo bench -p ses-bench --bench fig2`.

use ses_core::{mean, run_suite, Category, PipelineConfig, Table};

fn main() {
    let rows = run_suite(&PipelineConfig::default()).expect("suite run");

    let mut table = Table::new(vec![
        "Benchmark",
        "Class",
        "false DUE AVF",
        "pi@commit",
        "anti-pi",
        "PET-512",
        "pi reg",
        "pi store",
        "pi memory",
        "cumulative",
    ]);

    struct Shares {
        commit: f64,
        anti: f64,
        pet: f64,
        reg: f64,
        store: f64,
        mem: f64,
        category: Category,
    }
    let mut shares = Vec::new();

    for r in &rows {
        let total = r.coverage.total_false.max(1) as f64;
        let commit = r.coverage.pi_commit as f64 / total;
        let anti = r.coverage.anti_pi as f64 / total;
        let pet = r.coverage.pet512 as f64 / total;
        // Incremental contributions, in the paper's cumulative order.
        let reg = (r.coverage.pi_register - r.coverage.pet512) as f64 / total;
        let store = (r.coverage.pi_store - r.coverage.pi_register) as f64 / total;
        let mem = (r.coverage.pi_memory - r.coverage.pi_store) as f64 / total;
        let cumulative = commit + anti + pet + reg + store + mem;
        table.row(vec![
            r.name.clone(),
            r.category.label().into(),
            format!("{}", r.false_due_avf),
            format!("{:.0}%", commit * 100.0),
            format!("{:.0}%", anti * 100.0),
            format!("{:.0}%", pet * 100.0),
            format!("{:.0}%", reg * 100.0),
            format!("{:.0}%", store * 100.0),
            format!("{:.0}%", mem * 100.0),
            format!("{:.0}%", cumulative * 100.0),
        ]);
        shares.push(Shares {
            commit,
            anti,
            pet,
            reg,
            store,
            mem,
            category: r.category,
        });
    }

    println!("\n=== Figure 2: false-DUE coverage by tracking technique ===\n");
    println!("{table}");

    let avg = |f: &dyn Fn(&Shares) -> f64| mean(shares.iter().map(f));
    let avg_cat = |cat: Category, f: &dyn Fn(&Shares) -> f64| {
        mean(shares.iter().filter(|s| s.category == cat).map(f))
    };

    println!("Averages (paper values in parentheses):");
    println!(
        "  pi@commit : {:.0}% (18%)   INT {:.0}% vs FP {:.0}% (INT higher in paper)",
        avg(&|s| s.commit) * 100.0,
        avg_cat(Category::Integer, &|s| s.commit) * 100.0,
        avg_cat(Category::FloatingPoint, &|s| s.commit) * 100.0,
    );
    println!(
        "  anti-pi   : {:.0}% (49%)   INT {:.0}% (35%) vs FP {:.0}% (60%)",
        avg(&|s| s.anti) * 100.0,
        avg_cat(Category::Integer, &|s| s.anti) * 100.0,
        avg_cat(Category::FloatingPoint, &|s| s.anti) * 100.0,
    );
    println!("  PET-512   : {:.0}% (3%)", avg(&|s| s.pet) * 100.0);
    println!("  pi reg    : {:.0}% (11%)", avg(&|s| s.reg) * 100.0);
    println!("  pi store  : {:.0}% (8%)", avg(&|s| s.store) * 100.0);
    println!("  pi memory : {:.0}% (12%)", avg(&|s| s.mem) * 100.0);
    let cum = avg(&|s| s.commit + s.anti + s.pet + s.reg + s.store + s.mem);
    println!("  cumulative: {:.0}% (100%)", cum * 100.0);

    // Shape assertions.
    assert!(
        avg_cat(Category::FloatingPoint, &|s| s.anti)
            > avg_cat(Category::Integer, &|s| s.anti),
        "anti-pi must matter more for FP (paper)"
    );
    assert!(
        avg_cat(Category::Integer, &|s| s.commit)
            > avg_cat(Category::FloatingPoint, &|s| s.commit),
        "pi@commit must matter more for INT (paper)"
    );
    assert!((cum - 1.0).abs() < 1e-6, "cumulative coverage must be 100%");
    assert!(avg(&|s| s.anti) > avg(&|s| s.commit), "anti-pi is the largest single technique");
    println!("\nAll Figure-2 shape assertions hold.");
}
