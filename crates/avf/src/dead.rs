//! Dynamically-dead instruction analysis (paper §4.1).
//!
//! An instruction is *dynamically dead* when the values it produces never
//! affect the program's output. We classify committed instructions as:
//!
//! * **FDD via register** — the written register is overwritten (or the
//!   program ends) before any instruction reads it;
//! * **TDD via register** — the written register *is* read, but only by
//!   dynamically dead instructions;
//! * **FDD via memory** — the stored word is overwritten (or the program
//!   ends) before any load reads it;
//! * **TDD via memory** — the stored word is loaded, but only by
//!   dynamically dead instructions.
//!
//! FDD-via-register instructions additionally carry their *kill distance*
//! (committed instructions from def to the overwrite) — the quantity that
//! determines PET-buffer coverage (Figure 3) — and a *return-attributed*
//! flag set when the defining procedure returned before the kill (the
//! paper's "FDD because of a procedure return" category).
//!
//! Conservatisms (both noted in DESIGN.md): control transfers, `out`, and
//! compare (predicate-writing) instructions are never classified dead; the
//! paper similarly excludes branch-direction deadness (Y-branches) from its
//! tracking.

use std::collections::HashMap;

use ses_arch::ExecutionTrace;
use ses_types::Reg;

/// Dead classification of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeadKind {
    /// Live (or not classifiable as dead: control, I/O, compare, neutral,
    /// falsely predicated).
    #[default]
    Live,
    /// First-level dynamically dead via register.
    FddReg,
    /// Transitively dynamically dead via register.
    TddReg,
    /// First-level dynamically dead via memory (dead store).
    FddMem,
    /// Transitively dynamically dead via memory.
    TddMem,
}

impl DeadKind {
    /// Whether this is any dead classification.
    pub fn is_dead(self) -> bool {
        self != DeadKind::Live
    }

    /// Whether the instruction is dead and tracked via registers.
    pub fn via_register(self) -> bool {
        matches!(self, DeadKind::FddReg | DeadKind::TddReg)
    }

    /// Whether the instruction is dead and tracked via memory.
    pub fn via_memory(self) -> bool {
        matches!(self, DeadKind::FddMem | DeadKind::TddMem)
    }
}

/// Full dead-analysis record for one dynamic instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadInfo {
    /// The classification.
    pub kind: DeadKind,
    /// For FDD via register or memory: committed-instruction distance from
    /// the def to the overwriting instruction (`None` when the location is
    /// never rewritten before program end).
    pub kill_distance: Option<u64>,
    /// For FDD-via-register: whether the defining procedure returned before
    /// the kill.
    pub return_attributed: bool,
}

/// The per-trace-index dead map.
#[derive(Debug, Clone)]
pub struct DeadMap {
    info: Vec<DeadInfo>,
}

impl DeadMap {
    /// Runs the analysis over a committed trace.
    pub fn analyze(trace: &ExecutionTrace) -> Self {
        let entries = trace.entries();
        let n = entries.len();
        let mut live = vec![false; n];
        let mut kind = vec![DeadKind::Live; n];

        // --- Backward pass: def-use liveness -------------------------------
        // pending register reads (after the current point, before any def)
        let mut pending_reg_reads: Vec<Vec<usize>> = vec![Vec::new(); Reg::COUNT];
        // pending loads per word address
        let mut pending_loads: HashMap<u64, Vec<usize>> = HashMap::new();

        for idx in (0..n).rev() {
            let d = &entries[idx];
            // Inherent liveness: anything whose effect is not a trackable
            // value. Falsely predicated and neutral instructions have no
            // effects (their categories are handled by the ACE classifier).
            let inherently_live = d.executed
                && (d.is_output()
                    || d.is_control()
                    || d.pred_written.is_some()
                    || d.instr.op == ses_isa::Opcode::Halt);

            let mut value_live = false;
            let mut classification = DeadKind::Live;

            if let Some(w) = d.reg_written {
                let uses = std::mem::take(&mut pending_reg_reads[w.index()]);
                if uses.is_empty() {
                    classification = DeadKind::FddReg;
                } else if uses.iter().any(|&u| live[u]) {
                    value_live = true;
                } else {
                    classification = DeadKind::TddReg;
                }
            }
            if let Some(addr) = d.mem_written {
                let uses = pending_loads.remove(&addr.as_u64()).unwrap_or_default();
                if uses.is_empty() {
                    classification = DeadKind::FddMem;
                } else if uses.iter().any(|&u| live[u]) {
                    value_live = true;
                } else {
                    classification = DeadKind::TddMem;
                }
            }

            live[idx] = inherently_live || value_live;
            if !live[idx] && (d.reg_written.is_some() || d.mem_written.is_some()) {
                kind[idx] = classification;
            }

            // Register this instruction's own reads for earlier defs.
            for r in d.regs_read() {
                pending_reg_reads[r.index()].push(idx);
            }
            if let Some(addr) = d.mem_read {
                pending_loads.entry(addr.as_u64()).or_default().push(idx);
            }
        }

        // --- Forward pass: kill distance and return attribution ------------
        let mut info: Vec<DeadInfo> = kind
            .iter()
            .map(|&k| DeadInfo {
                kind: k,
                kill_distance: None,
                return_attributed: false,
            })
            .collect();
        // generation counter per call depth: bumped when a frame at that
        // depth ends (its `ret` executes)
        let mut gen: Vec<u64> = vec![0; 4];
        // last def of each register: (idx, depth, gen-at-def)
        let mut prev_def: [Option<(usize, u32, u64)>; Reg::COUNT] = [None; Reg::COUNT];
        // last store to each word address
        let mut prev_store: HashMap<u64, usize> = HashMap::new();

        for (idx, d) in entries.iter().enumerate() {
            if d.executed && d.instr.op == ses_isa::Opcode::Ret {
                let depth = d.call_depth as usize;
                if gen.len() <= depth {
                    gen.resize(depth + 1, 0);
                }
                gen[depth] += 1;
            }
            if let Some(w) = d.reg_written {
                let depth = d.call_depth;
                if gen.len() <= depth as usize {
                    gen.resize(depth as usize + 1, 0);
                }
                if let Some((pidx, pdepth, pgen)) = prev_def[w.index()] {
                    if info[pidx].kind == DeadKind::FddReg {
                        info[pidx].kill_distance = Some((idx - pidx) as u64);
                        info[pidx].return_attributed =
                            gen.get(pdepth as usize).copied().unwrap_or(0) != pgen;
                    }
                }
                prev_def[w.index()] = Some((idx, depth, gen[depth as usize]));
            }
            if let Some(addr) = d.mem_written {
                if let Some(pidx) = prev_store.insert(addr.as_u64(), idx) {
                    if info[pidx].kind == DeadKind::FddMem {
                        info[pidx].kill_distance = Some((idx - pidx) as u64);
                    }
                }
            }
        }

        DeadMap { info }
    }

    /// The record for a dynamic-trace index.
    pub fn get(&self, trace_idx: u64) -> DeadInfo {
        self.info
            .get(trace_idx as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of analysed instructions.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }

    /// Iterates over all records in trace order.
    pub fn iter(&self) -> impl Iterator<Item = &DeadInfo> {
        self.info.iter()
    }

    /// Fraction of committed instructions that are dynamically dead (the
    /// paper reports ~20 % for its binaries).
    pub fn dead_fraction(&self) -> f64 {
        if self.info.is_empty() {
            return 0.0;
        }
        let dead = self.info.iter().filter(|i| i.kind.is_dead()).count();
        dead as f64 / self.info.len() as f64
    }

    /// PET-buffer coverage of FDD-via-register instructions for a given
    /// buffer capacity: the fraction whose kill arrives within `capacity`
    /// subsequent commits (Figure 3's x-axis sweep).
    ///
    /// `include_returns` widens the numerator to return-attributed FDD.
    pub fn pet_coverage_fdd_reg(&self, capacity: u64, include_returns: bool) -> f64 {
        let mut total = 0u64;
        let mut covered = 0u64;
        for i in self.info.iter() {
            if i.kind != DeadKind::FddReg {
                continue;
            }
            total += 1;
            if !include_returns && i.return_attributed {
                continue;
            }
            if let Some(kd) = i.kill_distance {
                if kd <= capacity {
                    covered += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// PET-style provability over *all* FDD instructions (register and
    /// memory): the fraction a `capacity`-entry window could prove, with
    /// dead stores judged by their own kill distances (the third,
    /// slowest-rising curve of Figure 3).
    pub fn pet_coverage_with_memory(&self, capacity: u64) -> f64 {
        let mut total = 0u64;
        let mut covered = 0u64;
        for i in self.info.iter() {
            if i.kind != DeadKind::FddReg && i.kind != DeadKind::FddMem {
                continue;
            }
            total += 1;
            if let Some(kd) = i.kill_distance {
                if kd <= capacity {
                    covered += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Counts per dead kind.
    pub fn counts(&self) -> HashMap<DeadKind, u64> {
        let mut m = HashMap::new();
        for i in &self.info {
            *m.entry(i.kind).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::Emulator;
    use ses_isa::{Instruction, Program, ProgramBuilder};
    use ses_types::Reg;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn analyze(code: Vec<Instruction>) -> (DeadMap, ExecutionTrace) {
        let p = Program::new(code);
        let trace = Emulator::new(&p).run(10_000).unwrap();
        assert!(trace.halted());
        (DeadMap::analyze(&trace), trace)
    }

    #[test]
    fn fdd_reg_detected_with_kill_distance() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 5), // 0: FDD (overwritten at 1)
            Instruction::movi(r(1), 6), // 1: live (read by out)
            Instruction::out(r(1)),     // 2
            Instruction::halt(),        // 3
        ]);
        assert_eq!(map.get(0).kind, DeadKind::FddReg);
        assert_eq!(map.get(0).kill_distance, Some(1));
        assert_eq!(map.get(1).kind, DeadKind::Live);
        assert!((map.dead_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn never_read_at_end_is_fdd_without_kill() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 5), // 0: never read, never rewritten
            Instruction::halt(),
        ]);
        assert_eq!(map.get(0).kind, DeadKind::FddReg);
        assert_eq!(map.get(0).kill_distance, None);
    }

    #[test]
    fn tdd_chain_detected() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 5),         // 0: TDD (read only by 1)
            Instruction::addi(r(2), r(1), 1),   // 1: TDD (read only by 2)
            Instruction::addi(r(3), r(2), 1),   // 2: FDD (never read)
            Instruction::halt(),
        ]);
        assert_eq!(map.get(0).kind, DeadKind::TddReg);
        assert_eq!(map.get(1).kind, DeadKind::TddReg);
        assert_eq!(map.get(2).kind, DeadKind::FddReg);
    }

    #[test]
    fn live_chain_stays_live() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 5),
            Instruction::addi(r(2), r(1), 1),
            Instruction::out(r(2)),
            Instruction::halt(),
        ]);
        assert_eq!(map.get(0).kind, DeadKind::Live);
        assert_eq!(map.get(1).kind, DeadKind::Live);
        assert_eq!(map.dead_fraction(), 0.0);
    }

    #[test]
    fn dead_store_detected() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 0x2000), // live: address feeds stores...
            Instruction::movi(r(2), 7),      // feeds dead store only -> TDD
            Instruction::st(r(1), r(2), 0),  // 2: FDD-mem (overwritten, no load)
            Instruction::movi(r(3), 9),      // feeds live store
            Instruction::st(r(1), r(3), 0),  // 4: live (loaded next)
            Instruction::ld(r(4), r(1), 0),  // 5
            Instruction::out(r(4)),
            Instruction::halt(),
        ]);
        assert_eq!(map.get(2).kind, DeadKind::FddMem);
        assert_eq!(map.get(4).kind, DeadKind::Live);
        assert_eq!(map.get(1).kind, DeadKind::TddReg, "feeds only a dead store");
        assert_eq!(map.get(3).kind, DeadKind::Live);
        assert_eq!(map.get(0).kind, DeadKind::Live, "address reg read by live store");
    }

    #[test]
    fn tdd_mem_detected() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 0x2000),
            Instruction::movi(r(2), 7),
            Instruction::st(r(1), r(2), 0), // 2: TDD-mem: loaded only by dead load
            Instruction::ld(r(5), r(1), 0), // 3: FDD-reg (r5 never read)
            Instruction::out(r(2)),         // keeps r2 live
            Instruction::halt(),
        ]);
        assert_eq!(map.get(2).kind, DeadKind::TddMem);
        assert_eq!(map.get(3).kind, DeadKind::FddReg);
    }

    #[test]
    fn return_attribution() {
        let mut b = ProgramBuilder::new();
        let func = b.new_label();
        let end = b.new_label();
        b.call(r(31), func); // 0
        b.jump(end); // 1
        b.bind(func);
        b.push(Instruction::movi(r(20), 1)); // 2: FDD, killed after return
        b.push(Instruction::ret(r(31))); // 3
        b.bind(end);
        b.push(Instruction::movi(r(20), 2)); // 4: kills 2; itself FDD (end)
        b.push(Instruction::halt()); // 5
        let p = b.build().unwrap();
        let trace = Emulator::new(&p).run(100).unwrap();
        let map = DeadMap::analyze(&trace);
        // Execution order: call(0), movi r20(1), ret(2), jmp(3), movi r20(4), halt(5)
        let def = trace
            .entries()
            .iter()
            .position(|e| e.reg_written == Some(r(20)) && e.call_depth == 1)
            .unwrap() as u64;
        let d = map.get(def);
        assert_eq!(d.kind, DeadKind::FddReg);
        assert!(d.return_attributed, "killed after the frame returned");

        let kill = trace
            .entries()
            .iter()
            .position(|e| e.reg_written == Some(r(20)) && e.call_depth == 0)
            .unwrap() as u64;
        assert_eq!(map.get(kill).kind, DeadKind::FddReg);
        assert!(!map.get(kill).return_attributed);
    }

    #[test]
    fn same_frame_kill_not_return_attributed() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 1), // 0: FDD killed in same frame
            Instruction::movi(r(1), 2), // 1
            Instruction::out(r(1)),
            Instruction::halt(),
        ]);
        assert!(!map.get(0).return_attributed);
    }

    #[test]
    fn guard_false_instruction_neither_reads_nor_writes() {
        let (map, trace) = analyze(vec![
            Instruction::movi(r(1), 5), // 0: read only by guard-false instr?
            // p1 is false: this add never executes, so it reads nothing.
            Instruction::add(r(2), r(1), r(1)).guarded_by(ses_types::Pred::new(1)),
            Instruction::halt(),
        ]);
        assert!(!trace.entries()[1].executed);
        // r1's def has NO reads (the guarded add never read it): FDD.
        assert_eq!(map.get(0).kind, DeadKind::FddReg);
        // The guard-false instruction itself is not dead-classified.
        assert_eq!(map.get(1).kind, DeadKind::Live);
    }

    #[test]
    fn pet_coverage_thresholds() {
        let (map, _) = analyze(vec![
            Instruction::movi(r(1), 1), // 0: FDD kill distance 1
            Instruction::movi(r(1), 2), // 1: FDD kill distance 3
            Instruction::nop(),         // 2
            Instruction::nop(),         // 3
            Instruction::movi(r(1), 3), // 4: FDD (never rewritten)
            Instruction::halt(),
        ]);
        assert_eq!(map.get(0).kill_distance, Some(1));
        assert_eq!(map.get(1).kill_distance, Some(3));
        assert_eq!(map.get(4).kill_distance, None);
        let c1 = map.pet_coverage_fdd_reg(1, true);
        let c3 = map.pet_coverage_fdd_reg(3, true);
        let c100 = map.pet_coverage_fdd_reg(100, true);
        assert!((c1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((c3 - 2.0 / 3.0).abs() < 1e-12);
        assert!((c100 - 2.0 / 3.0).abs() < 1e-12, "unkilled def never covered");
        assert!(c1 <= c3 && c3 <= c100);
    }

    #[test]
    fn compare_instructions_never_dead() {
        let (map, _) = analyze(vec![
            Instruction::cmp_eq(ses_types::Pred::new(1), r(1), r(2)),
            Instruction::halt(),
        ]);
        assert_eq!(map.get(0).kind, DeadKind::Live);
    }
}
