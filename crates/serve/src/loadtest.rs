//! `ser-repro loadtest` — concurrent-client benchmark for the daemon.
//!
//! Drives `clients` threads against a daemon (an external one via
//! `addr`, or an in-process one started just for the run) with a mixed
//! set of query shapes: plain campaigns, recovery campaigns, ECC
//! campaigns and ecc-grid probes, across several seeds. Two phases:
//!
//! 1. **cold** — every distinct query once, sequentially (all cache
//!    misses: each request pays golden prep + the injection sweep);
//! 2. **warm** — all clients issue the full mix repeatedly (all hits).
//!
//! Per-phase p50/p95/p99 latency, overall throughput and the daemon's
//! cache hit rate land in `BENCH_serve.json`; the optional gate asserts
//! the warm p50 is at least 10x below the cold p50 — the result cache
//! must actually short-circuit job execution, not just memoise at the
//! margin.

use std::path::PathBuf;
use std::time::Instant;

use ses_metrics::{JsonValue, SCHEMA_VERSION};

use crate::client::http_post;
use crate::server::{ServeConfig, Server};

/// Configuration for [`run_loadtest`].
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Target daemon address; `None` starts an in-process server.
    pub addr: Option<String>,
    /// Concurrent client threads in the warm phase.
    pub clients: usize,
    /// Requests each client issues in the warm phase.
    pub requests_per_client: usize,
    /// Workload the campaign-shaped queries run against.
    pub workload: String,
    /// Injection budget of the campaign-shaped queries.
    pub injections: u32,
    /// Distinct seeds in the mix (distinct jobs = seeds x shapes).
    pub seeds: u64,
    /// Worker threads for the in-process server (0 = one per core).
    pub threads: usize,
    /// Cache byte budget for the in-process server.
    pub cache_bytes: usize,
    /// Where to write the JSON report; `None` skips the file.
    pub out: Option<PathBuf>,
    /// Enforce the >= 10x cold-vs-warm p50 speedup gate.
    pub gate: bool,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: None,
            clients: 32,
            requests_per_client: 12,
            workload: "crafty".to_string(),
            injections: 120,
            seeds: 3,
            threads: 0,
            cache_bytes: 64 << 20,
            out: Some(PathBuf::from("BENCH_serve.json")),
            gate: false,
        }
    }
}

/// Latency percentiles in microseconds over one phase.
#[derive(Debug, Clone, Copy)]
pub struct Percentiles {
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Sample count.
    pub samples: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn percentiles(mut samples: Vec<u64>) -> Percentiles {
    samples.sort_unstable();
    Percentiles {
        p50_us: percentile(&samples, 0.50),
        p95_us: percentile(&samples, 0.95),
        p99_us: percentile(&samples, 0.99),
        samples: samples.len() as u64,
    }
}

/// Result of a loadtest run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Cold-phase latencies (every request a miss).
    pub cold: Percentiles,
    /// Warm-phase latencies (every request a hit).
    pub warm: Percentiles,
    /// Warm-phase throughput in requests per second.
    pub warm_rps: f64,
    /// cold p50 / warm p50.
    pub speedup_p50: f64,
    /// Cache hit rate over the whole run, from `/v1/stats`.
    pub hit_rate: f64,
    /// Distinct jobs in the mix.
    pub distinct_jobs: u64,
    /// Total requests issued (both phases).
    pub total_requests: u64,
}

/// The mixed query shapes: body template per (shape, seed).
fn query_mix(cfg: &LoadtestConfig) -> Vec<(String, String)> {
    let mut mix = Vec::new();
    for s in 0..cfg.seeds {
        let seed = 2026 + s;
        mix.push((
            "campaign".to_string(),
            format!(
                r#"{{"workload": "{}", "injections": {}, "seed": {seed}}}"#,
                cfg.workload, cfg.injections
            ),
        ));
        mix.push((
            "campaign".to_string(),
            format!(
                r#"{{"workload": "{}", "injections": {}, "seed": {seed}, "model": "none"}}"#,
                cfg.workload, cfg.injections
            ),
        ));
        mix.push((
            "campaign".to_string(),
            format!(
                r#"{{"workload": "{}", "injections": {}, "seed": {seed}, "detect_latency": "fixed:8", "recovery": "idempotent"}}"#,
                cfg.workload, cfg.injections
            ),
        ));
        mix.push((
            "campaign".to_string(),
            format!(
                r#"{{"workload": "{}", "injections": {}, "seed": {seed}, "ecc": "sec-ded"}}"#,
                cfg.workload, cfg.injections
            ),
        ));
        mix.push((
            "ecc-grid".to_string(),
            format!(
                r#"{{"workloads": ["{}"], "probes": {}, "seed": {seed}}}"#,
                cfg.workload, cfg.injections
            ),
        ));
    }
    mix
}

fn issue(addr: &str, kind: &str, body: &str) -> Result<u64, String> {
    let t = Instant::now();
    let resp = http_post(addr, &format!("/v1/{kind}"), body).map_err(|e| e.to_string())?;
    let us = t.elapsed().as_micros() as u64;
    if resp.status != 200 {
        return Err(format!(
            "loadtest request {kind} failed with {}: {}",
            resp.status,
            resp.body_str()
        ));
    }
    Ok(us)
}

/// Runs the two-phase loadtest and writes `BENCH_serve.json`.
///
/// # Errors
///
/// Fails when the daemon can't be started/reached, a request fails, or
/// the speedup gate is enforced and missed.
pub fn run_loadtest(cfg: &LoadtestConfig) -> Result<LoadtestReport, String> {
    let own_server = match &cfg.addr {
        Some(_) => None,
        None => Some(
            Server::start(&ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: cfg.threads,
                cache_bytes: cfg.cache_bytes,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("failed to start server: {e}"))?,
        ),
    };
    let addr = match (&cfg.addr, &own_server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.addr().to_string(),
        (None, None) => unreachable!(),
    };

    let mix = query_mix(cfg);
    let distinct_jobs = mix.len() as u64;

    // Cold phase: each distinct query once. Sequential, so every sample
    // is a clean measurement of one full job execution.
    let mut cold_samples = Vec::with_capacity(mix.len());
    for (kind, body) in &mix {
        cold_samples.push(issue(&addr, kind, body)?);
    }
    let cold = percentiles(cold_samples);

    // Warm phase: all clients hammer the same mix concurrently; every
    // request should be a cache hit.
    let warm_start = Instant::now();
    let warm_samples: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let addr = &addr;
            let mix = &mix;
            handles.push(scope.spawn(move || -> Result<Vec<u64>, String> {
                let mut samples = Vec::with_capacity(cfg.requests_per_client);
                for r in 0..cfg.requests_per_client {
                    let (kind, body) = &mix[(c + r) % mix.len()];
                    samples.push(issue(addr, kind, body)?);
                }
                Ok(samples)
            }));
        }
        let mut all = Vec::new();
        let mut first_err: Option<String> = None;
        for h in handles {
            match h.join().expect("loadtest client panicked") {
                Ok(mut s) => all.append(&mut s),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(all),
        }
    })?;
    let warm_wall = warm_start.elapsed().as_secs_f64();
    let warm_total = warm_samples.len() as u64;
    let warm = percentiles(warm_samples);
    let warm_rps = if warm_wall > 0.0 {
        warm_total as f64 / warm_wall
    } else {
        0.0
    };

    let stats = crate::client::http_get(&addr, "/v1/stats").map_err(|e| e.to_string())?;
    let stats_doc = JsonValue::parse(stats.body_str())
        .map_err(|e| format!("unparseable /v1/stats response: {e}"))?;
    let cache = stats_doc.get("cache").ok_or("stats missing cache stanza")?;
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    if let Some(s) = own_server {
        s.shutdown();
    }

    let speedup_p50 = if warm.p50_us > 0 {
        cold.p50_us as f64 / warm.p50_us as f64
    } else {
        f64::INFINITY
    };
    let report = LoadtestReport {
        cold,
        warm,
        warm_rps,
        speedup_p50,
        hit_rate,
        distinct_jobs,
        total_requests: distinct_jobs + warm_total,
    };

    if let Some(path) = &cfg.out {
        let doc = render_report(cfg, &report);
        std::fs::write(path, doc.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if cfg.gate && report.speedup_p50 < 10.0 {
        return Err(format!(
            "speedup gate missed: cold p50 {}us / warm p50 {}us = {:.1}x < 10x",
            report.cold.p50_us, report.warm.p50_us, report.speedup_p50
        ));
    }
    Ok(report)
}

fn phase_value(p: &Percentiles) -> JsonValue {
    let mut v = JsonValue::object();
    v.set("p50_us", p.p50_us)
        .set("p95_us", p.p95_us)
        .set("p99_us", p.p99_us)
        .set("samples", p.samples);
    v
}

fn render_report(cfg: &LoadtestConfig, report: &LoadtestReport) -> JsonValue {
    let mut doc = JsonValue::object();
    doc.set("schema_version", SCHEMA_VERSION)
        .set("artifact", "loadtest")
        .set("workload", cfg.workload.as_str())
        .set("injections", cfg.injections)
        .set("clients", cfg.clients)
        .set("requests_per_client", cfg.requests_per_client)
        .set("distinct_jobs", report.distinct_jobs)
        .set("total_requests", report.total_requests)
        .set("cold", phase_value(&report.cold))
        .set("warm", phase_value(&report.warm))
        .set("warm_rps", report.warm_rps)
        .set("speedup_p50", report.speedup_p50)
        .set("cache_hit_rate", report.hit_rate)
        .set("gate_speedup_min", 10.0)
        .set("gate_enforced", cfg.gate);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ranks() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.50), 50);
        assert_eq!(percentile(&s, 0.95), 95);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn mix_has_distinct_shapes_per_seed() {
        let cfg = LoadtestConfig {
            seeds: 2,
            ..LoadtestConfig::default()
        };
        let mix = query_mix(&cfg);
        assert_eq!(mix.len(), 10);
        let unique: std::collections::HashSet<_> = mix.iter().collect();
        assert_eq!(unique.len(), 10);
    }
}
