//! End-to-end tests of the differential oracle: a clean engine fuzzes
//! clean, a seeded divergence is caught and shrunk to a minimal
//! reproducer, and the committed regression corpus replays through the
//! full check on every `cargo test`.

use std::path::PathBuf;

use ses_core::{check_program, run_fuzz, DivergenceKind, FuzzConfig, OracleConfig};
use ses_oracle::{shrink, Mutation};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn fuzz_campaign_on_clean_engine_finds_nothing() {
    let config = FuzzConfig {
        seed: 1,
        iters: 60,
        injection_every: 30,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert!(
        report.clean(),
        "clean engine must not diverge: {:?}",
        report.failures.iter().map(|f| &f.divergence).collect::<Vec<_>>()
    );
    assert_eq!(report.iterations, 60);
    assert_eq!(report.injection_checks, 2);
}

#[test]
fn fuzz_campaigns_are_deterministic() {
    let config = FuzzConfig {
        seed: 7,
        iters: 25,
        injection_every: 0,
        ..FuzzConfig::default()
    };
    let a = run_fuzz(&config);
    let b = run_fuzz(&config);
    assert_eq!(a.total_committed, b.total_committed);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn seeded_divergence_is_caught_and_shrunk_to_a_minimal_reproducer() {
    // Corrupt the pipeline-side commit stream through the test-only
    // mutation hook: drop the 4th committed instruction, as a retirement
    // bug would. The oracle must catch it on the first program and the
    // shrinker must reduce the reproducer to a handful of instructions.
    let config = FuzzConfig {
        seed: 1,
        iters: 10,
        mutation: Some(Mutation::DropCommit(3)),
        max_failures: 1,
        injection_every: 0,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert_eq!(report.failures.len(), 1, "the very first program must fail");
    let f = &report.failures[0];
    assert_eq!(f.iteration, 0);
    assert_eq!(f.divergence.kind, DivergenceKind::CommitCount);

    let shrunk = f.shrunk.as_ref().expect("shrinking was enabled");
    assert!(
        shrunk.len() <= 20,
        "reproducer must be minimal, got {} instructions",
        shrunk.len()
    );
    assert!(shrunk.len() < f.program.len());

    // The emitted reproducer is valid assembly and still reproduces.
    let asm = f.reproducer_asm();
    let reparsed = ses_isa::assemble(&asm).expect("reproducer must reassemble");
    assert_eq!(&reparsed, shrunk);
    let again = ses_oracle::check_program_mutated(
        &reparsed,
        &OracleConfig::default(),
        Some(Mutation::DropCommit(3)),
    )
    .expect_err("reproducer must still fail");
    assert_eq!(again.kind, DivergenceKind::CommitCount);
}

#[test]
fn region_fuzz_catches_a_seeded_live_in_clobber_and_shrinks_it() {
    // Satellite: the region-boundary-aware fuzz mode (`--mutate regions`
    // with `--region-fault ignore-acc` on the CLI). Ignoring the
    // accumulator in live-in tracking merges its self-increment clobber
    // boundaries, so some region re-executes a committed overwrite; the
    // replay fixed-point check must catch it and ddmin must shrink the
    // reproducer to a handful of instructions.
    use ses_core::RegionFault;
    use ses_types::Reg;
    let config = FuzzConfig {
        seed: 77,
        iters: 10,
        program_spec: ses_workloads::FuzzProgramSpec::mem_heavy(),
        oracle: OracleConfig {
            region_fault: Some(RegionFault::IgnoreReg(Reg::new(2))),
            ..OracleConfig::default()
        },
        max_failures: 1,
        injection_every: 0,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert_eq!(report.failures.len(), 1, "the seeded bug must be caught");
    let f = &report.failures[0];
    assert_eq!(f.divergence.kind, DivergenceKind::RecoveryDivergence);

    let shrunk = f.shrunk.as_ref().expect("shrinking was enabled");
    assert!(
        shrunk.len() <= 20,
        "reproducer must be minimal, got {} instructions",
        shrunk.len()
    );
    // The reproducer reassembles and still fails the seeded-fault oracle,
    // but is clean under the correct region analysis.
    let reparsed = ses_isa::assemble(&f.reproducer_asm()).expect("reproducer must reassemble");
    let again = check_program(&reparsed, &config.oracle)
        .expect_err("reproducer must still fail under the seeded fault");
    assert_eq!(again.kind, DivergenceKind::RecoveryDivergence);
    check_program(&reparsed, &OracleConfig::default())
        .expect("the un-faulted region analysis must pass the reproducer");
}

#[test]
fn shrinker_preserves_the_divergence_kind() {
    // A predication divergence must not shrink into a commit-count one.
    let program = ses_workloads::fuzz_program(9);
    let config = OracleConfig::default();
    let mutation = Some(Mutation::FlipPredication(5));
    let original = ses_oracle::check_program_mutated(&program, &config, mutation)
        .expect_err("mutation must fail");
    assert_eq!(original.kind, DivergenceKind::PredicationMismatch);
    let out = shrink(&program, &config, mutation, original.kind);
    let d = ses_oracle::check_program_mutated(&out.program, &config, mutation).unwrap_err();
    assert_eq!(d.kind, DivergenceKind::PredicationMismatch);
    assert!(out.program.len() <= program.len());
}

#[test]
fn regression_corpus_replays_clean() {
    // Every corpus entry flows through the full oracle stack, which now
    // includes the idempotent-region partition/boundary/replay check —
    // the `mem-*` family exists precisely to make that stage work hard
    // (store-dense, alias-heavy programs with short regions).
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 18,
        "corpus must hold at least 18 programs, found {}",
        entries.len()
    );
    let store_dense = entries
        .iter()
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("mem-"))
        })
        .count();
    assert!(
        store_dense >= 6,
        "corpus must hold at least 6 store-dense programs, found {store_dense}"
    );
    let config = OracleConfig::default();
    for path in &entries {
        let text = std::fs::read_to_string(path).unwrap();
        let program =
            ses_isa::assemble(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stats = check_program(&program, &config)
            .unwrap_or_else(|d| panic!("{} diverged: {d}", path.display()));
        assert!(stats.committed > 0);
        // Corpus files are canonical: disassembly round-trips them.
        let back = ses_isa::assemble(&ses_isa::disassemble(&program)).unwrap();
        assert_eq!(program, back, "{} must round-trip", path.display());
    }
}
