//! The checkpointed injection engine is an optimisation, not a model
//! change: every fault must classify identically whether the timing run
//! starts at cycle 0 or resumes from the nearest pipeline snapshot.

use ses_core::{
    Campaign, CampaignConfig, Cycle, DetectionModel, FaultSpec, TrackingConfig, WorkloadSpec,
};

fn campaign_pair(detection: DetectionModel, injections: u32) -> (Campaign, Campaign) {
    let spec = WorkloadSpec::quick("ckpt-equiv", 23);
    let base = CampaignConfig {
        injections,
        seed: 41,
        detection,
        threads: 2,
        ..CampaignConfig::default()
    };
    let scratch = Campaign::prepare(
        &spec,
        CampaignConfig {
            checkpoint_interval: Some(0),
            ..base.clone()
        },
    )
    .expect("scratch campaign");
    let ckpt = Campaign::prepare(&spec, base).expect("checkpointed campaign");
    (scratch, ckpt)
}

#[test]
fn boundary_strikes_classify_identically() {
    let (scratch, ckpt) = campaign_pair(DetectionModel::Parity { tracking: None }, 1);
    let k = ckpt.checkpoint_interval();
    assert!(k > 0, "auto interval must enable checkpointing");
    let last = ckpt.baseline_cycles() - 1;
    // Strike cycles straddling the checkpoint grid: the very first cycle,
    // both sides of the first snapshot boundary, the middle, and the last
    // simulated cycle.
    let cycles = [0, 1, k - 1, k, k + 1, last / 2, last];
    let coords = [(0usize, 0u32), (5, 17), (31, 63)];
    for cycle in cycles {
        for (slot, bit) in coords {
            let fault = FaultSpec::single(Cycle::new(cycle), slot, bit);
            assert_eq!(
                scratch.inject_spec(fault),
                ckpt.inject_spec(fault),
                "fault at cycle {cycle} slot {slot} bit {bit} must classify identically"
            );
        }
    }
}

#[test]
fn full_campaigns_agree_across_detection_models() {
    let models = [
        DetectionModel::None,
        DetectionModel::Parity { tracking: None },
        DetectionModel::Parity {
            tracking: Some(TrackingConfig::paper_combined()),
        },
    ];
    for detection in models {
        let (scratch, ckpt) = campaign_pair(detection, 40);
        let scratch_report = scratch.run();
        let ckpt_report = ckpt.run();
        assert_eq!(
            scratch_report, ckpt_report,
            "reports must match under {detection:?}"
        );
        assert_eq!(
            scratch.run_detailed().samples(),
            ckpt.run_detailed().samples(),
            "per-fault samples must match under {detection:?}"
        );
        assert_eq!(scratch_report.perf().cycles_skipped, 0);
        assert!(
            ckpt_report.perf().cycles_skipped > 0,
            "checkpointed campaign must actually skip work"
        );
        assert!(ckpt_report.perf().checkpoints > 0);
    }
}
