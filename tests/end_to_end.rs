//! End-to-end integration: workloads through emulation, timing, AVF
//! analysis, and the reliability model, checking the paper's structural
//! identities at every joint.

use ses_core::{
    run_workload, spec_by_name, Ipc, Level, PipelineConfig, ReliabilityModel, Technique,
};

#[test]
fn suite_benchmark_full_stack() {
    let spec = spec_by_name("gap").expect("gap in suite");
    let run = run_workload(&spec, &PipelineConfig::default()).expect("run");

    // The timing model commits exactly the functional trace.
    assert_eq!(run.result.committed, run.trace.len() as u64);
    assert!(!run.result.budget_exhausted);
    assert!(run.result.cycles > run.result.committed / 6, "6-wide bound");

    // AVF identities (paper §2.2).
    let avf = &run.avf;
    assert!(avf.due_avf().fraction() >= avf.sdc_avf().fraction());
    let recomposed = avf.true_due_avf().fraction() + avf.false_due_avf().fraction();
    assert!((avf.due_avf().fraction() - recomposed).abs() < 1e-9);

    // State fractions partition the queue.
    let s = avf.state_fractions();
    assert!((s.idle + s.unread + s.unace + s.ace - 1.0).abs() < 1e-9);

    // Residency accounting: every valid bit-cycle is classified.
    let occupied_bits: u64 = run
        .result
        .residencies
        .iter()
        .map(|r| r.valid_cycles() * 64)
        .sum();
    let classified =
        ((s.unread + s.unace + s.ace) * avf.total_bit_cycles() as f64).round() as u64;
    assert_eq!(occupied_bits, classified, "no bit-cycle lost");

    // Reliability model plumbs through.
    let point = ReliabilityModel::default().sdc(run.result.ipc(), avf.sdc_avf());
    assert!(point.mttf.years() > 0.0);
    assert!(point.mitf.instructions() > 0.0);
}

#[test]
fn adding_parity_more_than_matters(){
    // Paper §4.1: adding error detection converts SDC to DUE and *raises*
    // the total error contribution (false DUE on top of true DUE).
    let spec = spec_by_name("mesa").expect("mesa in suite");
    let run = run_workload(&spec, &PipelineConfig::default()).expect("run");
    let sdc = run.avf.sdc_avf().fraction();
    let due = run.avf.due_avf().fraction();
    assert!(due > sdc, "parity must increase the total error rate");
    assert!(
        run.avf.false_due_avf().fraction() > 0.1 * sdc,
        "false DUE must be a material fraction"
    );
}

#[test]
fn combined_techniques_reproduce_headline_result() {
    // The paper's abstract: squashing + tracking cut the DUE AVF of a
    // parity-protected queue substantially for ~2% IPC.
    let spec = spec_by_name("twolf").expect("twolf in suite");
    let base = run_workload(&spec, &PipelineConfig::default()).expect("base");
    let sq = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1))
        .expect("squash");

    let due_base = base.avf.due_avf();
    let due_combined = sq
        .avf
        .due_avf_with_tracking(Some(Technique::PiStoreCommit), &sq.dead);
    let rel_due = due_combined.fraction() / due_base.fraction();
    let rel_ipc = sq.result.ipc().value() / base.result.ipc().value();
    assert!(
        rel_due < 0.7,
        "combined DUE reduction must be substantial, got {rel_due:.2}"
    );
    assert!(rel_ipc > 0.9, "IPC cost must stay small, got {rel_ipc:.3}");
}

#[test]
fn mitf_figure_of_merit_improves_under_squash() {
    let spec = spec_by_name("equake").expect("equake in suite");
    let base = run_workload(&spec, &PipelineConfig::default()).expect("base");
    let sq = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1))
        .expect("squash");
    let fom = |ipc: Ipc, avf: ses_core::Avf| ipc.value() / avf.fraction();
    assert!(
        fom(sq.result.ipc(), sq.avf.sdc_avf()) > fom(base.result.ipc(), base.avf.sdc_avf()),
        "squash must raise IPC/AVF (MITF) on a miss-heavy benchmark"
    );
}

/// Full 26-benchmark sweep (the Table-1 baseline column). Ignored by
/// default because it takes ~a minute; run with `cargo test --release --
/// --ignored` or via the bench targets, which exercise it anyway.
#[test]
#[ignore = "full-suite sweep; run explicitly or via cargo bench"]
fn full_suite_baseline_smoke() {
    let rows = ses_core::run_suite(&PipelineConfig::default()).expect("suite");
    assert_eq!(rows.len(), 26);
    for r in &rows {
        assert!(r.ipc.value() > 0.1, "{} IPC too low", r.name);
        assert!(r.due_avf.fraction() >= r.sdc_avf.fraction(), "{}", r.name);
        assert!(r.committed > 100_000, "{} too short", r.name);
    }
}
