//! Campaign-as-a-service: a dependency-free HTTP/1.1 + JSON daemon that
//! serves `campaign`, `suite`, `ecc-grid`, and `fuzz` jobs with the same
//! schema-versioned telemetry artifacts the CLI writes — byte for byte.
//!
//! The serving stack is deliberately small and deterministic:
//!
//! * [`job`] — the wire-level job schema. A [`job::JobSpec`] parses from a
//!   JSON body, canonicalises to a content-addressed key, and executes
//!   through exactly the `ses-core` calls the CLI subcommands make, so a
//!   served artifact is byte-identical to the `--json` file the CLI writes
//!   for the same (config, workload, seed).
//! * [`cache`] — a single-flight LRU result cache with a byte budget.
//!   Only deterministic (`summary`-level) artifacts are cached, so a hit
//!   returns exactly the bytes a cold run would produce.
//! * [`server`] — `std::net::TcpListener` acceptor plus a work-stealing
//!   shard pool of connection workers. Hostile input (truncated requests,
//!   oversized bodies, malformed JSON, unknown routes) yields structured
//!   JSON error responses and never takes a worker down.
//! * [`client`] / [`loadtest`] — a blocking HTTP client and the
//!   `ser-repro loadtest` harness that drives concurrent clients with
//!   mixed query shapes and records latency percentiles, throughput and
//!   cache hit rate into `BENCH_serve.json`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod loadtest;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{http_get, http_post, Response};
pub use job::{JobError, JobSpec, SharedRuns};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use server::{Server, ServeConfig};
