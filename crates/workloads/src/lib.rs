//! Synthetic workload suite standing in for SPEC CPU2000.
//!
//! The paper evaluates on SimPoint slices of SPEC CPU2000 compiled for
//! IA-64 (its Table 2). We cannot run SPEC binaries, so this crate
//! synthesises programs whose *dynamic mix* exercises the same phenomena the
//! paper's analysis depends on:
//!
//! * **wrong-path instructions** — data-dependent, hard-to-predict branches
//!   (sourced from a random-initialised pattern array) generate
//!   mispredictions and wrong-path fetch;
//! * **falsely predicated instructions** — compare-defined predicates guard
//!   real work and evaluate false a controllable fraction of the time;
//! * **neutral instructions** — no-ops, prefetches and hints at densities
//!   chosen per benchmark (higher for the floating-point-like suite, as the
//!   paper observes for IA-64 FP codes);
//! * **dynamically dead instructions** — first-level and transitive dead
//!   register chains, dead stores, and procedure-return-killed registers,
//!   at roughly the paper's reported 20 % of dynamic instructions, with a
//!   spread of def-to-kill distances so PET-buffer coverage has the paper's
//!   size dependence (Figure 3);
//! * **cache-miss stalls** — per-benchmark working-set sizes and strides
//!   spanning comfortable L0 residence up to L2/memory-bound streaming
//!   (the `mcf`- and `ammp`-like entries).
//!
//! Every workload is fully deterministic given its seed.
//!
//! # Example
//!
//! ```
//! use ses_workloads::{suite, synthesize};
//!
//! let specs = suite();
//! assert_eq!(specs.len(), 26);
//! let program = synthesize(&specs[0]);
//! assert!(program.len() > 10);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod fuzz;
mod kernels;
mod mix;
mod spec;
mod suite;
mod synth;

pub use fuzz::{fuzz_program, fuzz_program_with, FuzzProgramSpec};
pub use kernels::{
    bitcount, fibonacci, insertion_sort, kernels, list_chase, matmul, memcpy_checksum, sieve,
    Kernel,
};
pub use mix::TraceMix;
pub use spec::{BlockMix, Category, WorkloadSpec};
pub use suite::{spec_by_name, suite};
pub use synth::synthesize;
