//! Streaming emulation: step one instruction at a time.
//!
//! [`Emulator::run`](crate::Emulator::run) materialises the whole trace,
//! which is what the timing model and analyses want; for interactive use
//! (debuggers, watchpoints, incremental consumers) the [`Stepper`] yields
//! [`DynInstr`] records one at a time with bounded memory.

use ses_isa::Program;
use ses_types::{Addr, SesError};

use crate::emu::{Emulator, MachineSnapshot};
use crate::trace::DynInstr;

/// One-at-a-time emulation of a program.
///
/// # Example
///
/// ```
/// use ses_arch::Stepper;
/// use ses_isa::{Instruction, Program};
/// use ses_types::Reg;
///
/// let p = Program::new(vec![
///     Instruction::movi(Reg::new(1), 3),
///     Instruction::out(Reg::new(1)),
///     Instruction::halt(),
/// ]);
/// let mut s = Stepper::new(&p);
/// let first = s.step()?.expect("first instruction");
/// assert_eq!(first.reg_written, Some(Reg::new(1)));
/// assert!(s.step()?.is_some());
/// assert!(s.step()?.is_some(), "halt itself is a dynamic instruction");
/// assert!(s.step()?.is_none(), "then the stream ends");
/// assert_eq!(s.output(), &[3]);
/// # Ok::<(), ses_types::SesError>(())
/// ```
pub struct Stepper<'p> {
    inner: Emulator<'p>,
    halted: bool,
}

impl<'p> Stepper<'p> {
    /// Creates a stepper at the program's entry point.
    pub fn new(program: &'p Program) -> Self {
        Stepper {
            inner: Emulator::new(program),
            halted: false,
        }
    }

    /// Creates a stepper resuming from a captured machine snapshot. The
    /// output stream starts empty; emitted values appear in the stepped
    /// [`DynInstr`] records.
    pub fn from_snapshot(program: &'p Program, snap: MachineSnapshot) -> Self {
        Stepper {
            inner: Emulator::from_snapshot(program, snap),
            halted: false,
        }
    }

    /// Captures the machine state before the next instruction executes.
    pub fn snapshot(&self) -> MachineSnapshot {
        self.inner.snapshot()
    }

    /// Rewinds (or fast-forwards) the program counter. This is the region
    /// re-execution primitive: restore a snapshot, point the PC at the
    /// region entry, and step the region body again.
    pub fn set_pc(&mut self, pc: Addr) {
        self.inner.set_pc(pc);
    }

    /// Executes one instruction, returning its record, or `None` once the
    /// program has halted.
    ///
    /// # Errors
    ///
    /// Returns [`SesError::EmulationFault`] if control leaves the program
    /// image.
    pub fn step(&mut self) -> Result<Option<DynInstr>, SesError> {
        if self.halted {
            return Ok(None);
        }
        let (record, halt) = self.inner.step_once()?;
        if halt {
            self.halted = true;
        }
        Ok(Some(record))
    }

    /// Runs until `pred` matches a record or the program halts; returns
    /// the matching record.
    ///
    /// # Errors
    ///
    /// Propagates emulation faults.
    pub fn run_until(
        &mut self,
        mut pred: impl FnMut(&DynInstr) -> bool,
    ) -> Result<Option<DynInstr>, SesError> {
        while let Some(d) = self.step()? {
            if pred(&d) {
                return Ok(Some(d));
            }
        }
        Ok(None)
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Output emitted so far.
    pub fn output(&self) -> &[u64] {
        self.inner.output_so_far()
    }

    /// The current program counter.
    pub fn pc(&self) -> Addr {
        self.inner.pc()
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: ses_types::Reg) -> u64 {
        self.inner.reg(r)
    }

    /// Reads a data-memory word.
    pub fn mem(&self, addr: Addr) -> u64 {
        self.inner.mem(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::Instruction;
    use ses_types::Reg;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn stepper_matches_batch_run() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 4),
            Instruction::add(r(2), r(1), r(1)),
            Instruction::st(r(2), r(1), 0x100),
            Instruction::out(r(2)),
            Instruction::halt(),
        ]);
        let batch = Emulator::new(&p).run(100).unwrap();
        let mut s = Stepper::new(&p);
        let mut streamed = Vec::new();
        while let Some(d) = s.step().unwrap() {
            streamed.push(d);
        }
        assert_eq!(streamed.as_slice(), batch.entries());
        assert_eq!(s.output(), batch.output());
        assert!(s.halted());
        assert!(s.step().unwrap().is_none(), "idempotent after halt");
    }

    #[test]
    fn run_until_finds_a_store() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 0x2000),
            Instruction::movi(r(2), 9),
            Instruction::st(r(1), r(2), 0),
            Instruction::halt(),
        ]);
        let mut s = Stepper::new(&p);
        let hit = s.run_until(|d| d.is_store()).unwrap().expect("store found");
        assert_eq!(hit.mem_written, Some(Addr::new(0x2000)));
        assert_eq!(s.mem(Addr::new(0x2000)), 9, "state visible at the stop");
        assert_eq!(s.reg(r(2)), 9);
    }

    #[test]
    fn run_until_returns_none_at_halt() {
        let p = Program::new(vec![Instruction::nop(), Instruction::halt()]);
        let mut s = Stepper::new(&p);
        assert!(s.run_until(|d| d.is_store()).unwrap().is_none());
        assert!(s.halted());
    }

    #[test]
    fn fault_surfaces_as_error() {
        let p = Program::new(vec![Instruction::jmp(-800)]);
        let mut s = Stepper::new(&p);
        assert!(s.step().unwrap().is_some(), "the jump itself executes");
        assert!(s.step().is_err(), "then the wild fetch faults");
    }
}
