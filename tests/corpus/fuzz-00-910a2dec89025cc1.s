; fuzz corpus entry 0: campaign seed 1, program seed 0x910a2dec89025cc1
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 13    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 782    ; +0x0020
(p0) movi r11 = 1432    ; +0x0028
(p0) movi r12 = 1697    ; +0x0030
(p0) movi r13 = 648    ; +0x0038
(p0) movi r14 = 1018    ; +0x0040
(p0) movi r15 = 1535    ; +0x0048
(p0) movi r16 = 151    ; +0x0050
(p0) movi r17 = 434    ; +0x0058
(p0) movi r18 = 603    ; +0x0060
(p0) movi r19 = 1250    ; +0x0068
(p0) st8 [r3 + 0] = r16    ; +0x0070
(p0) st8 [r3 + 8] = r10    ; +0x0078
(p0) st8 [r3 + 16] = r10    ; +0x0080
(p0) st8 [r3 + 24] = r12    ; +0x0088
(p0) xor r14 = r10, r18    ; +0x0090
(p0) ld8 r19 = [r3 + 32]    ; +0x0098
(p0) and r6 = r14, r4    ; +0x00a0
(p0) cmp.eq p2 = r6, r0    ; +0x00a8
(p2) mul r12 = r15, r10    ; +0x00b0
(p2) add r15 = r11, r19    ; +0x00b8
(p2) xor r11 = r10, r18    ; +0x00c0
(p0) and r6 = r1, r4    ; +0x00c8
(p0) cmp.eq p3 = r6, r0    ; +0x00d0
(p3) out r2    ; +0x00d8
(p0) movi r20 = 82    ; +0x00e0
(p0) add r21 = r20, r4    ; +0x00e8
(p0) mul r22 = r21, r21    ; +0x00f0
(p0) st8 [r3 + 8] = r17    ; +0x00f8
(p0) ld8 r13 = [r3 + 32]    ; +0x0100
(p0) ld8 r11 = [r3 + 32]    ; +0x0108
(p0) and r6 = r1, r4    ; +0x0110
(p0) cmp.eq p4 = r6, r0    ; +0x0118
(p4) out r2    ; +0x0120
(p0) ld8 r17 = [r3 + 24]    ; +0x0128
(p0) movi r19 = -1150    ; +0x0130
(p0) addi r6 = r14, -204    ; +0x0138
(p0) cmp.lt p5 = r6, r0    ; +0x0140
(p5) br +16    ; +0x0148
(p0) add r14 = r19, r4    ; +0x0150
(p0) st8 [r3 + 32] = r12    ; +0x0158
(p0) and r6 = r10, r4    ; +0x0160
(p0) cmp.eq p6 = r6, r0    ; +0x0168
(p6) xor r16 = r18, r16    ; +0x0170
(p6) sub r13 = r10, r19    ; +0x0178
(p0) add r2 = r2, r14    ; +0x0180
(p0) addi r1 = r1, -1    ; +0x0188
(p0) cmp.lt p1 = r0, r1    ; +0x0190
(p1) br -264    ; +0x0198
(p0) out r2    ; +0x01a0
(p0) halt    ; +0x01a8
