//! Blocking HTTP/1.1 client for the serve daemon.
//!
//! One request per connection (the daemon always answers
//! `Connection: close`), so a request is connect → write → read-to-end →
//! parse. Used by the equivalence tests and the loadtest harness.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 text (panics on invalid UTF-8 — artifacts are text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ser-repro\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let body = raw[head_end + 4..].to_vec();
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// POST `body` (JSON text) to `path` on the daemon at `addr`.
pub fn http_post(addr: impl ToSocketAddrs, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(body))
}

/// GET `path` on the daemon at `addr`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_headers_and_body() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\nX-Cache: hit\r\nConnection: close\r\n\r\nbody";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-cache"), Some("hit"));
        assert_eq!(r.body_str(), "body");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
    }
}
