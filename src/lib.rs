//! Umbrella package for examples and integration tests; see `ses-core`.
pub use ses_core as core_api;
