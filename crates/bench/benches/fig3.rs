//! Regenerates **Figure 3**: coverage of FDD (first-level dynamically
//! dead) instructions by PET buffers of varying size.
//!
//! Paper findings being reproduced:
//!
//! * a 512-entry PET buffer covers about 32 % of FDD-via-register
//!   instructions;
//! * return-attributed FDD registers need much larger buffers — around
//!   10,000 entries covers "most" FDD;
//! * FDD tracked via memory needs the largest windows of all.
//!
//! This figure is pure trace analysis (no timing model): coverage comes
//! from the dead map's kill-distance distribution.
//!
//! Run with `cargo bench -p ses-bench --bench fig3`.

use ses_arch::Emulator;
use ses_core::{mean, suite, synthesize, DeadMap, Table};

const SIZES: [u64; 8] = [32, 128, 512, 2048, 4096, 8192, 16384, 65536];

fn main() {
    let mut per_size_nonret: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut per_size_ret: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut per_size_mem: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];

    for spec in suite() {
        let program = synthesize(&spec);
        let trace = Emulator::new(&program)
            .run(spec.target_dynamic * 4)
            .expect("golden run");
        let dead = DeadMap::analyze(&trace);
        for (i, &size) in SIZES.iter().enumerate() {
            per_size_nonret[i].push(dead.pet_coverage_fdd_reg(size, false));
            per_size_ret[i].push(dead.pet_coverage_fdd_reg(size, true));
            per_size_mem[i].push(dead.pet_coverage_with_memory(size));
        }
    }

    let mut table = Table::new(vec![
        "PET entries",
        "FDD-reg (non-return)",
        "FDD-reg (+returns)",
        "FDD (+memory)",
    ]);
    let mut rows = Vec::new();
    for (i, &size) in SIZES.iter().enumerate() {
        let a = mean(per_size_nonret[i].iter().copied());
        let b = mean(per_size_ret[i].iter().copied());
        let c = mean(per_size_mem[i].iter().copied());
        table.row(vec![
            size.to_string(),
            format!("{:.0}%", a * 100.0),
            format!("{:.0}%", b * 100.0),
            format!("{:.0}%", c * 100.0),
        ]);
        rows.push((size, a, b, c));
    }

    println!("\n=== Figure 3: FDD coverage vs PET buffer size ===\n");
    println!("{table}");

    let at = |size: u64| rows.iter().find(|r| r.0 == size).expect("size in sweep");

    // Shape assertions from the paper.
    let (_, _a512, b512, _) = *at(512);
    println!(
        "512-entry PET covers {:.0}% of FDD-reg incl. returns (paper: ~32%)",
        b512 * 100.0
    );
    assert!(
        (0.15..0.70).contains(&b512),
        "512-entry coverage must be partial, got {b512:.2}"
    );
    let (_, _, b16k, c16k) = *at(16384);
    assert!(
        b16k > 0.85,
        "a ~10k-entry buffer covers most FDD-reg (paper), got {b16k:.2}"
    );
    assert!(
        c16k > b512,
        "memory-tracked FDD needs the largest windows"
    );
    // Monotonicity of all three curves.
    for w in rows.windows(2) {
        assert!(w[1].1 >= w[0].1 && w[1].2 >= w[0].2 && w[1].3 >= w[0].3);
    }
    // Return-killed registers need larger buffers: the +returns curve lags
    // at small sizes relative to its own asymptote.
    let gap_small = at(512).2 - at(512).1;
    println!(
        "Return-attributed gap at 512 entries: {:+.0}% of FDD-reg",
        gap_small * 100.0
    );
    println!("\nAll Figure-3 shape assertions hold.");
}
