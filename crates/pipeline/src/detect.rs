//! Error-detection models and single-fault bookkeeping.
//!
//! The [`Detector`] follows one injected single-bit fault through the
//! timing model and decides its fate under the configured detection model:
//!
//! * [`DetectionModel::None`] — an unprotected queue: a corrupted word that
//!   retires flows into architectural state (the fault-injection campaign
//!   then re-runs the functional emulator to see whether program output
//!   changes, i.e. whether this is an SDC);
//! * [`DetectionModel::Parity`] without tracking — any read of a corrupted
//!   entry raises a machine check at issue: every such fault is a DUE,
//!   true or false;
//! * [`DetectionModel::Parity`] with [`TrackingConfig`] — the paper's
//!   machinery: the π bit is set instead of signalling, the anti-π bit
//!   suppresses errors on non-opcode bits of neutral instructions, and the
//!   configured [`PiScope`] (plus optional PET buffer) decides where, if
//!   anywhere, the error is finally signalled.

use ses_arch::DynInstr;
use ses_isa::{field_mask, BitKind};
use ses_types::Cycle;

use crate::iq::IqEntry;
use crate::pet::{PetBuffer, PetEntry, PetVerdict};
use crate::pibit::{PiScope, PiStep, PiTracker, SignalPoint};
use crate::residency::{Occupant, ResidencyEnd};

/// A fault to inject: flip `bit` (and optionally `second_bit`, modelling a
/// single particle upsetting two adjacent cells — the paper's §2 multi-bit
/// discussion) of the word in `slot` at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injection cycle.
    pub cycle: Cycle,
    /// Queue slot to strike.
    pub slot: usize,
    /// Bit position within the stored word (0–63).
    pub bit: u32,
    /// Optional second upset bit (multi-bit fault).
    pub second_bit: Option<u32>,
    /// When set, the second bit lands at this later cycle instead of
    /// simultaneously — two independent strikes *accumulating* in the same
    /// entry, the failure mode periodic scrubbing defends against (§2).
    /// The second strike only applies if the originally struck entry is
    /// still resident.
    pub second_cycle: Option<Cycle>,
    /// When set, the first strike flips this arbitrary multi-bit mask
    /// instead of the bit/second_bit pair — the spatial strike-pattern
    /// model. `bit` stays the anchor (lowest flipped bit) so stratum and
    /// replay bookkeeping keep working.
    pub pattern: Option<u64>,
    /// Verdict of the ECC protection domain guarding the struck word, if
    /// one is configured. `None` means no ECC domain (or the pattern was
    /// fully corrected, in which case no fault is injected at all).
    pub ecc: Option<EccReadOutcome>,
}

/// What a word's ECC domain concluded about the injected strike pattern,
/// precomputed by the campaign layer (the codeword algebra lives in
/// `ses-mem`; the pipeline only needs the disposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccReadOutcome {
    /// Uncorrectable but detected: the read raises a machine check (DUE).
    Signal,
    /// The pattern escaped the decoder (undetected codeword or silent
    /// miscorrection): the corrupted word flows on as an SDC candidate.
    Silent,
}

impl FaultSpec {
    /// A single-bit fault.
    pub fn single(cycle: Cycle, slot: usize, bit: u32) -> Self {
        FaultSpec {
            cycle,
            slot,
            bit,
            second_bit: None,
            second_cycle: None,
            pattern: None,
            ecc: None,
        }
    }

    /// An adjacent double-bit fault (bit and bit+1, wrapping),
    /// simultaneous (one particle, two cells).
    pub fn adjacent_double(cycle: Cycle, slot: usize, bit: u32) -> Self {
        FaultSpec {
            second_bit: Some((bit + 1) % 64),
            ..FaultSpec::single(cycle, slot, bit)
        }
    }

    /// Two independent strikes on the same entry, `gap` cycles apart.
    pub fn temporal_double(cycle: Cycle, slot: usize, bit: u32, gap: u64) -> Self {
        FaultSpec {
            second_bit: Some((bit + 1) % 64),
            second_cycle: Some(cycle + gap),
            ..FaultSpec::single(cycle, slot, bit)
        }
    }

    /// A spatial multi-bit strike: `mask` is flipped simultaneously at
    /// `cycle`, and `ecc` carries the word's protection-domain verdict
    /// (if any). The anchor bit is the lowest flipped bit.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is empty.
    pub fn with_pattern(
        cycle: Cycle,
        slot: usize,
        mask: u64,
        ecc: Option<EccReadOutcome>,
    ) -> Self {
        assert_ne!(mask, 0, "a strike pattern flips at least one bit");
        FaultSpec {
            pattern: Some(mask),
            ecc,
            ..FaultSpec::single(cycle, slot, mask.trailing_zeros())
        }
    }

    /// The XOR mask applied at the first strike.
    pub fn mask(&self) -> u64 {
        if let Some(p) = self.pattern {
            return p;
        }
        let second_now = match self.second_cycle {
            None => self.second_bit.map(|b| 1u64 << b).unwrap_or(0),
            Some(_) => 0,
        };
        (1u64 << self.bit) | second_now
    }

    /// The XOR mask of the deferred second strike, if any.
    pub fn second_mask(&self) -> Option<(Cycle, u64)> {
        match (self.second_cycle, self.second_bit) {
            (Some(c), Some(b)) => Some((c, 1u64 << b)),
            _ => None,
        }
    }
}

/// Configuration of the π-bit tracking machinery layered over parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackingConfig {
    /// How far signalling is deferred.
    pub scope: PiScope,
    /// Whether the anti-π bit suppresses non-opcode faults on neutral
    /// instructions.
    pub anti_pi: bool,
    /// Optional PET buffer capacity (only meaningful with
    /// [`PiScope::Commit`]).
    pub pet_entries: Option<usize>,
    /// π granularity in the memory system (bytes, power of two).
    pub mem_granule: u64,
}

impl TrackingConfig {
    /// The paper's §6.3 configuration: π carried to the store-commit point,
    /// anti-π enabled, no PET buffer.
    pub fn paper_combined() -> Self {
        TrackingConfig {
            scope: PiScope::StoreCommit,
            anti_pi: true,
            pet_entries: None,
            mem_granule: 8,
        }
    }
}

/// The error-detection capability of the instruction queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectionModel {
    /// No detection: strikes on consumed state become potential SDC.
    #[default]
    None,
    /// One parity bit per entry, checked when the entry is read at issue.
    /// An even number of flipped bits escapes detection (§2's multi-bit
    /// caveat).
    Parity {
        /// Optional π-bit tracking; `None` means every detection signals
        /// a machine check immediately.
        tracking: Option<TrackingConfig>,
    },
    /// `domains` interleaved parity groups per entry (bit *i* belongs to
    /// domain `i % domains`): the physical-interleaving defence the paper
    /// cites against multi-bit upsets. Detection fires when any domain has
    /// an odd number of flips.
    InterleavedParity {
        /// Number of parity domains (≥ 1).
        domains: u32,
        /// Optional π-bit tracking.
        tracking: Option<TrackingConfig>,
    },
}

impl DetectionModel {
    /// Parity domains this model checks (0 = no detection at all).
    fn domains(&self) -> u32 {
        match self {
            DetectionModel::None => 0,
            DetectionModel::Parity { .. } => 1,
            DetectionModel::InterleavedParity { domains, .. } => (*domains).max(1),
        }
    }

    fn tracking_config(&self) -> Option<TrackingConfig> {
        match self {
            DetectionModel::None => None,
            DetectionModel::Parity { tracking }
            | DetectionModel::InterleavedParity { tracking, .. } => *tracking,
        }
    }
}

/// Whether interleaved parity with `domains` groups detects the given
/// flipped-bit mask (any domain with an odd flip count).
pub fn parity_detects(flipped: u64, domains: u32) -> bool {
    if domains == 0 {
        return false;
    }
    (0..domains).any(|d| {
        let mut count = 0u32;
        let mut bit = d;
        while bit < 64 {
            count += ((flipped >> bit) & 1) as u32;
            bit += domains;
        }
        count % 2 == 1
    })
}

/// Why a detected error was never signalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// The corrupted instruction was on the wrong path.
    WrongPath,
    /// The corrupted instruction's qualifying predicate was false.
    FalselyPredicated,
    /// The corrupted entry was squashed by the exposure-reduction action
    /// and refetched cleanly.
    Squashed,
    /// The anti-π bit: a non-opcode fault on a neutral instruction.
    AntiPi,
    /// The PET buffer proved the instruction first-level dynamically dead.
    PetProvenDead,
    /// The poisoned value was overwritten before any consuming read.
    DeadValueOverwritten,
    /// The program ended with the poison never consumed.
    UnconsumedAtEnd,
}

/// What the corruption was, for downstream (functional) classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// Who held the struck entry.
    pub occupant: Occupant,
    /// The corrupted 64-bit word.
    pub corrupted_word: u64,
    /// Whether the occupant's guard evaluated false.
    pub falsely_predicated: bool,
}

/// Final fate of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The targeted slot was unoccupied at the injection cycle (or the run
    /// ended first): outcome 1 of the paper's Figure 1.
    SlotIdle,
    /// The struck entry was never read after the strike (idle/Ex-ACE
    /// state, or discarded by squash/flush before issue): benign.
    NeverRead {
        /// How the struck entry's residency ended.
        end: ResidencyEnd,
    },
    /// No detection: the corrupted word was read and later retired into
    /// architectural state. Whether this is an SDC is decided functionally.
    CorruptIssued {
        /// The corruption details.
        corruption: Corruption,
    },
    /// A machine check was raised.
    Signalled {
        /// Where in the machine the error was signalled.
        point: SignalPoint,
        /// The corruption details.
        corruption: Corruption,
    },
    /// The error was detected but proven harmless; no machine check.
    Suppressed {
        /// Why it was safe to stay silent.
        reason: SuppressReason,
        /// The corruption details.
        corruption: Corruption,
    },
}

impl FaultOutcome {
    /// Whether this outcome raised a machine check (a DUE event).
    pub fn is_signalled(&self) -> bool {
        matches!(self, FaultOutcome::Signalled { .. })
    }
}

#[derive(Debug, Clone)]
struct Struck {
    corruption: Corruption,
    /// Set once parity has seen the mismatch (entry read post-strike).
    detected: bool,
    /// Under [`DetectionModel::None`]: corrupted word was issued.
    corrupt_issued: bool,
}

/// Tracks one injected fault through the pipeline.
#[derive(Debug, Clone)]
pub struct Detector {
    model: DetectionModel,
    injected: bool,
    struck: Option<Struck>,
    outcome: Option<FaultOutcome>,
    tracker: Option<PiTracker>,
    pet: Option<PetBuffer>,
    /// Trace index of the corrupted instruction once committed (for PET
    /// verdict matching).
    pi_trace_idx: Option<u64>,
    /// Precomputed ECC protection-domain verdict for the injected
    /// pattern, consulted at the first read of the corrupted word.
    ecc_verdict: Option<EccReadOutcome>,
}

impl Detector {
    /// Creates a detector for one run.
    pub fn new(model: DetectionModel) -> Self {
        let (tracker, pet) = match model.tracking_config() {
            Some(t) => {
                let tracker = PiTracker::new(t.scope, t.mem_granule);
                let pet = match (t.scope, t.pet_entries) {
                    (PiScope::Commit, Some(n)) => Some(PetBuffer::new(n)),
                    _ => None,
                };
                (Some(tracker), pet)
            }
            None => (None, None),
        };
        Detector {
            model,
            injected: false,
            struck: None,
            outcome: None,
            tracker,
            pet,
            pi_trace_idx: None,
            ecc_verdict: None,
        }
    }

    /// Arms the ECC protection-domain verdict for the injected pattern.
    /// Called by the engine alongside the injection itself, so snapshots
    /// taken before the strike resume with a clean detector and re-arm
    /// identically.
    pub fn set_ecc_verdict(&mut self, verdict: Option<EccReadOutcome>) {
        self.ecc_verdict = verdict;
    }

    fn tracking(&self) -> Option<TrackingConfig> {
        self.model.tracking_config()
    }

    /// The resolved outcome, once known.
    pub fn outcome(&self) -> Option<&FaultOutcome> {
        self.outcome.as_ref()
    }

    /// Applies a *follow-up* strike to the already-struck entry,
    /// accumulating corruption (temporal double faults).
    pub fn on_second_strike(&mut self, entry: &mut IqEntry, mask: u64) {
        if self.outcome.is_some() {
            return;
        }
        entry.word ^= mask;
        if let Some(struck) = self.struck.as_mut() {
            struck.corruption.corrupted_word = entry.word;
        }
    }

    /// Scrub pass: the hardware re-reads the entry in the background and
    /// checks parity. Returns `true` when the run can stop early.
    ///
    /// Without a detection mechanism there is nothing to scrub with, so
    /// this is a no-op under [`DetectionModel::None`] (unlike an issue
    /// read, a scrub does not consume the value architecturally).
    pub fn on_scrub(&mut self, entry: &mut IqEntry) -> bool {
        if matches!(self.model, DetectionModel::None) {
            return false;
        }
        // A scrub read is detection-wise identical to an issue read.
        self.on_issue(entry)
    }

    /// Applies the strike to an entry (or records an idle slot).
    pub fn on_injection(&mut self, entry: Option<&mut IqEntry>, mask: u64) {
        self.injected = true;
        match entry {
            None => self.outcome = Some(FaultOutcome::SlotIdle),
            Some(e) => {
                e.word ^= mask;
                self.struck = Some(Struck {
                    corruption: Corruption {
                        occupant: e.occupant,
                        corrupted_word: e.word,
                        falsely_predicated: e.falsely_predicated,
                    },
                    detected: false,
                    corrupt_issued: false,
                });
            }
        }
    }

    /// Called when `entry` is read by issue logic. Returns `true` when the
    /// run can stop early (outcome fully resolved).
    pub fn on_issue(&mut self, entry: &mut IqEntry) -> bool {
        if self.outcome.is_some() {
            return true;
        }
        let Some(struck) = self.struck.as_mut() else {
            return false;
        };
        if !entry.parity_mismatch() {
            return false;
        }
        if let Some(verdict) = self.ecc_verdict {
            // The word sits behind an ECC protection domain: the decoder
            // runs at this first read and its verdict was precomputed from
            // the full strike pattern (corrected patterns never reach the
            // pipeline at all).
            return match verdict {
                EccReadOutcome::Signal => {
                    self.outcome = Some(FaultOutcome::Signalled {
                        point: SignalPoint::EccCheck,
                        corruption: struck.corruption,
                    });
                    true
                }
                EccReadOutcome::Silent => {
                    struck.corrupt_issued = true;
                    false // resolution waits for retire vs. squash
                }
            };
        }
        let flipped = entry.word ^ entry.original_word;
        if !parity_detects(flipped, self.model.domains()) {
            // No detection (no parity, or an even number of flips inside
            // every parity domain): the corruption flows architecturally.
            struck.corrupt_issued = true;
            return false; // resolution waits for retire vs. squash
        }
        match self.model.tracking_config() {
            None => {
                self.outcome = Some(FaultOutcome::Signalled {
                    point: SignalPoint::IssueParity,
                    corruption: struck.corruption,
                });
                true
            }
            Some(cfg) => {
                if cfg.anti_pi && entry.anti_pi && flipped & field_mask(BitKind::Opcode) == 0 {
                    self.outcome = Some(FaultOutcome::Suppressed {
                        reason: SuppressReason::AntiPi,
                        corruption: struck.corruption,
                    });
                    return true;
                }
                entry.pi = true;
                struck.detected = true;
                false
            }
        }
    }

    /// Called when any entry leaves the queue without retiring, or when the
    /// struck entry's residency otherwise ends. Returns `true` when the run
    /// can stop early.
    pub fn on_dealloc(&mut self, entry: &IqEntry, end: ResidencyEnd) -> bool {
        if self.outcome.is_some() {
            return true;
        }
        let Some(struck) = self.struck.as_ref() else {
            return false;
        };
        if !entry.parity_mismatch() {
            return false;
        }
        // The struck entry's residency is over without an architectural
        // commit of the corrupted word.
        if end == ResidencyEnd::Retired {
            return false; // handled by on_commit
        }
        let outcome = if struck.detected {
            // π was set; the discard suppresses the error.
            let reason = match end {
                ResidencyEnd::FlushedWrongPath => SuppressReason::WrongPath,
                ResidencyEnd::Squashed => SuppressReason::Squashed,
                _ => SuppressReason::UnconsumedAtEnd,
            };
            FaultOutcome::Suppressed {
                reason,
                corruption: struck.corruption,
            }
        } else {
            FaultOutcome::NeverRead { end }
        };
        self.outcome = Some(outcome);
        true
    }

    /// Called at every correct-path retirement, in program order. Returns
    /// `true` when the run can stop early.
    pub fn on_commit(&mut self, entry: &IqEntry, d: &DynInstr) -> bool {
        if self.outcome.is_some() {
            return true;
        }
        let is_corrupted = entry.parity_mismatch();
        let self_pi = entry.pi;

        if is_corrupted {
            if let Some(struck) = self.struck.as_ref() {
                if struck.corrupt_issued {
                    // Consumed without detection (no parity, or a
                    // multi-bit flip that defeated it): architectural
                    // corruption.
                    self.outcome = Some(FaultOutcome::CorruptIssued {
                        corruption: struck.corruption,
                    });
                    return true;
                }
                if !self_pi {
                    // Struck after its last read: never consumed, never
                    // detected (the retire unit does not re-read the
                    // word) -- benign.
                    self.outcome = Some(FaultOutcome::NeverRead {
                        end: ResidencyEnd::Retired,
                    });
                    return true;
                }
            }
        }

        let Some(_cfg) = self.tracking() else {
            return false;
        };

        // Retire-unit filter: the π bit of a falsely predicated
        // instruction is ignored (§4.3.1).
        if self_pi && entry.falsely_predicated {
            if let Some(struck) = self.struck.as_ref() {
                self.outcome = Some(FaultOutcome::Suppressed {
                    reason: SuppressReason::FalselyPredicated,
                    corruption: struck.corruption,
                });
            }
            return true;
        }

        if self_pi {
            self.pi_trace_idx = Some(d.index);
        }

        // PET path: log every commit; verdicts arrive on eviction.
        if let Some(pet) = self.pet.as_mut() {
            let mut reads = [None, None];
            if d.executed {
                for (i, r) in d.regs_read().take(2).enumerate() {
                    reads[i] = Some(r);
                }
            }
            let verdicts = pet.push(PetEntry {
                trace_idx: d.index,
                dest: d.reg_written,
                reads,
                pi: self_pi,
            });
            return self.apply_pet_verdicts(&verdicts);
        }

        // π-scope path.
        if let Some(tracker) = self.tracker.as_mut() {
            if let Some(struck) = self.struck.as_ref() {
                match tracker.on_commit(d, self_pi) {
                    PiStep::Quiet => {}
                    PiStep::Signal(point) => {
                        self.outcome = Some(FaultOutcome::Signalled {
                            point,
                            corruption: struck.corruption,
                        });
                        return true;
                    }
                }
            }
            // With Commit scope the tracker signalled already when needed;
            // suppression of never-struck runs needs no bookkeeping.
        }
        false
    }

    fn apply_pet_verdicts(&mut self, verdicts: &[(u64, PetVerdict)]) -> bool {
        let Some(struck) = self.struck.as_ref() else {
            return false;
        };
        for &(idx, verdict) in verdicts {
            if Some(idx) == self.pi_trace_idx {
                self.outcome = Some(match verdict {
                    PetVerdict::ProvenDead => FaultOutcome::Suppressed {
                        reason: SuppressReason::PetProvenDead,
                        corruption: struck.corruption,
                    },
                    PetVerdict::MustSignal => FaultOutcome::Signalled {
                        point: SignalPoint::PetEviction,
                        corruption: struck.corruption,
                    },
                });
                return true;
            }
        }
        false
    }

    /// The outcome this detector is guaranteed to report at end of run
    /// *if nothing it observes from here on can change its state* — the
    /// convergence-pruning predicate.
    ///
    /// Returns `Some` exactly when the injected fault has fully played
    /// out: the strike landed, parity saw it (π was set), every poisoned
    /// location has since been overwritten (`poison_pending()` is false),
    /// and no PET buffer holds deferred verdicts. In that state
    /// [`PiTracker::on_commit`] can only ever return `Quiet` again (all
    /// of its signal paths require a poisoned source), so
    /// [`Detector::finish`] must resolve to
    /// [`SuppressReason::DeadValueOverwritten`] no matter how the rest of
    /// the run unfolds. The engine combines this with a
    /// fingerprint match against the golden run to stop the replay early.
    pub(crate) fn quiescent_verdict(&self) -> Option<FaultOutcome> {
        if self.outcome.is_some() || !self.injected || self.pet.is_some() {
            return None;
        }
        let struck = self.struck.as_ref()?;
        if !struck.detected {
            return None;
        }
        let tracker = self.tracker.as_ref()?;
        if tracker.poison_pending() {
            return None;
        }
        Some(FaultOutcome::Suppressed {
            reason: SuppressReason::DeadValueOverwritten,
            corruption: struck.corruption,
        })
    }

    /// Resolves the final outcome at end of run.
    pub fn finish(mut self) -> Option<FaultOutcome> {
        if self.outcome.is_some() {
            return self.outcome;
        }
        if !self.injected {
            // The run ended before the injection cycle.
            return Some(FaultOutcome::SlotIdle);
        }
        let struck_detected = self.struck.as_ref()?.detected;
        let struck_corruption = self.struck.as_ref()?.corruption;
        // Drain the PET buffer.
        if let Some(mut pet) = self.pet.take() {
            let verdicts = pet.drain();
            if self.apply_pet_verdicts(&verdicts) {
                return self.outcome;
            }
        }
        if struck_detected {
            let reason = match self.tracker.as_ref() {
                Some(t) if t.poison_pending() => SuppressReason::UnconsumedAtEnd,
                Some(_) => SuppressReason::DeadValueOverwritten,
                None => SuppressReason::UnconsumedAtEnd,
            };
            return Some(FaultOutcome::Suppressed {
                reason,
                corruption: struck_corruption,
            });
        }
        // Struck but never read and still resident: handled by drain as
        // NeverRead via on_dealloc; if we get here, report it directly.
        Some(FaultOutcome::NeverRead {
            end: ResidencyEnd::Drained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::Instruction;
    use ses_types::{Reg, SeqNo};

    fn entry(instr: Instruction) -> IqEntry {
        IqEntry::new(
            Occupant::CorrectPath { trace_idx: 0 },
            instr,
            SeqNo::new(0),
            Cycle::ZERO,
            false,
        )
    }

    #[test]
    fn parity_without_tracking_signals_at_issue() {
        let mut det = Detector::new(DetectionModel::Parity { tracking: None });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 1 << 30);
        assert!(det.on_issue(&mut e));
        assert!(matches!(
            det.outcome(),
            Some(FaultOutcome::Signalled {
                point: SignalPoint::IssueParity,
                ..
            })
        ));
    }

    #[test]
    fn idle_slot_resolves_immediately() {
        let mut det = Detector::new(DetectionModel::default());
        det.on_injection(None, 1 << 5);
        assert_eq!(det.outcome(), Some(&FaultOutcome::SlotIdle));
    }

    #[test]
    fn clean_issue_is_ignored() {
        let mut det = Detector::new(DetectionModel::Parity { tracking: None });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 1 << 30);
        let mut clean = entry(Instruction::halt());
        assert!(!det.on_issue(&mut clean));
        assert!(det.outcome().is_none());
    }

    #[test]
    fn anti_pi_suppresses_non_opcode_fault_on_neutral() {
        let cfg = TrackingConfig {
            scope: PiScope::Commit,
            anti_pi: true,
            pet_entries: None,
            mem_granule: 8,
        };
        let mut det = Detector::new(DetectionModel::Parity {
            tracking: Some(cfg),
        });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 1 << 35); // bit 35 = immediate field
        assert!(det.on_issue(&mut e));
        assert!(matches!(
            det.outcome(),
            Some(FaultOutcome::Suppressed {
                reason: SuppressReason::AntiPi,
                ..
            })
        ));
    }

    #[test]
    fn anti_pi_does_not_cover_opcode_bits() {
        let cfg = TrackingConfig {
            scope: PiScope::Commit,
            anti_pi: true,
            pet_entries: None,
            mem_granule: 8,
        };
        let mut det = Detector::new(DetectionModel::Parity {
            tracking: Some(cfg),
        });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 1 << 2); // opcode bit
        assert!(!det.on_issue(&mut e), "opcode fault sets π and continues");
        assert!(e.pi);
    }

    #[test]
    fn unread_then_flushed_is_benign() {
        let mut det = Detector::new(DetectionModel::Parity { tracking: None });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 1 << 30);
        assert!(det.on_dealloc(&e, ResidencyEnd::FlushedWrongPath));
        assert_eq!(
            det.outcome(),
            Some(&FaultOutcome::NeverRead {
                end: ResidencyEnd::FlushedWrongPath
            })
        );
    }

    #[test]
    fn never_injected_run_is_slot_idle() {
        let det = Detector::new(DetectionModel::default());
        assert_eq!(det.finish(), Some(FaultOutcome::SlotIdle));
    }

    #[test]
    fn pet_requires_commit_scope() {
        let cfg = TrackingConfig {
            scope: PiScope::Register,
            anti_pi: false,
            pet_entries: Some(512),
            mem_granule: 8,
        };
        let det = Detector::new(DetectionModel::Parity {
            tracking: Some(cfg),
        });
        assert!(det.pet.is_none(), "PET only instantiates at Commit scope");
    }

    #[test]
    fn parity_detects_odd_flips_only() {
        assert!(parity_detects(1 << 7, 1));
        assert!(!parity_detects(0b11, 1), "two flips defeat one parity bit");
        assert!(parity_detects(0b111, 1));
        // Two interleaved domains: adjacent bits land in different groups.
        assert!(parity_detects(0b11, 2));
        // ...but two flips inside the SAME domain still escape.
        assert!(!parity_detects(0b101, 2));
        assert!(parity_detects(0b101, 4));
        assert!(!parity_detects(0b1_0001, 4), "bits 0 and 4 share a domain");
        assert!(!parity_detects(1 << 3, 0), "domains=0 detects nothing");
        assert!(!parity_detects(0, 1), "no flips, no detection");
    }

    #[test]
    fn double_bit_fault_escapes_single_parity() {
        let mut det = Detector::new(DetectionModel::Parity { tracking: None });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 0b11 << 30); // adjacent double flip
        assert!(!det.on_issue(&mut e), "parity must not see an even flip");
        assert!(det.outcome().is_none(), "the corruption flows on silently");
    }

    #[test]
    fn double_bit_fault_caught_by_interleaved_parity() {
        let mut det = Detector::new(DetectionModel::InterleavedParity {
            domains: 2,
            tracking: None,
        });
        let mut e = entry(Instruction::nop());
        det.on_injection(Some(&mut e), 0b11 << 30);
        assert!(det.on_issue(&mut e));
        assert!(matches!(
            det.outcome(),
            Some(FaultOutcome::Signalled {
                point: SignalPoint::IssueParity,
                ..
            })
        ));
    }

    #[test]
    fn fault_spec_masks() {
        let s = FaultSpec::single(Cycle::new(1), 2, 5);
        assert_eq!(s.mask(), 1 << 5);
        let d = FaultSpec::adjacent_double(Cycle::new(1), 2, 63);
        assert_eq!(d.mask(), (1 << 63) | 1, "wraps at the word boundary");
    }

    #[test]
    fn corrupt_issue_without_detection_waits_for_commit() {
        let mut det = Detector::new(DetectionModel::None);
        let mut e = entry(Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)));
        det.on_injection(Some(&mut e), 1 << 30);
        assert!(!det.on_issue(&mut e), "no early stop: squash could discard");
        let d = DynInstr {
            index: 0,
            pc: ses_types::Addr::new(0x1_0000),
            instr: e.instr,
            executed: true,
            reg_written: Some(Reg::new(1)),
            pred_written: None,
            mem_read: None,
            mem_written: None,
            taken: None,
            next_pc: ses_types::Addr::new(0x1_0008),
            call_depth: 0,
            emitted: None,
        };
        assert!(det.on_commit(&e, &d));
        assert!(matches!(
            det.outcome(),
            Some(FaultOutcome::CorruptIssued { .. })
        ));
    }
}
