//! The SES-64 instruction set.
//!
//! SES-64 is a small, fully specified, IA-64-flavoured ISA built for this
//! reproduction: in-order machines, full predication (every instruction
//! carries a qualifying predicate), explicit no-ops / prefetches / branch
//! hints (the paper's *neutral* instruction types), and an explicit `out`
//! instruction that represents committing data to an I/O device — the point
//! where a π bit finally goes out of scope in the paper's design (4) of
//! §4.3.3.
//!
//! Every instruction encodes to exactly one 64-bit word ([`encode`]); the
//! per-bit field map ([`bit_kind`]) tells the AVF analysis and the fault
//! injector what each of the 64 bits means, so that ACE rules like "a strike
//! on any bit of a dynamically dead instruction *except the destination
//! register specifier bits* will not change the final outcome" (§4.1) can be
//! applied per bit.
//!
//! # Example
//!
//! ```
//! use ses_isa::{decode, encode, Instruction};
//! use ses_types::{Pred, Reg};
//!
//! let add = Instruction::add(Reg::new(3), Reg::new(1), Reg::new(2));
//! let word = encode(&add);
//! assert_eq!(decode(word)?, add);
//! assert_eq!(add.to_string(), "(p0) add r3 = r1, r2");
//! # Ok::<(), ses_types::SesError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod asm;
mod encode;
mod fields;
mod instr;
mod opcode;
mod program;

pub use asm::{assemble, disassemble};
pub use encode::{decode, encode, INSTR_BYTES};
pub use fields::{bit_kind, bits_of_kind, field_mask, BitKind, BIT_COUNT};
pub use instr::Instruction;
pub use opcode::{Opcode, OpcodeClass};
pub use program::{static_target, DataSegment, Label, Program, ProgramBuilder};
