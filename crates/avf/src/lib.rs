//! ACE analysis and AVF computation (the methodology of Mukherjee et al.
//! [MICRO 2003], extended by the paper to DUE rates).
//!
//! Pipeline: run the timing model (`ses-pipeline`) to get the
//! instruction-queue residency log, run [`DeadMap::analyze`] over the
//! functional trace to classify dynamically dead instructions, then feed
//! both to [`AvfAnalysis`] to obtain:
//!
//! * the **SDC AVF** of the unprotected queue (ACE bit-cycles / total);
//! * the **DUE AVF** of the parity-protected queue, decomposed into true
//!   DUE (= SDC AVF) and false DUE (§2.2);
//! * the false-DUE breakdown by cause, and the **coverage** each of the
//!   paper's tracking techniques achieves (§4.3, Figure 2);
//! * PET-buffer coverage as a function of capacity (Figure 3) directly
//!   from the dead map's kill-distance distribution.
//!
//! # Example
//!
//! ```
//! use ses_arch::Emulator;
//! use ses_avf::{AvfAnalysis, DeadMap};
//! use ses_pipeline::{Pipeline, PipelineConfig};
//! use ses_workloads::{synthesize, WorkloadSpec};
//!
//! let spec = WorkloadSpec::quick("demo", 3);
//! let program = synthesize(&spec);
//! let trace = Emulator::new(&program).run(100_000)?;
//! let dead = DeadMap::analyze(&trace);
//! let result = Pipeline::new(PipelineConfig::default()).run(&program, &trace);
//! let avf = AvfAnalysis::new(&result, &dead);
//! assert!(avf.due_avf().fraction() >= avf.sdc_avf().fraction());
//! # Ok::<(), ses_types::SesError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ace;
mod avf;
mod dead;
pub mod exhaustive;
mod regfile;
pub mod region;
pub mod span;

pub use ace::{classify, FalseDueCause, ResidencyBits};
pub use region::{BoundaryKind, Region, RegionFault, RegionMap};
pub use avf::{
    AvfAnalysis, BitCycleDecomposition, KindAvf, StateFractions, Technique, TimelinePoint,
};
pub use dead::{DeadInfo, DeadKind, DeadMap};
pub use regfile::RegFileAvf;
pub use span::{
    lifetime_spans, occupancy_intervals, LifetimeSpan, ResidencySpans, Segment, SpanClass,
    SpanSet, StrikeIndex, StrikePhase,
};
