//! Architectural register state.

use ses_types::{Addr, Pred, Reg};

/// The architectural state of a SES-64 machine: 64 general registers
/// (`r0` hardwired to zero), 8 predicate registers (`p0` hardwired true),
/// and the program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; Reg::COUNT],
    preds: [bool; Pred::COUNT],
    pc: Addr,
}

impl ArchState {
    /// Fresh state: all registers zero, all predicates false (except the
    /// hardwired `p0`), PC at `entry`.
    pub fn new(entry: Addr) -> Self {
        let mut preds = [false; Pred::COUNT];
        preds[0] = true;
        ArchState {
            regs: [0; Reg::COUNT],
            preds,
            pc: entry,
        }
    }

    /// Reads a general register; `r0` always reads zero.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a general register; writes to `r0` are discarded.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a predicate register; `p0` always reads true.
    pub fn pred(&self, p: Pred) -> bool {
        if p.is_always_true() {
            true
        } else {
            self.preds[p.index()]
        }
    }

    /// Writes a predicate register; writes to `p0` are discarded.
    pub fn set_pred(&mut self, p: Pred, value: bool) {
        if !p.is_always_true() {
            self.preds[p.index()] = value;
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: Addr) {
        self.pc = pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut s = ArchState::new(Addr::new(0x1000));
        s.set_reg(Reg::ZERO, 99);
        assert_eq!(s.reg(Reg::ZERO), 0);
        s.set_reg(Reg::new(5), 99);
        assert_eq!(s.reg(Reg::new(5)), 99);
    }

    #[test]
    fn p0_is_hardwired_true() {
        let mut s = ArchState::new(Addr::new(0x1000));
        assert!(s.pred(Pred::TRUE));
        s.set_pred(Pred::TRUE, false);
        assert!(s.pred(Pred::TRUE));
        assert!(!s.pred(Pred::new(3)));
        s.set_pred(Pred::new(3), true);
        assert!(s.pred(Pred::new(3)));
    }

    #[test]
    fn pc_tracks() {
        let mut s = ArchState::new(Addr::new(0x1000));
        assert_eq!(s.pc(), Addr::new(0x1000));
        s.set_pc(Addr::new(0x1008));
        assert_eq!(s.pc(), Addr::new(0x1008));
    }
}
