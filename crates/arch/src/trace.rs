//! Dynamic execution traces.

use ses_isa::{Instruction, Opcode, OpcodeClass};
use ses_types::{Addr, Pred, Reg};

/// One committed-path dynamic instruction, as recorded by the emulator.
///
/// The timing model replays these records in order; the dead-instruction
/// analysis walks them backwards. Wrong-path instructions never appear here —
/// they are synthesised by the front end from the static image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynInstr {
    /// Position in the dynamic trace (0-based).
    pub index: u64,
    /// Fetch address.
    pub pc: Addr,
    /// The static instruction.
    pub instr: Instruction,
    /// Whether the qualifying predicate evaluated true. When false the
    /// instruction is *falsely predicated*: it flows down the pipeline but
    /// has no architectural effect.
    pub executed: bool,
    /// The general register actually written (guard true, op writes, and
    /// destination is not `r0`).
    pub reg_written: Option<Reg>,
    /// The predicate register actually written.
    pub pred_written: Option<Pred>,
    /// Word-aligned data address read (executed loads only).
    pub mem_read: Option<Addr>,
    /// Word-aligned data address written (executed stores only).
    pub mem_written: Option<Addr>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// Address of the next committed-path instruction.
    pub next_pc: Addr,
    /// Call nesting depth *at* this instruction (entry code is depth 0).
    pub call_depth: u32,
    /// Value emitted to the output stream (executed `out` only).
    pub emitted: Option<u64>,
}

impl DynInstr {
    /// The general registers this dynamic instance actually read (empty when
    /// the guard was false).
    pub fn regs_read(&self) -> impl Iterator<Item = Reg> + '_ {
        self.executed
            .then(|| self.instr.reads())
            .into_iter()
            .flatten()
    }

    /// Whether this is an executed store.
    pub fn is_store(&self) -> bool {
        self.mem_written.is_some()
    }

    /// Whether this dynamic instruction produced user-visible output.
    pub fn is_output(&self) -> bool {
        self.emitted.is_some()
    }

    /// Whether the instruction is a control transfer.
    pub fn is_control(&self) -> bool {
        self.instr.op.is_control()
    }

    /// Whether this dynamic instance changed architectural state visible
    /// after commit (register file, predicate file, memory, or the output
    /// stream).
    pub fn commits_state(&self) -> bool {
        self.reg_written.is_some()
            || self.pred_written.is_some()
            || self.mem_written.is_some()
            || self.emitted.is_some()
    }

    /// Cross-checks the recorded side effects against what the static
    /// instruction definition permits. The differential oracle runs this on
    /// every committed instruction: a violation means the emulator's record
    /// and the ISA metadata (which the timing model and the ACE analysis
    /// both trust) disagree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent side effect.
    pub fn check_static_consistency(&self) -> Result<(), String> {
        let op = self.instr.op;
        if let Some(r) = self.reg_written {
            if !self.executed {
                return Err(format!("guard-false instance wrote {r}"));
            }
            if !op.writes_reg() {
                return Err(format!("{op} cannot write a register, wrote {r}"));
            }
            if r != self.instr.dest {
                return Err(format!("wrote {r}, but destination is {}", self.instr.dest));
            }
            if r.is_zero() {
                return Err("recorded a write to the hardwired zero register".into());
            }
        }
        if let Some(p) = self.pred_written {
            if !self.executed || !op.writes_pred() {
                return Err(format!("unexpected predicate write to {p} by {op}"));
            }
            if p != self.instr.pdest {
                return Err(format!("wrote {p}, but pdest is {}", self.instr.pdest));
            }
        }
        if self.mem_read.is_some() && !(self.executed && op == Opcode::Ld) {
            return Err(format!("memory read recorded for {op}"));
        }
        if self.mem_written.is_some() && !(self.executed && op == Opcode::St) {
            return Err(format!("memory write recorded for {op}"));
        }
        if self.taken.is_some() != op.is_conditional_branch() {
            return Err(format!("branch outcome presence mismatches {op}"));
        }
        if self.emitted.is_some() && !(self.executed && op == Opcode::Out) {
            return Err(format!("output emission recorded for {op}"));
        }
        Ok(())
    }
}

/// Aggregate counts over an [`ExecutionTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions (including falsely predicated and
    /// neutral ones).
    pub total: u64,
    /// Instructions whose guard evaluated false.
    pub falsely_predicated: u64,
    /// Neutral instructions (no-op / prefetch / hint).
    pub neutral: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Call instructions executed.
    pub calls: u64,
    /// Values emitted to the output stream.
    pub outputs: u64,
}

impl TraceStats {
    /// Fraction of conditional branches that were taken (0 when none).
    pub fn taken_fraction(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.cond_branches as f64
        }
    }
}

/// The complete result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    entries: Vec<DynInstr>,
    output: Vec<u64>,
    stats: TraceStats,
    halted: bool,
}

impl ExecutionTrace {
    /// An empty trace, for tests of downstream consumers.
    pub fn new_for_tests() -> Self {
        Self::new(Vec::new(), Vec::new(), false)
    }

    pub(crate) fn new(entries: Vec<DynInstr>, output: Vec<u64>, halted: bool) -> Self {
        let mut stats = TraceStats::default();
        for e in &entries {
            stats.total += 1;
            if !e.executed {
                stats.falsely_predicated += 1;
            }
            if e.instr.is_neutral() {
                stats.neutral += 1;
            }
            if e.mem_read.is_some() {
                stats.loads += 1;
            }
            if e.mem_written.is_some() {
                stats.stores += 1;
            }
            if e.instr.op.is_conditional_branch() {
                stats.cond_branches += 1;
                if e.taken == Some(true) {
                    stats.taken_branches += 1;
                }
            }
            if e.instr.op == Opcode::Call && e.executed {
                stats.calls += 1;
            }
            if e.is_output() {
                stats.outputs += 1;
            }
        }
        ExecutionTrace {
            entries,
            output,
            stats,
            halted,
        }
    }

    /// The dynamic instructions, in commit order.
    pub fn entries(&self) -> &[DynInstr] {
        &self.entries
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The program's output stream.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Whether the program reached `halt` within its budget.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Fraction of dynamic instructions in a given class, for workload
    /// calibration.
    pub fn class_fraction(&self, class: OpcodeClass) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let n = self
            .entries
            .iter()
            .filter(|e| e.instr.op.class() == class)
            .count();
        n as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::Instruction;

    fn dyn_nop(index: u64) -> DynInstr {
        DynInstr {
            index,
            pc: Addr::new(0x1000 + index * 8),
            instr: Instruction::nop(),
            executed: true,
            reg_written: None,
            pred_written: None,
            mem_read: None,
            mem_written: None,
            taken: None,
            next_pc: Addr::new(0x1008 + index * 8),
            call_depth: 0,
            emitted: None,
        }
    }

    #[test]
    fn stats_count_classes() {
        let mut e1 = dyn_nop(0);
        e1.instr = Instruction::br(Pred::new(1), 8);
        e1.taken = Some(true);
        let mut e2 = dyn_nop(1);
        e2.instr = Instruction::ld(Reg::new(1), Reg::new(2), 0);
        e2.mem_read = Some(Addr::new(0x2000));
        e2.reg_written = Some(Reg::new(1));
        let e3 = dyn_nop(2);
        let trace = ExecutionTrace::new(vec![e1, e2, e3], vec![], true);
        let s = trace.stats();
        assert_eq!(s.total, 3);
        assert_eq!(s.cond_branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.neutral, 1);
        assert!((s.taken_fraction() - 1.0).abs() < 1e-12);
        assert!(trace.halted());
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn regs_read_respects_guard() {
        let mut e = dyn_nop(0);
        e.instr = Instruction::add(Reg::new(3), Reg::new(1), Reg::new(2));
        e.executed = false;
        assert_eq!(e.regs_read().count(), 0, "guard-false reads nothing");
        e.executed = true;
        assert_eq!(e.regs_read().count(), 2);
    }

    #[test]
    fn empty_trace_fractions() {
        let t = ExecutionTrace::new(vec![], vec![], false);
        assert_eq!(t.class_fraction(OpcodeClass::Alu), 0.0);
        assert!(t.is_empty());
        assert_eq!(t.stats().taken_fraction(), 0.0);
    }
}
