//! Adaptive stratified sampling for fault-injection campaigns.
//!
//! A uniform campaign over the (cycle × slot × bit) injection space wastes
//! most of its budget on strata whose outcome is already known to tight
//! confidence: idle cycle windows, payload bits, drained queue regions.
//! This crate partitions the finite injection space into strata keyed by
//! (queue region, bit-field class, occupancy-bucketed cycle window),
//! allocates trials across strata by Neyman allocation (per-stratum
//! outcome variance), refines in rounds, and stops each stratum early
//! once its binomial confidence interval is narrower than the requested
//! half-width. The post-stratified estimator recombines per-stratum
//! proportions with exact partition weights, so it equals the uniform
//! estimator in expectation while reaching a given aggregate half-width
//! in a fraction of the trials.
//!
//! The crate is simulator-agnostic: it plans [`Trial`]s (coordinates in
//! the injection space) and consumes boolean event observations. The
//! `ses-faults` campaign engine executes the trials on its checkpointed
//! parallel path; the property suite drives the same scheduler with
//! synthetic outcome functions to pin the estimator algebra exactly.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod adaptive;
mod stratify;

pub use adaptive::{
    AdaptiveCheckpoint, AdaptiveConfig, AdaptiveScheduler, RoundRecord, StratifiedEstimate,
    StratumCheckpoint, StratumEstimate, StratumState, Trial,
};
pub use stratify::{
    lifetime_cells, BitClass, FaultCoord, LifetimeCell, OccupancyProfile, PatternClass, Phase,
    Strata, Stratum, StratumKey, OCC_BUCKETS,
};

// The span geometry the cells derive from is ses-avf's canonical
// interval representation; re-exported so campaign code can name it
// without depending on ses-avf directly.
pub use ses_avf::{lifetime_spans, occupancy_intervals, LifetimeSpan};

/// SplitMix64: the canonical 64-bit seed mixer. One application per
/// (stratum × round) derives independent, thread-count-invariant sample
/// streams from a single campaign seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs for the standard SplitMix64 finalizer.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_ne!(splitmix64(2), splitmix64(3));
    }
}
