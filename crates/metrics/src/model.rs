//! The SDC/DUE rate model of §2, plus MITF.

use serde::{Deserialize, Serialize};
use ses_types::{Avf, Fit, Ipc, Mitf, Mttf};

/// One derived reliability operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Effective error rate of the structure (raw × AVF).
    pub fit: Fit,
    /// Mean time to failure.
    pub mttf: Mttf,
    /// Mean instructions to failure (the paper's metric).
    pub mitf: Mitf,
    /// The paper's Table-1 figure of merit, IPC / AVF.
    pub ipc_over_avf: f64,
}

/// A [`RatePoint`] interval propagated from an AVF confidence interval.
///
/// Each side is the rate point evaluated at one edge of the AVF interval.
/// A side whose AVF bound is zero has no finite rate (an error-free
/// structure has unbounded MTTF/MITF) and is `None` — honest reporting
/// instead of a fake huge number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateInterval {
    /// AVF at the lower interval edge (clamped to `[0, 1]`).
    pub avf_lo: f64,
    /// AVF point estimate (clamped to `[0, 1]`).
    pub avf: f64,
    /// AVF at the upper interval edge (clamped to `[0, 1]`).
    pub avf_hi: f64,
    /// Rates at the point-estimate AVF (`None` when it is zero).
    pub point: Option<RatePoint>,
    /// Rates at the upper AVF edge — the pessimistic side: highest FIT,
    /// lowest MTTF/MITF (`None` when the edge is zero).
    pub pessimistic: Option<RatePoint>,
    /// Rates at the lower AVF edge — the optimistic side (`None` when
    /// the edge is zero).
    pub optimistic: Option<RatePoint>,
}

/// Physical parameters of the modelled structure and machine.
///
/// Defaults describe the paper's machine: a 64-entry × 64-bit instruction
/// queue in a 2.5 GHz part, with a representative raw soft-error rate of
/// 0.001 FIT per bit (raw rates are proprietary; AVF and MITF *ratios* are
/// independent of this constant, exactly as in the paper's equations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Raw soft-error rate per bit.
    pub raw_fit_per_bit: f64,
    /// Bits in the protected/studied structure.
    pub structure_bits: u64,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel {
            raw_fit_per_bit: 0.001,
            structure_bits: 64 * 64,
            frequency_hz: 2.5e9,
        }
    }
}

impl ReliabilityModel {
    /// The structure's raw (undecorated) error rate.
    pub fn raw_rate(&self) -> Fit {
        Fit::per_bit(self.raw_fit_per_bit).scaled(self.structure_bits)
    }

    /// Derives the rate point for a given AVF and IPC. Use the SDC AVF for
    /// SDC rates and the DUE AVF for DUE rates (§2.1–2.2).
    ///
    /// # Panics
    ///
    /// Panics if `avf` is zero (an error-free structure has no finite
    /// MTTF); fully protected structures should simply not be queried.
    pub fn rate(&self, ipc: Ipc, avf: Avf) -> RatePoint {
        let fit = self.raw_rate().derated(avf);
        let mttf = crate::environment::fit_to_mttf(fit)
            .expect("a zero FIT rate has no finite MTTF; do not query fully protected structures");
        RatePoint {
            fit,
            mttf,
            mitf: Mitf::new(ipc, self.frequency_hz, mttf),
            ipc_over_avf: Mitf::figure_of_merit(ipc, avf),
        }
    }

    /// Derives the rate interval for an AVF estimate with a 95 %
    /// half-width, evaluating [`ReliabilityModel::rate`] at the point
    /// estimate and at both interval edges. This is how a statistical
    /// campaign's confidence interval propagates into FIT/MTTF/MITF.
    pub fn rate_interval(&self, ipc: Ipc, avf: f64, halfwidth: f64) -> RateInterval {
        let lo = (avf - halfwidth).clamp(0.0, 1.0);
        let mid = avf.clamp(0.0, 1.0);
        let hi = (avf + halfwidth).clamp(0.0, 1.0);
        let at = |a: f64| (a > 0.0).then(|| self.rate(ipc, Avf::from_fraction(a)));
        RateInterval {
            avf_lo: lo,
            avf: mid,
            avf_hi: hi,
            point: at(mid),
            pessimistic: at(hi),
            optimistic: at(lo),
        }
    }

    /// Convenience alias of [`ReliabilityModel::rate`] for SDC quantities.
    pub fn sdc(&self, ipc: Ipc, sdc_avf: Avf) -> RatePoint {
        self.rate(ipc, sdc_avf)
    }

    /// Convenience alias of [`ReliabilityModel::rate`] for DUE quantities.
    pub fn due(&self, ipc: Ipc, due_avf: Avf) -> RatePoint {
        self.rate(ipc, due_avf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitf_ratio_is_raw_rate_independent() {
        // MITF improvements must not depend on the raw FIT constant
        // (paper §3.2: MITF ∝ IPC / AVF at fixed frequency and raw rate).
        let base = ReliabilityModel::default();
        let hot = ReliabilityModel {
            raw_fit_per_bit: 0.5,
            ..base
        };
        let a = |m: &ReliabilityModel| {
            let p0 = m.rate(Ipc::new(1.21), Avf::from_percent(29.0));
            let p1 = m.rate(Ipc::new(1.19), Avf::from_percent(22.0));
            p1.mitf.instructions() / p0.mitf.instructions()
        };
        assert!((a(&base) - a(&hot)).abs() < 1e-9);
        // The improvement is ~+30 % at the rounded AVFs printed in
        // Table 1; the paper's "+37 %" reflects its unrounded inputs
        // (its own table prints 5.6 vs 4.1, a ratio its 22 %-rounded
        // AVF cannot quite reproduce).
        assert!((a(&base) - 1.30).abs() < 0.02);
    }

    #[test]
    fn figure_of_merit_matches_table1() {
        let m = ReliabilityModel::default();
        let p = m.rate(Ipc::new(1.21), Avf::from_percent(29.0));
        assert!((p.ipc_over_avf - 4.17).abs() < 0.02);
        let p2 = m.rate(Ipc::new(1.21), Avf::from_percent(62.0));
        assert!((p2.ipc_over_avf - 1.95).abs() < 0.02);
    }

    #[test]
    fn fit_scales_with_structure_and_avf() {
        let m = ReliabilityModel::default();
        assert!((m.raw_rate().value() - 4.096).abs() < 1e-9);
        let p = m.rate(Ipc::new(1.0), Avf::from_percent(50.0));
        assert!((p.fit.value() - 2.048).abs() < 1e-9);
        // MTTF x FIT identity.
        assert!((p.mttf.to_fit().value() - p.fit.value()).abs() < 1e-6);
    }

    #[test]
    fn rate_interval_brackets_the_point() {
        let m = ReliabilityModel::default();
        let iv = m.rate_interval(Ipc::new(1.2), 0.29, 0.03);
        let p = iv.point.unwrap();
        let pess = iv.pessimistic.unwrap();
        let opt = iv.optimistic.unwrap();
        assert!(pess.fit.value() > p.fit.value() && p.fit.value() > opt.fit.value());
        assert!(pess.mitf.instructions() < p.mitf.instructions());
        assert!(opt.mttf.hours() > p.mttf.hours());
    }

    #[test]
    fn rate_interval_zero_edges_are_honest() {
        let m = ReliabilityModel::default();
        let z = m.rate_interval(Ipc::new(1.2), 0.01, 0.05);
        assert_eq!(z.avf_lo, 0.0, "lower edge clamps to zero");
        assert!(z.optimistic.is_none(), "no finite MTTF at zero AVF");
        assert!(z.point.is_some() && z.pessimistic.is_some());
        let all_zero = m.rate_interval(Ipc::new(1.2), 0.0, 0.0);
        assert!(all_zero.point.is_none() && all_zero.pessimistic.is_none());
    }

    #[test]
    #[should_panic(expected = "zero FIT")]
    fn zero_avf_panics() {
        let m = ReliabilityModel::default();
        let _ = m.rate(Ipc::new(1.0), Avf::ZERO);
    }
}
