//! Reproducibility: every layer of the stack is a pure function of its
//! seeds and configuration.

use ses_arch::Emulator;
use ses_core::{run_workload, synthesize, PipelineConfig, WorkloadSpec};

#[test]
fn synthesis_emulation_and_timing_are_deterministic() {
    let spec = WorkloadSpec::quick("det", 777);
    let a = run_workload(&spec, &PipelineConfig::default()).expect("a");
    let b = run_workload(&spec, &PipelineConfig::default()).expect("b");
    assert_eq!(a.program, b.program);
    assert_eq!(a.trace.output(), b.trace.output());
    assert_eq!(a.result.cycles, b.result.cycles);
    assert_eq!(a.result.committed, b.result.committed);
    assert_eq!(a.result.squashes, b.result.squashes);
    assert_eq!(a.result.residencies.len(), b.result.residencies.len());
    assert_eq!(a.avf.sdc_avf(), b.avf.sdc_avf());
    assert_eq!(a.avf.due_avf(), b.avf.due_avf());
}

#[test]
fn different_seeds_differ() {
    let mut s1 = WorkloadSpec::quick("det", 1);
    let mut s2 = WorkloadSpec::quick("det", 2);
    s1.seed = 1;
    s2.seed = 2;
    let p1 = synthesize(&s1);
    let p2 = synthesize(&s2);
    assert_ne!(p1, p2);
    let t1 = Emulator::new(&p1).run(100_000).unwrap();
    let t2 = Emulator::new(&p2).run(100_000).unwrap();
    assert_ne!(t1.output(), t2.output());
}

#[test]
fn golden_rerun_is_bit_identical() {
    let spec = WorkloadSpec::quick("det", 99);
    let p = synthesize(&spec);
    let t1 = Emulator::new(&p).run(100_000).unwrap();
    let t2 = Emulator::new(&p).run(100_000).unwrap();
    assert_eq!(t1, t2);
}

#[test]
fn campaign_report_is_seed_deterministic() {
    use ses_core::{Campaign, CampaignConfig, DetectionModel, Outcome};
    let spec = WorkloadSpec::quick("det-campaign", 5);
    let mk = || {
        Campaign::prepare(
            &spec,
            CampaignConfig {
                injections: 40,
                seed: 3,
                detection: DetectionModel::Parity { tracking: None },
                threads: 2,
                ..CampaignConfig::default()
            },
        )
        .unwrap()
        .run()
    };
    let (a, b) = (mk(), mk());
    for o in Outcome::ALL {
        assert_eq!(a.count(o), b.count(o), "outcome {o} must be stable");
    }
}
