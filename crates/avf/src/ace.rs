//! Per-bit ACE classification of instruction-queue residency intervals.
//!
//! Every (bit × cycle) of queue state falls into exactly one bucket:
//!
//! * **idle** — the slot held no valid entry;
//! * **unread** — the entry was valid but never read after this point
//!   (never issued, or already past its last read: the Ex-ACE window);
//!   strikes here are invisible to both program and parity;
//! * **exposed** — the entry was valid and would still be read; strikes
//!   here are *detected* by parity (DUE) and split into:
//!   * **ACE** bits — a strike changes the program's outcome (true DUE,
//!     or SDC without protection);
//!   * **un-ACE** bits — a strike is harmless but still detected (false
//!     DUE), subdivided by cause: wrong path, false predication, squash
//!     discard, neutral instruction (non-opcode bits), and the four
//!     dynamically-dead categories (non-destination-specifier bits).
//!
//! ACE rules follow the paper exactly: neutral instructions keep only
//! their opcode bits ACE (§4.1); dynamically dead instructions keep only
//! their destination-specifier bits ACE (§4.1); wrong-path, falsely
//! predicated and squash-discarded instructions are wholly un-ACE; live
//! committed instructions are wholly ACE (the paper's conservative
//! granularity).

use ses_isa::{field_mask, BitKind};
use ses_pipeline::Residency;

use crate::dead::DeadMap;
use crate::span::ResidencySpans;

/// Why exposed bit-cycles are un-ACE (the false-DUE causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FalseDueCause {
    /// Wrong-path instruction.
    WrongPath,
    /// Falsely predicated instruction.
    FalselyPredicated,
    /// Entry discarded by the squash action and refetched cleanly.
    Squashed,
    /// Non-opcode bits of a neutral instruction.
    Neutral,
    /// Non-destination bits of an FDD-via-register instruction.
    DeadFddReg,
    /// Non-destination bits of a TDD-via-register instruction.
    DeadTddReg,
    /// Non-destination bits of an FDD-via-memory instruction.
    DeadFddMem,
    /// Non-destination bits of a TDD-via-memory instruction.
    DeadTddMem,
}

impl FalseDueCause {
    /// All causes.
    pub const ALL: [FalseDueCause; 8] = [
        FalseDueCause::WrongPath,
        FalseDueCause::FalselyPredicated,
        FalseDueCause::Squashed,
        FalseDueCause::Neutral,
        FalseDueCause::DeadFddReg,
        FalseDueCause::DeadTddReg,
        FalseDueCause::DeadFddMem,
        FalseDueCause::DeadTddMem,
    ];
}

/// Bit-cycle contributions of one residency interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyBits {
    /// ACE bit-cycles (exposed window).
    pub ace: u64,
    /// ACE bit-cycles attributed to each instruction-word field kind
    /// (indexed by [`BitKind::ALL`] order): which *bits* of the queue
    /// entry carry the vulnerability.
    pub ace_by_kind: [u64; 7],
    /// Un-ACE exposed bit-cycles, by cause (indexed by
    /// [`FalseDueCause::ALL`] order).
    pub unace: [u64; 8],
    /// Valid-but-unread bit-cycles (Ex-ACE window plus never-read
    /// residencies).
    pub unread: u64,
}

impl ResidencyBits {
    /// Total un-ACE exposed bit-cycles.
    pub fn unace_total(&self) -> u64 {
        self.unace.iter().sum()
    }

    /// Total valid bit-cycles accounted.
    pub fn valid_total(&self) -> u64 {
        self.ace + self.unace_total() + self.unread
    }

    /// Contribution for one cause.
    pub fn cause(&self, cause: FalseDueCause) -> u64 {
        let idx = FalseDueCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in table");
        self.unace[idx]
    }

    pub(crate) fn add_cause(&mut self, cause: FalseDueCause, amount: u64) {
        let idx = FalseDueCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in table");
        self.unace[idx] += amount;
    }
}

/// ACE bits of a dynamically dead instruction: the destination
/// general-register plus predicate specifiers. Folded at compile time
/// from the encoding's field masks — `classify` never rescans the bit
/// map.
pub(crate) const fn dest_spec_bits() -> u64 {
    (field_mask(BitKind::DestSpec) | field_mask(BitKind::PredDestSpec)).count_ones() as u64
}

/// ACE bits of a neutral instruction: the opcode field. Compile-time
/// constant, like [`dest_spec_bits`].
pub(crate) const fn opcode_bits() -> u64 {
    field_mask(BitKind::Opcode).count_ones() as u64
}

/// Index of a kind in [`BitKind::ALL`] (declaration order, pinned by a
/// unit test below).
pub(crate) const fn kind_index(kind: BitKind) -> usize {
    kind as usize
}

/// Bit width of one instruction-word field kind.
pub(crate) const fn kind_width(kind: BitKind) -> u64 {
    field_mask(kind).count_ones() as u64
}

/// Classifies one residency into bit-cycle buckets.
///
/// A thin wrapper over the span engine: the residency's (at most two)
/// piecewise-constant segments are derived and summed as
/// `popcount(mask) × length` — see [`crate::span`] for the interval
/// algebra. No per-cycle or per-bit loop is involved.
pub fn classify(res: &Residency, dead: &DeadMap) -> ResidencyBits {
    ResidencySpans::derive(res, dead).bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::{Emulator, ExecutionTrace};
    use ses_isa::{Instruction, Program};
    use ses_pipeline::{Occupant, ResidencyEnd};
    use ses_types::{Cycle, Reg, SeqNo};

    fn residency(
        occupant: Occupant,
        instr: Instruction,
        read: Option<u64>,
        dealloc: u64,
        end: ResidencyEnd,
        fp: bool,
    ) -> Residency {
        Residency {
            slot: 0,
            seq: SeqNo::new(0),
            occupant,
            instr,
            alloc: Cycle::new(0),
            last_read: read.map(Cycle::new),
            dealloc: Cycle::new(dealloc),
            end,
            falsely_predicated: fp,
        }
    }

    fn trace_with(code: Vec<Instruction>) -> (ExecutionTrace, DeadMap) {
        let p = Program::new(code);
        let t = Emulator::new(&p).run(1000).unwrap();
        let d = DeadMap::analyze(&t);
        (t, d)
    }

    #[test]
    fn const_mask_helpers_pin_field_widths() {
        // The helpers are const: these hold at compile time.
        const _: () = assert!(opcode_bits() == 6);
        const _: () = assert!(dest_spec_bits() == 9);
        assert_eq!(opcode_bits(), kind_width(BitKind::Opcode));
        assert_eq!(
            dest_spec_bits(),
            kind_width(BitKind::DestSpec) + kind_width(BitKind::PredDestSpec)
        );
        for (i, k) in BitKind::ALL.iter().enumerate() {
            assert_eq!(kind_index(*k), i, "ALL order is declaration order");
            assert_eq!(kind_width(*k), ses_isa::bits_of_kind(*k).count() as u64);
        }
    }

    #[test]
    fn live_instruction_fully_ace_while_exposed() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5),
            Instruction::out(Reg::new(1)),
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(10),
            15,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 64);
        assert_eq!(b.unace_total(), 0);
        assert_eq!(b.unread, 5 * 64, "post-read Ex-ACE window");
        assert_eq!(b.valid_total(), 15 * 64);
    }

    #[test]
    fn wrong_path_fully_unace() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::WrongPath,
            Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)),
            Some(4),
            8,
            ResidencyEnd::FlushedWrongPath,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 0);
        assert_eq!(b.cause(FalseDueCause::WrongPath), 4 * 64);
        assert_eq!(b.unread, 4 * 64);
    }

    #[test]
    fn never_read_contributes_nothing_exposed() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::WrongPath,
            Instruction::nop(),
            None,
            20,
            ResidencyEnd::FlushedWrongPath,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace + b.unace_total(), 0);
        assert_eq!(b.unread, 20 * 64);
    }

    #[test]
    fn neutral_keeps_opcode_bits_ace() {
        let (_, dead) = trace_with(vec![Instruction::nop(), Instruction::halt()]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::nop(),
            Some(10),
            10,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 6, "6 opcode bits stay ACE");
        assert_eq!(b.cause(FalseDueCause::Neutral), 10 * 58);
    }

    #[test]
    fn dead_keeps_dest_spec_bits_ace() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5), // FDD: never read
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(10),
            12,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 9, "6 dest + 3 pdest specifier bits stay ACE");
        assert_eq!(b.cause(FalseDueCause::DeadFddReg), 10 * 55);
    }

    #[test]
    fn falsely_predicated_fully_unace() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)),
            Some(3),
            5,
            ResidencyEnd::Retired,
            true,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.cause(FalseDueCause::FalselyPredicated), 3 * 64);
        assert_eq!(b.ace, 0);
    }

    #[test]
    fn squashed_takes_precedence() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5),
            Instruction::out(Reg::new(1)),
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(4),
            6,
            ResidencyEnd::Squashed,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.cause(FalseDueCause::Squashed), 4 * 64);
        assert_eq!(b.ace, 0, "squashed content never commits");
    }
}
