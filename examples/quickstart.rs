//! Quickstart: measure the soft-error vulnerability of an instruction
//! queue, then reduce it with the paper's two techniques.
//!
//! Run with `cargo run --release --example quickstart`.

use ses_core::{
    run_workload, Level, PipelineConfig, ReliabilityModel, Table, Technique, WorkloadSpec,
};

fn main() -> Result<(), ses_core::SesError> {
    // 1. A workload: 20k dynamic instructions of synthetic integer code.
    let spec = WorkloadSpec::quick("quickstart", 42);

    // 2. The baseline machine: 6-wide in-order, 64-entry instruction
    //    queue, Itanium2-like cache hierarchy.
    let baseline = run_workload(&spec, &PipelineConfig::default())?;
    let b = baseline.summary();
    println!("baseline:  IPC {:.2}", b.ipc.value());
    println!("  SDC AVF (unprotected queue)      : {}", b.sdc_avf);
    println!("  DUE AVF (parity-protected queue) : {}", b.due_avf);
    println!(
        "  ... of which false DUE           : {}",
        b.false_due_avf
    );

    // 3. Technique 1 — exposure reduction: squash the queue on L1 load
    //    misses so instructions don't sit exposed to strikes during stalls.
    let squashed = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1))?;
    let s = squashed.summary();
    println!("\nwith squashing on L1 misses:");
    println!(
        "  IPC {:.2} ({:+.1}%)   SDC AVF {} ({:+.1}%)",
        s.ipc.value(),
        s.ipc.relative_to(b.ipc) * 100.0,
        s.sdc_avf,
        s.sdc_avf.relative_to(b.sdc_avf) * 100.0,
    );

    // 4. Technique 2 — false-DUE tracking: carry the pi bit to the
    //    store-commit point instead of signalling at detection.
    let residual = squashed
        .avf
        .residual_false_due(Some(Technique::PiStoreCommit), &squashed.dead);
    let due_tracked = squashed.avf.true_due_avf().saturating_add(residual);
    println!(
        "  DUE AVF with pi tracking: {} ({:+.1}% vs baseline parity)",
        due_tracked,
        due_tracked.relative_to(b.due_avf) * 100.0
    );

    // 5. The MITF trade-off (paper section 3.2): worthwhile if AVF falls
    //    more than IPC.
    let model = ReliabilityModel::default();
    let mut t = Table::new(vec!["design point", "IPC", "SDC AVF", "SDC MTTF", "SDC MITF"]);
    for (name, ipc, avf) in [
        ("baseline", b.ipc, b.sdc_avf),
        ("squash L1", s.ipc, s.sdc_avf),
    ] {
        let p = model.sdc(ipc, avf);
        t.row(vec![
            name.into(),
            format!("{:.2}", ipc.value()),
            avf.to_string(),
            format!("{:.1} yr", p.mttf.years()),
            format!("{:.2e}", p.mitf.instructions()),
        ]);
    }
    println!("\n{t}");
    Ok(())
}
