//! Reliability quantities: FIT, MTTF/MTBF, AVF, IPC, and the paper's MITF.
//!
//! The relationships implemented here are exactly the ones in Sections 2 and
//! 3.2 of the paper:
//!
//! * `SDC rate = Σ_d raw_rate_d × SDC_AVF_d` (and likewise for DUE),
//! * `MTTF = 1 / (raw error rate × AVF)`,
//! * `MITF = IPC × frequency × MTTF = (frequency / raw rate) × (IPC / AVF)`,
//! * one FIT = one failure per 10⁹ device-hours, and an MTBF of one year is
//!   114,155 FIT.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Hours in one billion hours — the FIT time base.
pub const FIT_HOURS: f64 = 1e9;

/// Hours per (non-leap) year, the paper's 24 × 365.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.0;

/// A soft-error rate expressed in FIT (Failures In Time).
///
/// One FIT is one failure per billion device-hours. FIT values for
/// independent devices add; an AVF derates a raw FIT rate.
///
/// # Example
///
/// ```
/// use ses_types::{Avf, Fit};
/// let raw = Fit::per_bit(0.001).scaled(4096);
/// let effective = raw.derated(Avf::from_percent(29.0));
/// assert!((effective.value() - 4.096 * 0.29).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Fit(f64);

impl Fit {
    /// A zero error rate.
    pub const ZERO: Fit = Fit(0.0);

    /// Creates a FIT rate for a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `fit_per_bit` is negative or not finite.
    pub fn per_bit(fit_per_bit: f64) -> Self {
        assert!(
            fit_per_bit.is_finite() && fit_per_bit >= 0.0,
            "FIT rate must be finite and non-negative, got {fit_per_bit}"
        );
        Fit(fit_per_bit)
    }

    /// Creates a FIT rate from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `fit` is negative or not finite.
    pub fn new(fit: f64) -> Self {
        Self::per_bit(fit)
    }

    /// The raw FIT value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Scales a per-bit rate up to a structure of `bits` bits.
    pub fn scaled(self, bits: u64) -> Fit {
        Fit(self.0 * bits as f64)
    }

    /// Derates this raw rate by an architectural vulnerability factor.
    pub fn derated(self, avf: Avf) -> Fit {
        Fit(self.0 * avf.fraction())
    }
}

impl Add for Fit {
    type Output = Fit;
    fn add(self, rhs: Fit) -> Fit {
        Fit(self.0 + rhs.0)
    }
}

impl AddAssign for Fit {
    fn add_assign(&mut self, rhs: Fit) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Fit {
    fn sum<I: Iterator<Item = Fit>>(iter: I) -> Fit {
        iter.fold(Fit::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} FIT", self.0)
    }
}

/// Mean Time To Failure.
///
/// Stored in hours; convertible to and from [`Fit`]. The paper treats MTTF
/// and MTBF as interchangeable for processors (MTTR ≪ MTTF); we provide
/// [`Mtbf`] separately for completeness.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mttf(f64);

impl Mttf {
    /// Creates an MTTF from hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is not finite and positive.
    pub fn from_hours(hours: f64) -> Self {
        assert!(
            hours.is_finite() && hours > 0.0,
            "MTTF must be finite and positive, got {hours}"
        );
        Mttf(hours)
    }

    /// Creates an MTTF from years.
    pub fn from_years(years: f64) -> Self {
        Self::from_hours(years * HOURS_PER_YEAR)
    }

    /// Converts a failure rate in FIT to an MTTF.
    ///
    /// # Panics
    ///
    /// Panics if `fit` is zero (an error-free device has unbounded MTTF).
    pub fn from_fit(fit: Fit) -> Self {
        assert!(fit.value() > 0.0, "cannot form an MTTF from a zero FIT rate");
        Mttf(FIT_HOURS / fit.value())
    }

    /// MTTF in hours.
    pub const fn hours(self) -> f64 {
        self.0
    }

    /// MTTF in years.
    pub fn years(self) -> f64 {
        self.0 / HOURS_PER_YEAR
    }

    /// The equivalent failure rate in FIT.
    pub fn to_fit(self) -> Fit {
        Fit(FIT_HOURS / self.0)
    }
}

impl fmt::Display for Mttf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} years MTTF", self.years())
    }
}

/// Mean Time Between Failures: `MTBF = MTTF + MTTR`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mtbf(f64);

impl Mtbf {
    /// Combines an MTTF with a mean-time-to-repair (both in hours).
    pub fn new(mttf: Mttf, mttr_hours: f64) -> Self {
        assert!(
            mttr_hours.is_finite() && mttr_hours >= 0.0,
            "MTTR must be finite and non-negative, got {mttr_hours}"
        );
        Mtbf(mttf.hours() + mttr_hours)
    }

    /// MTBF in hours.
    pub const fn hours(self) -> f64 {
        self.0
    }

    /// MTBF in years.
    pub fn years(self) -> f64 {
        self.0 / HOURS_PER_YEAR
    }
}

impl fmt::Display for Mtbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} years MTBF", self.years())
    }
}

/// An Architectural Vulnerability Factor: the probability, in `[0, 1]`, that
/// a fault in a device produces a (given class of) error.
///
/// The AVF of a storage cell is the fraction of cycles it holds an ACE bit;
/// the AVF of a structure is the average over its cells (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Avf(f64);

impl Avf {
    /// An AVF of zero (fully protected or never-read state).
    pub const ZERO: Avf = Avf(0.0);
    /// An AVF of one (e.g. the program counter, per the paper).
    pub const ONE: Avf = Avf(1.0);

    /// Creates an AVF from a fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    pub fn from_fraction(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "AVF must lie in [0, 1], got {fraction}"
        );
        Avf(fraction)
    }

    /// Creates an AVF from a percentage in `[0, 100]`.
    pub fn from_percent(percent: f64) -> Self {
        Self::from_fraction(percent / 100.0)
    }

    /// Computes an AVF as a ratio of ACE bit-cycles to total bit-cycles.
    ///
    /// Returns [`Avf::ZERO`] when `total` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `ace > total`.
    pub fn from_bit_cycles(ace: u64, total: u64) -> Self {
        assert!(ace <= total, "ACE bit-cycles ({ace}) exceed total ({total})");
        if total == 0 {
            Avf::ZERO
        } else {
            Avf(ace as f64 / total as f64)
        }
    }

    /// The AVF as a fraction in `[0, 1]`.
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// The AVF as a percentage.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Sum of two AVF components (e.g. true DUE AVF + false DUE AVF),
    /// clamped to 1.
    pub fn saturating_add(self, rhs: Avf) -> Avf {
        Avf((self.0 + rhs.0).min(1.0))
    }

    /// The relative change from `baseline` to `self`, as a signed fraction.
    ///
    /// Negative values are reductions: going from 29% to 22% AVF returns
    /// roughly `-0.24`.
    pub fn relative_to(self, baseline: Avf) -> f64 {
        if baseline.0 == 0.0 {
            0.0
        } else {
            (self.0 - baseline.0) / baseline.0
        }
    }
}

impl fmt::Display for Avf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

/// Committed instructions per cycle.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Ipc(f64);

impl Ipc {
    /// Creates an IPC value.
    ///
    /// # Panics
    ///
    /// Panics if `ipc` is negative or not finite.
    pub fn new(ipc: f64) -> Self {
        assert!(
            ipc.is_finite() && ipc >= 0.0,
            "IPC must be finite and non-negative, got {ipc}"
        );
        Ipc(ipc)
    }

    /// Computes IPC from instruction and cycle counts.
    ///
    /// Returns zero IPC when `cycles` is zero.
    pub fn from_counts(instructions: u64, cycles: u64) -> Self {
        if cycles == 0 {
            Ipc(0.0)
        } else {
            Ipc(instructions as f64 / cycles as f64)
        }
    }

    /// The IPC value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The relative change from `baseline` to `self`, as a signed fraction.
    pub fn relative_to(self, baseline: Ipc) -> f64 {
        if baseline.0 == 0.0 {
            0.0
        } else {
            (self.0 - baseline.0) / baseline.0
        }
    }
}

impl fmt::Display for Ipc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} IPC", self.0)
    }
}

/// Mean Instructions To Failure — the paper's new metric (§3.2).
///
/// `MITF = IPC × frequency × MTTF`. At fixed frequency and raw error rate,
/// MITF is proportional to `IPC / AVF`, so a technique that reduces AVF by
/// more than it reduces IPC increases MITF: the machine completes more work
/// between errors.
///
/// # Example
///
/// The paper's example: a 2 GHz processor with IPC 2 and a DUE MTTF of 10
/// years has a DUE MITF of about 1.3 × 10¹⁸ instructions.
///
/// ```
/// use ses_types::{Ipc, Mitf, Mttf};
/// let mitf = Mitf::new(Ipc::new(2.0), 2.0e9, Mttf::from_years(10.0));
/// assert!((mitf.instructions() / 1.26e18 - 1.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mitf(f64);

impl Mitf {
    /// Computes MITF from IPC, clock frequency in Hz, and MTTF.
    pub fn new(ipc: Ipc, frequency_hz: f64, mttf: Mttf) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be finite and positive, got {frequency_hz}"
        );
        let seconds = mttf.hours() * 3600.0;
        Mitf(ipc.value() * frequency_hz * seconds)
    }

    /// The `IPC / AVF` figure of merit the paper tabulates (Table 1 columns
    /// "IPC / SDC AVF" and "IPC / DUE AVF").
    ///
    /// Returns `f64::INFINITY` for a zero AVF.
    pub fn figure_of_merit(ipc: Ipc, avf: Avf) -> f64 {
        if avf.fraction() == 0.0 {
            f64::INFINITY
        } else {
            ipc.value() / avf.fraction()
        }
    }

    /// Mean instructions completed between failures.
    pub const fn instructions(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Mitf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} instructions MITF", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_addition_and_scaling() {
        let a = Fit::per_bit(0.001);
        let s = a.scaled(1000);
        assert!((s.value() - 1.0).abs() < 1e-12);
        let sum: Fit = [a, a, a].into_iter().sum();
        assert!((sum.value() - 0.003).abs() < 1e-12);
        let mut acc = Fit::ZERO;
        acc += s;
        assert_eq!(acc, s);
        assert_eq!(s.to_string(), "1.0000 FIT");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn fit_rejects_negative() {
        let _ = Fit::new(-1.0);
    }

    #[test]
    fn mttf_fit_roundtrip() {
        // The paper: an MTBF of one year equals 114,155 FIT.
        let mttf = Mttf::from_years(1.0);
        assert!((mttf.to_fit().value() - 114_155.0).abs() < 1.0);
        let back = Mttf::from_fit(mttf.to_fit());
        assert!((back.years() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero FIT")]
    fn mttf_from_zero_fit_panics() {
        let _ = Mttf::from_fit(Fit::ZERO);
    }

    #[test]
    fn mtbf_is_mttf_plus_mttr() {
        let mttf = Mttf::from_hours(1000.0);
        let mtbf = Mtbf::new(mttf, 24.0);
        assert!((mtbf.hours() - 1024.0).abs() < 1e-9);
        assert!(mtbf.years() > 0.0);
    }

    #[test]
    fn avf_from_bit_cycles() {
        // Paper §2.1: 1M ACE cycles out of 10M total → 10% AVF.
        let avf = Avf::from_bit_cycles(1_000_000, 10_000_000);
        assert!((avf.percent() - 10.0).abs() < 1e-9);
        assert_eq!(Avf::from_bit_cycles(0, 0), Avf::ZERO);
        assert_eq!(Avf::ZERO.to_string(), "0.00%");
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn avf_rejects_ace_gt_total() {
        let _ = Avf::from_bit_cycles(2, 1);
    }

    #[test]
    fn avf_relative_change() {
        let base = Avf::from_percent(29.0);
        let improved = Avf::from_percent(22.0);
        let delta = improved.relative_to(base);
        assert!(delta < 0.0);
        assert!((delta + 7.0 / 29.0).abs() < 1e-9);
        assert_eq!(improved.relative_to(Avf::ZERO), 0.0);
    }

    #[test]
    fn avf_saturating_add() {
        let a = Avf::from_percent(62.0);
        let b = Avf::from_percent(62.0);
        assert_eq!(a.saturating_add(b), Avf::ONE);
        let c = Avf::from_percent(29.0).saturating_add(Avf::from_percent(33.0));
        assert!((c.percent() - 62.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_counts_and_relative() {
        let ipc = Ipc::from_counts(121, 100);
        assert!((ipc.value() - 1.21).abs() < 1e-12);
        assert_eq!(Ipc::from_counts(5, 0).value(), 0.0);
        let slower = Ipc::new(1.19);
        let rel = slower.relative_to(ipc);
        assert!(rel < 0.0 && rel > -0.02);
        assert_eq!(Ipc::new(1.0).relative_to(Ipc::new(0.0)), 0.0);
    }

    #[test]
    fn mitf_matches_paper_example() {
        // 2 GHz, IPC 2, DUE MTTF 10 years → ~1.3e18 instructions.
        let mitf = Mitf::new(Ipc::new(2.0), 2.0e9, Mttf::from_years(10.0));
        let expected = 2.0 * 2.0e9 * 10.0 * HOURS_PER_YEAR * 3600.0;
        assert!((mitf.instructions() - expected).abs() / expected < 1e-12);
        assert!(mitf.instructions() > 1.2e18 && mitf.instructions() < 1.4e18);
    }

    #[test]
    fn mitf_figure_of_merit_matches_table1() {
        // Table 1 row "No squashing": IPC 1.21, SDC AVF 29% → 4.1.
        let fom = Mitf::figure_of_merit(Ipc::new(1.21), Avf::from_percent(29.0));
        assert!((fom - 4.17).abs() < 0.02);
        // DUE column: IPC 1.21, DUE AVF 62% → 2.0.
        let fom2 = Mitf::figure_of_merit(Ipc::new(1.21), Avf::from_percent(62.0));
        assert!((fom2 - 1.95).abs() < 0.02);
        assert!(Mitf::figure_of_merit(Ipc::new(1.0), Avf::ZERO).is_infinite());
    }

    #[test]
    fn mitf_proportional_to_ipc_over_avf() {
        // Halving AVF at constant IPC doubles the figure of merit.
        let ipc = Ipc::new(1.2);
        let f1 = Mitf::figure_of_merit(ipc, Avf::from_percent(30.0));
        let f2 = Mitf::figure_of_merit(ipc, Avf::from_percent(15.0));
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }
}
