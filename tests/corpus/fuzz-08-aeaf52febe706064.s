; fuzz corpus entry 8: campaign seed 1, program seed 0xaeaf52febe706064
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 17    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 143    ; +0x0020
(p0) movi r11 = 315    ; +0x0028
(p0) movi r12 = 1441    ; +0x0030
(p0) movi r13 = 1587    ; +0x0038
(p0) movi r14 = 1283    ; +0x0040
(p0) movi r15 = 1179    ; +0x0048
(p0) movi r16 = 45    ; +0x0050
(p0) movi r17 = 1181    ; +0x0058
(p0) movi r18 = 843    ; +0x0060
(p0) movi r19 = 1480    ; +0x0068
(p0) st8 [r3 + 0] = r14    ; +0x0070
(p0) st8 [r3 + 8] = r11    ; +0x0078
(p0) st8 [r3 + 16] = r13    ; +0x0080
(p0) st8 [r3 + 24] = r11    ; +0x0088
(p0) st8 [r3 + 1088] = r17    ; +0x0090
(p0) addi r6 = r11, -1386    ; +0x0098
(p0) cmp.lt p2 = r6, r0    ; +0x00a0
(p2) br +16    ; +0x00a8
(p0) add r16 = r14, r4    ; +0x00b0
(p0) and r15 = r14, r10    ; +0x00b8
(p0) addi r17 = r15, -83    ; +0x00c0
(p0) st8 [r3 + 32] = r13    ; +0x00c8
(p0) nop    ; +0x00d0
(p0) st8 [r3 + 24] = r17    ; +0x00d8
(p0) ld8 r12 = [r3 + 48]    ; +0x00e0
(p0) and r6 = r10, r4    ; +0x00e8
(p0) cmp.eq p3 = r6, r0    ; +0x00f0
(p3) and r12 = r14, r13    ; +0x00f8
(p0) st8 [r3 + 16] = r15    ; +0x0100
(p0) ld8 r16 = [r3 + 48]    ; +0x0108
(p0) st8 [r3 + 1048] = r11    ; +0x0110
(p0) and r6 = r14, r4    ; +0x0118
(p0) cmp.eq p4 = r6, r0    ; +0x0120
(p4) add r11 = r15, r11    ; +0x0128
(p4) mul r17 = r18, r19    ; +0x0130
(p0) ld8 r13 = [r3 + 0]    ; +0x0138
(p0) st8 [r3 + 1080] = r12    ; +0x0140
(p0) lfetch [r3 + 0]    ; +0x0148
(p0) nop    ; +0x0150
(p0) and r6 = r15, r4    ; +0x0158
(p0) cmp.eq p5 = r6, r0    ; +0x0160
(p5) xor r13 = r16, r13    ; +0x0168
(p5) xor r13 = r19, r11    ; +0x0170
(p0) and r6 = r13, r4    ; +0x0178
(p0) cmp.eq p6 = r6, r0    ; +0x0180
(p6) and r19 = r19, r15    ; +0x0188
(p6) and r11 = r16, r16    ; +0x0190
(p0) add r2 = r2, r10    ; +0x0198
(p0) addi r1 = r1, -1    ; +0x01a0
(p0) cmp.lt p1 = r0, r1    ; +0x01a8
(p1) br -288    ; +0x01b0
(p0) out r2    ; +0x01b8
(p0) halt    ; +0x01c0
