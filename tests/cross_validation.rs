//! Cross-validation of the two AVF methodologies: the analytic ACE
//! analysis (Mukherjee et al., used by the paper) against statistical
//! fault injection (Kim & Somani / Wang et al., the alternative the paper
//! cites). The two must agree — this is the strongest correctness check
//! the reproduction has.

use ses_core::{
    run_workload, Campaign, CampaignConfig, DetectionModel, Outcome, PipelineConfig,
    WorkloadSpec,
};

const INJECTIONS: u32 = 400;

fn spec() -> WorkloadSpec {
    let mut s = WorkloadSpec::quick("xval", 0xABCD);
    s.target_dynamic = 30_000;
    s
}

#[test]
fn statistical_due_matches_analytic_due() {
    let spec = spec();
    let analytic = run_workload(&spec, &PipelineConfig::default())
        .expect("analytic run")
        .avf
        .due_avf()
        .fraction();

    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            injections: INJECTIONS,
            seed: 11,
            detection: DetectionModel::Parity { tracking: None },
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let report = campaign.run();
    let statistical = report.due_avf_estimate();
    let ci = report.ci95(statistical);

    // The DUE AVF is exactly "probability a uniformly random bit-cycle is
    // read later": the detector fires iff the struck entry is read. The
    // statistical estimate must therefore bracket the analytic value.
    assert!(
        (statistical - analytic).abs() < ci + 0.05,
        "statistical {statistical:.3} vs analytic {analytic:.3} (ci {ci:.3})"
    );
}

#[test]
fn statistical_sdc_bounded_by_analytic_sdc() {
    let spec = spec();
    let analytic = run_workload(&spec, &PipelineConfig::default())
        .expect("analytic run")
        .avf
        .sdc_avf()
        .fraction();

    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            injections: INJECTIONS,
            seed: 13,
            detection: DetectionModel::None,
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let report = campaign.run();
    let statistical = report.sdc_avf_estimate();
    let ci = report.ci95(statistical);

    // ACE analysis is deliberately conservative (every bit of a live
    // instruction is assumed to matter), so the measured SDC rate must be
    // at or below the analytic SDC AVF -- and clearly above zero.
    assert!(
        statistical <= analytic + ci,
        "measured SDC {statistical:.3} cannot exceed conservative ACE bound {analytic:.3}"
    );
    assert!(
        statistical > 0.02,
        "strikes on live state must corrupt output sometimes, got {statistical:.3}"
    );
}

#[test]
fn empirical_bit_kind_rates_track_analytic_ordering() {
    // Strikes on opcode / destination-specifier bits must fail more often
    // than strikes on immediates — both analytically and empirically.
    let spec = spec();
    let run = run_workload(&spec, &PipelineConfig::default()).expect("run");
    let analytic = run.avf.avf_by_bit_kind();
    let get_analytic = |k: ses_isa::BitKind| {
        analytic
            .iter()
            .find(|x| x.kind == k)
            .unwrap()
            .avf
            .fraction()
    };
    assert!(get_analytic(ses_isa::BitKind::Opcode) > get_analytic(ses_isa::BitKind::Immediate));

    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            injections: 600,
            seed: 29,
            detection: DetectionModel::Parity { tracking: None },
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let detailed = campaign.run_detailed();
    let rates = detailed.failure_rate_by_bit_kind();
    let get = |k: ses_isa::BitKind| rates.iter().find(|(kind, ..)| *kind == k).unwrap().1;
    // Under parity everything read is a DUE, so rates are nearly uniform;
    // the check is that sampling worked and rates are plausible.
    for (kind, rate, n) in &rates {
        assert!((0.0..=1.0).contains(rate), "{kind:?}");
        if *kind == ses_isa::BitKind::Immediate {
            assert!(*n > 100, "32 of 64 bits: immediates dominate samples");
        }
    }
    assert!(get(ses_isa::BitKind::Immediate) > 0.0);
    // Slot-quarter rates exist and are bounded.
    let q = detailed.failure_rate_by_slot_quarter(64);
    assert!(q.iter().all(|r| (0.0..=1.0).contains(r)));
    // The detailed summary agrees with itself.
    assert_eq!(detailed.summary().total(), 600);
}

#[test]
fn parity_converts_all_sdc_to_due() {
    let spec = spec();
    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            injections: 200,
            seed: 17,
            detection: DetectionModel::Parity { tracking: None },
            ..CampaignConfig::default()
        },
    )
    .expect("campaign");
    let report = campaign.run();
    assert_eq!(report.count(Outcome::Sdc), 0);
    assert_eq!(report.count(Outcome::Hang), 0);
    assert!(report.count(Outcome::FalseDue) > 0);
    // Everything is either benign or a DUE of some flavour.
    assert_eq!(
        report.count(Outcome::Benign)
            + report.count(Outcome::FalseDue)
            + report.count(Outcome::TrueDue),
        report.total()
    );
}
