; fuzz corpus entry 11: campaign seed 1, program seed 0x943ff9fc99de8f03
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 17    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 167    ; +0x0020
(p0) movi r11 = 9    ; +0x0028
(p0) movi r12 = 634    ; +0x0030
(p0) movi r13 = 1876    ; +0x0038
(p0) movi r14 = 1371    ; +0x0040
(p0) movi r15 = 88    ; +0x0048
(p0) movi r16 = 1406    ; +0x0050
(p0) movi r17 = 559    ; +0x0058
(p0) movi r18 = 309    ; +0x0060
(p0) movi r19 = 1546    ; +0x0068
(p0) st8 [r3 + 0] = r13    ; +0x0070
(p0) st8 [r3 + 8] = r18    ; +0x0078
(p0) st8 [r3 + 16] = r11    ; +0x0080
(p0) st8 [r3 + 24] = r17    ; +0x0088
(p0) and r6 = r16, r4    ; +0x0090
(p0) cmp.eq p2 = r6, r0    ; +0x0098
(p2) sub r18 = r17, r12    ; +0x00a0
(p2) add r14 = r15, r16    ; +0x00a8
(p2) xor r14 = r14, r17    ; +0x00b0
(p0) addi r18 = r19, -84    ; +0x00b8
(p0) and r6 = r17, r4    ; +0x00c0
(p0) cmp.eq p3 = r6, r0    ; +0x00c8
(p3) sub r15 = r11, r18    ; +0x00d0
(p3) and r11 = r14, r11    ; +0x00d8
(p0) and r6 = r14, r4    ; +0x00e0
(p0) cmp.eq p4 = r6, r0    ; +0x00e8
(p4) mul r16 = r14, r10    ; +0x00f0
(p4) add r12 = r16, r17    ; +0x00f8
(p0) hint +0    ; +0x0100
(p0) add r19 = r17, r18    ; +0x0108
(p0) st8 [r3 + 8] = r11    ; +0x0110
(p0) ld8 r19 = [r3 + 16]    ; +0x0118
(p0) ld8 r17 = [r3 + 8]    ; +0x0120
(p0) movi r20 = 29    ; +0x0128
(p0) add r21 = r20, r4    ; +0x0130
(p0) mul r22 = r21, r21    ; +0x0138
(p0) addi r15 = r11, -68    ; +0x0140
(p0) and r18 = r14, r17    ; +0x0148
(p0) st8 [r3 + 1088] = r15    ; +0x0150
(p0) and r6 = r1, r4    ; +0x0158
(p0) cmp.eq p5 = r6, r0    ; +0x0160
(p5) call +56, link=r31    ; +0x0168
(p0) add r2 = r2, r15    ; +0x0170
(p0) addi r1 = r1, -1    ; +0x0178
(p0) cmp.lt p1 = r0, r1    ; +0x0180
(p1) br -248    ; +0x0188
(p0) out r2    ; +0x0190
(p0) halt    ; +0x0198
(p0) movi r40 = 3    ; +0x01a0
(p0) movi r41 = 4    ; +0x01a8
(p0) movi r42 = 5    ; +0x01b0
(p0) movi r43 = 6    ; +0x01b8
(p0) add r2 = r2, r4    ; +0x01c0
(p0) ret r31    ; +0x01c8
