//! Sparse architectural data memory.

use std::collections::HashMap;

use ses_isa::Program;
use ses_types::Addr;

/// Word-granular sparse data memory.
///
/// All data accesses in SES-64 are 8-byte loads and stores; addresses are
/// rounded down to 8-byte alignment, mirroring a machine that simply ignores
/// the low address bits. Uninitialised locations read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataMemory {
    words: HashMap<u64, u64>,
}

impl DataMemory {
    /// Word size in bytes.
    pub const WORD: u64 = 8;

    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// A memory pre-loaded with a program's data segments.
    pub fn from_program(program: &Program) -> Self {
        let mut mem = Self::new();
        for seg in program.data() {
            for (i, &w) in seg.words.iter().enumerate() {
                mem.store(seg.base.offset(i as u64 * Self::WORD), w);
            }
        }
        mem
    }

    fn key(addr: Addr) -> u64 {
        addr.block_base(Self::WORD).as_u64()
    }

    /// Loads the 64-bit word containing `addr`.
    pub fn load(&self, addr: Addr) -> u64 {
        self.words.get(&Self::key(addr)).copied().unwrap_or(0)
    }

    /// Stores a 64-bit word at the word containing `addr`.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.words.insert(Self::key(addr), value);
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::{DataSegment, Instruction};

    #[test]
    fn load_store_roundtrip_and_alignment() {
        let mut m = DataMemory::new();
        m.store(Addr::new(0x100), 7);
        assert_eq!(m.load(Addr::new(0x100)), 7);
        assert_eq!(m.load(Addr::new(0x103)), 7, "low bits ignored");
        m.store(Addr::new(0x107), 8);
        assert_eq!(m.load(Addr::new(0x100)), 8, "same word");
        assert_eq!(m.load(Addr::new(0x108)), 0, "uninitialised reads zero");
        assert_eq!(m.footprint_words(), 1);
    }

    #[test]
    fn from_program_loads_segments() {
        let p = Program::new(vec![Instruction::halt()]).with_data(DataSegment {
            base: Addr::new(0x2000),
            words: vec![10, 20, 30],
        });
        let m = DataMemory::from_program(&p);
        assert_eq!(m.load(Addr::new(0x2000)), 10);
        assert_eq!(m.load(Addr::new(0x2008)), 20);
        assert_eq!(m.load(Addr::new(0x2010)), 30);
        assert_eq!(m.footprint_words(), 3);
    }
}
