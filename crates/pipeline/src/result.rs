//! Timing-simulation results.

use ses_mem::LevelStats;
use ses_types::Ipc;

use crate::detect::FaultOutcome;
use crate::residency::{Residency, ResidencyEnd};

/// Everything a timing run produces.
///
/// `PartialEq` compares every field (including the full residency log):
/// two results are equal only if the runs were bit-identical. The
/// checkpoint/resume machinery uses this as its determinism guard.
#[derive(Debug, PartialEq)]
pub struct PipelineResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed (retired correct-path) instructions.
    pub committed: u64,
    /// The instruction-queue residency log, for AVF analysis.
    pub residencies: Vec<Residency>,
    /// Queue capacity used for this run.
    pub iq_capacity: usize,
    /// Sum over cycles of occupied queue slots (occupancy integral).
    pub occupied_cycle_sum: u64,
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Mispredictions among them.
    pub mispredictions: u64,
    /// Squash actions triggered.
    pub squashes: u64,
    /// Instructions removed by squash actions.
    pub squashed_instrs: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Cycles fetch was throttled.
    pub throttled_cycles: u64,
    /// L0 cache statistics.
    pub l0: LevelStats,
    /// L1 cache statistics.
    pub l1: LevelStats,
    /// L2 cache statistics.
    pub l2: LevelStats,
    /// Resolved fault outcome, when a fault was injected.
    pub fault: Option<FaultOutcome>,
    /// Whether the run ended by exhausting its cycle budget rather than
    /// completing (only possible with pathological configurations).
    pub budget_exhausted: bool,
}

impl PipelineResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> Ipc {
        Ipc::from_counts(self.committed, self.cycles)
    }

    /// Mean occupied fraction of the instruction queue.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.occupied_cycle_sum as f64 / (self.cycles as f64 * self.iq_capacity as f64)
    }

    /// Misprediction ratio over all conditional branches.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// The residencies that retired (committed architectural state).
    pub fn retired(&self) -> impl Iterator<Item = &Residency> {
        self.residencies
            .iter()
            .filter(|r| r.end == ResidencyEnd::Retired)
    }

    /// The committed instruction stream as the timing model saw it: every
    /// retired residency, ordered by functional-trace index. This is the
    /// pipeline-side half of the differential oracle's lockstep diff
    /// against the emulator's [`ses_arch::ExecutionTrace`].
    pub fn committed_stream(&self) -> Vec<&Residency> {
        let mut stream: Vec<&Residency> = self.retired().collect();
        stream.sort_by_key(|r| r.trace_idx());
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> PipelineResult {
        PipelineResult {
            cycles: 100,
            committed: 121,
            residencies: Vec::new(),
            iq_capacity: 64,
            occupied_cycle_sum: 3200,
            predictions: 10,
            mispredictions: 2,
            squashes: 0,
            squashed_instrs: 0,
            wrong_path_fetched: 0,
            throttled_cycles: 0,
            l0: LevelStats::default(),
            l1: LevelStats::default(),
            l2: LevelStats::default(),
            fault: None,
            budget_exhausted: false,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = result();
        assert!((r.ipc().value() - 1.21).abs() < 1e-12);
        assert!((r.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((r.mispredict_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_run_is_safe() {
        let mut r = result();
        r.cycles = 0;
        r.predictions = 0;
        assert_eq!(r.ipc().value(), 0.0);
        assert_eq!(r.mean_occupancy(), 0.0);
        assert_eq!(r.mispredict_ratio(), 0.0);
    }
}
