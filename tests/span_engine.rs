//! Property suite: the interval-algebra span engine must be extensionally
//! identical to the exhaustive per-bit-cycle reference engine.
//!
//! The span engine computes every aggregate as `width × span_length` sums
//! over at most two segments per residency; the exhaustive engine visits
//! every valid (bit × cycle) individually. The two share only the
//! reporting layer, so agreement here pins the whole interval algebra —
//! decomposition, state fractions, per-kind AVFs, technique coverage,
//! residual false DUE, and the exposure timeline — against the paper's
//! literal definitions, on ≥64 fuzz-generated workloads per run plus
//! squash-config variants that exercise span truncation.

use ses_arch::Emulator;
use ses_avf::exhaustive::analyze_exhaustive;
use ses_avf::{AvfAnalysis, DeadMap, SpanSet, Technique};
use ses_core::{Level, Pipeline, PipelineConfig};
use ses_workloads::fuzz_program;

const FUZZED_WORKLOADS: usize = 64;

/// Runs one fuzzed program under `cfg` and asserts every observable of
/// the span engine equals the exhaustive engine's.
fn assert_engines_agree(seed: u64, cfg: &PipelineConfig) {
    let program = fuzz_program(seed);
    let trace = Emulator::new(&program)
        .run(4_000_000)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: emulation failed: {e}"));
    assert!(trace.halted(), "seed {seed:#x}: fuzz programs always halt");
    let dead = DeadMap::analyze(&trace);
    let result = Pipeline::new(cfg.clone()).run(&program, &trace);

    let spans = SpanSet::derive(&result, &dead);
    spans
        .check()
        .unwrap_or_else(|e| panic!("seed {seed:#x}: span geometry: {e}"));

    let span = AvfAnalysis::from_spans(&spans);
    let exhaustive = analyze_exhaustive(&result, &dead);

    // Exact integer decomposition (covers ace, per-kind ace, per-cause
    // un-ace, unread, idle, total).
    assert_eq!(
        span.decomposition(),
        exhaustive.decomposition(),
        "seed {seed:#x}: decompositions diverge"
    );
    assert!(span.decomposition().is_conserved(), "seed {seed:#x}");

    // Derived floats must match exactly: same integers, same arithmetic.
    assert_eq!(span.state_fractions(), exhaustive.state_fractions());
    assert_eq!(span.sdc_avf(), exhaustive.sdc_avf());
    assert_eq!(span.due_avf(), exhaustive.due_avf());
    assert_eq!(span.false_due_avf(), exhaustive.false_due_avf());

    // Per-kind AVFs.
    let sk = span.avf_by_bit_kind();
    let ek = exhaustive.avf_by_bit_kind();
    assert_eq!(sk.len(), ek.len());
    for (s, e) in sk.iter().zip(&ek) {
        assert_eq!(s.kind, e.kind);
        assert_eq!(s.width, e.width);
        assert_eq!(s.avf, e.avf, "seed {seed:#x}: kind {:?}", s.kind);
    }

    // Technique coverage and cumulative residuals.
    for technique in [
        Technique::PiAtCommit,
        Technique::AntiPi,
        Technique::Pet(32),
        Technique::Pet(512),
        Technique::PiRegister,
        Technique::PiStoreCommit,
        Technique::PiMemory,
    ] {
        assert_eq!(
            span.covered_by(technique, &dead),
            exhaustive.covered_by(technique, &dead),
            "seed {seed:#x}: coverage diverges for {technique:?}"
        );
    }
    for dead_technique in [None, Some(Technique::Pet(512)), Some(Technique::PiMemory)] {
        assert_eq!(
            span.residual_false_due(dead_technique, &dead),
            exhaustive.residual_false_due(dead_technique, &dead),
            "seed {seed:#x}: residual diverges for {dead_technique:?}"
        );
        assert_eq!(
            span.due_avf_with_tracking(dead_technique, &dead),
            exhaustive.due_avf_with_tracking(dead_technique, &dead)
        );
    }

    // The exposure timeline (alloc-bucket attribution).
    assert_eq!(
        span.timeline(),
        exhaustive.timeline(),
        "seed {seed:#x}: timelines diverge"
    );
}

#[test]
fn span_engine_equals_exhaustive_on_fuzzed_workloads() {
    let cfg = PipelineConfig::default();
    for i in 0..FUZZED_WORKLOADS as u64 {
        assert_engines_agree(0xA5F0_0000 + i, &cfg);
    }
}

#[test]
fn span_engine_equals_exhaustive_under_squash_configs() {
    // Squash truncates spans (the residency's dealloc becomes the squash
    // cycle and the exposed segment reclassifies): the geometry the
    // default config never produces.
    for (j, cfg) in [
        PipelineConfig::default().with_squash(Level::L1),
        PipelineConfig::default().with_squash(Level::L0),
    ]
    .iter()
    .enumerate()
    {
        for i in 0..8u64 {
            assert_engines_agree(0x5B5B_0000 + (j as u64) * 1000 + i, cfg);
        }
    }
}
