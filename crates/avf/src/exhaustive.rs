//! The exhaustive per-bit-cycle reference engine — test/bench oracle only.
//!
//! This module keeps the pre-interval-algebra accounting alive in its most
//! literal form: every valid (bit × cycle) of every residency is visited
//! and classified individually, exactly as the paper's definitions are
//! stated. It exists for two reasons:
//!
//! * the **property suite** asserts the span engine ([`crate::span`])
//!   produces identical [`BitCycleDecomposition`], state fractions,
//!   per-kind AVFs, and technique coverage on fuzzed workloads — the two
//!   engines share only the reporting code
//!   ([`AvfAnalysis::from_parts`]), not the accounting;
//! * the **`avf_speed` bench** measures the span engine's throughput
//!   against this path (the ≥10x gate in `BENCH_avf.json`).
//!
//! Production code must never call this: it is O(bits × cycles) per
//! residency where the span engine is O(1).
//!
//! [`BitCycleDecomposition`]: crate::BitCycleDecomposition
//! [`AvfAnalysis::from_parts`]: crate::AvfAnalysis

use ses_isa::{bit_kind, BIT_COUNT};
use ses_pipeline::{Occupant, PipelineResult, Residency, ResidencyEnd};

use crate::ace::{kind_index, FalseDueCause, ResidencyBits};
use crate::avf::{AvfAnalysis, TimelinePoint};
use crate::dead::{DeadKind, DeadMap};

/// How one (bit × cycle) is accounted.
enum BitFate {
    Ace,
    Unace(FalseDueCause),
}

/// The fate of bit `b` of a residency's word during one *exposed* cycle,
/// by the paper's §4.1 rules, evaluated per bit with no masks.
fn exposed_bit_fate(res: &Residency, dead: &DeadMap, b: usize) -> BitFate {
    match res.occupant {
        Occupant::WrongPath => BitFate::Unace(FalseDueCause::WrongPath),
        Occupant::CorrectPath { trace_idx } => {
            if res.end == ResidencyEnd::Squashed {
                BitFate::Unace(FalseDueCause::Squashed)
            } else if res.falsely_predicated {
                BitFate::Unace(FalseDueCause::FalselyPredicated)
            } else if res.instr.is_neutral() {
                if bit_kind(b).ace_when_neutral() {
                    BitFate::Ace
                } else {
                    BitFate::Unace(FalseDueCause::Neutral)
                }
            } else {
                match dead.get(trace_idx).kind {
                    DeadKind::Live => BitFate::Ace,
                    dead_kind => {
                        if bit_kind(b).ace_when_dead() {
                            BitFate::Ace
                        } else {
                            BitFate::Unace(match dead_kind {
                                DeadKind::FddReg => FalseDueCause::DeadFddReg,
                                DeadKind::TddReg => FalseDueCause::DeadTddReg,
                                DeadKind::FddMem => FalseDueCause::DeadFddMem,
                                DeadKind::TddMem => FalseDueCause::DeadTddMem,
                                DeadKind::Live => unreachable!(),
                            })
                        }
                    }
                }
            }
        }
    }
}

/// Classifies one residency by enumerating every (bit × cycle) of its
/// valid window individually — the legacy accounting the span engine
/// replaced.
pub fn classify_exhaustive(res: &Residency, dead: &DeadMap) -> ResidencyBits {
    let alloc = res.alloc.as_u64();
    let dealloc = res.dealloc.as_u64();
    let boundary = res
        .last_read
        .map(|c| c.as_u64())
        .unwrap_or(alloc)
        .clamp(alloc, dealloc);
    let mut out = ResidencyBits::default();
    for cycle in alloc..dealloc {
        let exposed = cycle < boundary;
        for b in 0..BIT_COUNT {
            if !exposed {
                out.unread += 1;
                continue;
            }
            match exposed_bit_fate(res, dead, b) {
                BitFate::Ace => {
                    out.ace += 1;
                    out.ace_by_kind[kind_index(bit_kind(b))] += 1;
                }
                BitFate::Unace(cause) => out.add_cause(cause, 1),
            }
        }
    }
    out
}

/// Full-run analysis via the exhaustive per-bit-cycle classifier, with
/// the same timeline bucketing as [`AvfAnalysis::from_spans`], so the
/// result is directly comparable to the span engine's.
///
/// [`AvfAnalysis::from_spans`]: crate::AvfAnalysis::from_spans
///
/// # Panics
///
/// Panics if the run produced zero cycles.
pub fn analyze_exhaustive(result: &PipelineResult, dead: &DeadMap) -> AvfAnalysis {
    assert!(result.cycles > 0, "cannot analyse an empty run");
    const TIMELINE_BUCKETS: u64 = 64;
    let bucket = (result.cycles / TIMELINE_BUCKETS).max(1);
    let mut timeline: Vec<TimelinePoint> = (0..result.cycles.div_ceil(bucket))
        .map(|i| TimelinePoint {
            start_cycle: i * bucket,
            ..Default::default()
        })
        .collect();
    let mut bits = ResidencyBits::default();
    for res in &result.residencies {
        let b = classify_exhaustive(res, dead);
        bits.ace += b.ace;
        bits.unread += b.unread;
        for i in 0..bits.unace.len() {
            bits.unace[i] += b.unace[i];
        }
        for i in 0..bits.ace_by_kind.len() {
            bits.ace_by_kind[i] += b.ace_by_kind[i];
        }
        let idx = ((res.alloc.as_u64() / bucket) as usize).min(timeline.len() - 1);
        timeline[idx].valid += b.valid_total();
        timeline[idx].ace += b.ace;
    }
    AvfAnalysis::from_parts(result.cycles, result.iq_capacity as u64, bits, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ace::classify;
    use ses_arch::Emulator;
    use ses_pipeline::{Pipeline, PipelineConfig};
    use ses_workloads::{synthesize, WorkloadSpec};

    #[test]
    fn exhaustive_matches_span_classifier_on_a_real_run() {
        let spec = WorkloadSpec::quick("exhaustive-test", 7);
        let program = synthesize(&spec);
        let trace = Emulator::new(&program).run(100_000).unwrap();
        let dead = DeadMap::analyze(&trace);
        let result = Pipeline::new(PipelineConfig::default()).run(&program, &trace);
        for res in &result.residencies {
            assert_eq!(
                classify(res, &dead),
                classify_exhaustive(res, &dead),
                "span and per-bit-cycle accounting diverge on residency {:?}",
                res.seq
            );
        }
        let span = AvfAnalysis::new(&result, &dead);
        let exhaustive = analyze_exhaustive(&result, &dead);
        assert_eq!(span.decomposition(), exhaustive.decomposition());
        assert_eq!(span.timeline(), exhaustive.timeline());
    }
}
