//! Round-based adaptive trial scheduling over a stratified injection
//! space.
//!
//! The scheduler is a deterministic state machine: given the strata, a
//! configuration, and the sequence of observed trial outcomes, the plan
//! of every round is a pure function — independent of thread count,
//! timing, and of whether the campaign was stopped and resumed in
//! between ([`AdaptiveCheckpoint`] captures the whole state).
//!
//! * **Round 0 (pilot)** — every stratum receives `min_per_stratum`
//!   trials; strata no larger than `exhaust_threshold` are instead
//!   enumerated exhaustively (their estimate is then exact and their
//!   interval collapses to zero).
//! * **Refinement rounds** — `round_budget` trials are split across the
//!   still-active strata by Neyman allocation: proportional to
//!   `weight × σ`, with σ from a Laplace-smoothed proportion so a
//!   lucky zero-event pilot cannot permanently starve a stratum, and
//!   capped per stratum at the trials it still needs to close.
//! * **Early stopping** — a stratum leaves the active set once its
//!   binomial 95 % half-width ([`ses_metrics::binomial_ci95`]) is at or
//!   below its *fair share* of the aggregate target,
//!   `target_halfwidth / (wₛ √K)` for `K` strata: low-weight strata
//!   barely move the aggregate interval and stop after the pilot, while
//!   heavy noisy strata keep sampling. The campaign stops as soon as
//!   the propagated aggregate half-width `sqrt(Σ (wₛ hₛ)²)` is at or
//!   below `target_halfwidth` (or no stratum is active, or at the
//!   `max_rounds` safety cap).
//!
//! Sample coordinates derive from `splitmix64(seed, stratum, round)`
//! streams, so the artifact a campaign produces is invariant under
//! worker-thread count and stop/resume.

use ses_metrics::binomial_ci95;

use crate::stratify::{FaultCoord, Strata};
use crate::splitmix64;

/// Configuration of one adaptive campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Aggregate 95 % CI half-width the campaign drives the
    /// post-stratified estimate down to. Each stratum individually stops
    /// once its own CI reaches its fair share, `target / (wₛ √K)`.
    pub target_halfwidth: f64,
    /// Pilot trials per stratum (also the floor below which a stratum
    /// never stops, so a single lucky trial cannot close a stratum).
    pub min_per_stratum: u32,
    /// Trials distributed per refinement round by Neyman allocation.
    pub round_budget: u32,
    /// Safety cap on refinement rounds.
    pub max_rounds: u32,
    /// Strata at most this large are enumerated exhaustively in the
    /// pilot round instead of sampled.
    pub exhaust_threshold: u64,
    /// Seed of every per-(stratum × round) sample stream.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            target_halfwidth: 0.02,
            min_per_stratum: 16,
            round_budget: 512,
            max_rounds: 64,
            exhaust_threshold: 0,
            seed: 0x5E5,
        }
    }
}

/// Accumulated observations for one stratum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StratumState {
    /// Trials evaluated.
    pub trials: u64,
    /// Trials that observed the event (failure / detected error).
    pub events: u64,
    /// Whether the stratum was enumerated exhaustively (estimate exact).
    pub exhausted: bool,
    /// Round after which the stratum left the active set.
    pub stopped_round: Option<u32>,
}

impl StratumState {
    /// Observed event proportion (0 when untried).
    pub fn proportion(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.events as f64 / self.trials as f64
        }
    }

    /// 95 % half-width of the proportion, from the Laplace-smoothed
    /// variance. Exactly zero for exhausted strata (the enumeration is
    /// the population, not a sample).
    ///
    /// Smoothing matters at the degenerate corners: a stratum whose
    /// every trial was (or was not) the event has a raw Wald interval of
    /// width zero, which would let 16 unanimous trials masquerade as
    /// certainty. With `p̃ = (k+1)/(n+2)` the width decays like
    /// `1.96/n` instead — the rule-of-three scaling — so unanimous
    /// strata still stop early, after a defensibly linear (not
    /// quadratic) number of trials.
    pub fn halfwidth(&self) -> f64 {
        if self.exhausted {
            0.0
        } else {
            binomial_ci95(self.smoothed(), self.trials)
        }
    }

    /// Laplace-smoothed proportion: keeps zero-event strata at a nonzero
    /// allocation priority and the half-width honest at p̂ ∈ {0, 1}.
    fn smoothed(&self) -> f64 {
        (self.events as f64 + 1.0) / (self.trials as f64 + 2.0)
    }
}

/// One planned trial: evaluate the coordinate, report whether the event
/// occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Index of the stratum the trial belongs to.
    pub stratum: usize,
    /// The coordinate to strike.
    pub coord: FaultCoord,
}

/// Per-round trajectory entry: how the aggregate estimate converged.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index (0 = pilot).
    pub round: u32,
    /// Trials evaluated this round.
    pub trials: u64,
    /// Cumulative trials after the round.
    pub cumulative_trials: u64,
    /// Post-stratified estimate after the round.
    pub estimate: f64,
    /// Aggregate 95 % half-width after the round.
    pub halfwidth: f64,
    /// Strata still active after the round.
    pub active_strata: usize,
}

/// Point estimate and interval of one stratum, as recombined by the
/// post-stratified estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumEstimate {
    /// Exact partition weight.
    pub weight: f64,
    /// Observed proportion.
    pub proportion: f64,
    /// 95 % half-width (zero for exhausted strata).
    pub halfwidth: f64,
}

/// The post-stratified estimate with its propagated interval.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedEstimate {
    /// `Σ wₛ p̂ₛ` over all strata.
    pub estimate: f64,
    /// `sqrt(Σ (wₛ hₛ)²)`: independent per-stratum intervals combined in
    /// quadrature.
    pub halfwidth: f64,
    /// The per-stratum components.
    pub strata: Vec<StratumEstimate>,
}

impl StratifiedEstimate {
    /// The pooled interval, unclamped: `estimate ± halfwidth`.
    pub fn interval(&self) -> (f64, f64) {
        (self.estimate - self.halfwidth, self.estimate + self.halfwidth)
    }

    /// The weighted union bound over per-stratum intervals:
    /// `[Σ wₛ (p̂ₛ − hₛ), Σ wₛ (p̂ₛ + hₛ)]`. The pooled interval is
    /// always contained in it (quadrature ≤ linear combination), the
    /// consistency the regression suite pins.
    pub fn union_bound(&self) -> (f64, f64) {
        let lo: f64 = self
            .strata
            .iter()
            .map(|s| s.weight * (s.proportion - s.halfwidth))
            .sum();
        let hi: f64 = self
            .strata
            .iter()
            .map(|s| s.weight * (s.proportion + s.halfwidth))
            .sum();
        (lo, hi)
    }
}

/// Serializable scheduler state for mid-campaign stop/resume. Restoring
/// a checkpoint into a scheduler over the same strata and configuration
/// continues the campaign exactly where it stopped, producing the same
/// remaining rounds an uninterrupted run would.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCheckpoint {
    /// Next round to plan.
    pub round: u32,
    /// Per-stratum observation state, in stratum order.
    pub strata: Vec<StratumCheckpoint>,
    /// Trajectory of completed rounds.
    pub trajectory: Vec<RoundRecord>,
}

/// One stratum's state inside an [`AdaptiveCheckpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratumCheckpoint {
    /// Trials evaluated.
    pub trials: u64,
    /// Events observed.
    pub events: u64,
    /// Whether the stratum was enumerated exhaustively.
    pub exhausted: bool,
    /// Round after which the stratum stopped.
    pub stopped_round: Option<u32>,
}

/// The adaptive round scheduler.
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    strata: Strata,
    cfg: AdaptiveConfig,
    states: Vec<StratumState>,
    round: u32,
    trajectory: Vec<RoundRecord>,
}

impl AdaptiveScheduler {
    /// Creates a scheduler over a partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty or the target half-width is not
    /// positive.
    pub fn new(strata: Strata, cfg: AdaptiveConfig) -> Self {
        assert!(!strata.is_empty(), "cannot schedule over an empty partition");
        assert!(
            cfg.target_halfwidth > 0.0,
            "target half-width must be positive"
        );
        let states = vec![StratumState::default(); strata.len()];
        AdaptiveScheduler {
            strata,
            cfg,
            states,
            round: 0,
            trajectory: Vec::new(),
        }
    }

    /// The partition being sampled.
    pub fn strata(&self) -> &Strata {
        &self.strata
    }

    /// Per-stratum observation states.
    pub fn states(&self) -> &[StratumState] {
        &self.states
    }

    /// Completed-round trajectory.
    pub fn trajectory(&self) -> &[RoundRecord] {
        &self.trajectory
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u32 {
        self.round
    }

    /// The per-stratum requested half-width: the fair share of the
    /// aggregate target given the stratum's weight. If every stratum met
    /// it exactly, the quadrature combination would be exactly the
    /// aggregate target.
    fn requested_halfwidth(&self, i: usize) -> f64 {
        let k = (self.strata.len() as f64).sqrt();
        self.cfg.target_halfwidth / (self.strata.weight(i) * k)
    }

    /// Trials the stratum still needs before its CI meets its requested
    /// half-width, at the current smoothed proportion (consistent with
    /// the smoothed half-width the stopping rule checks).
    fn needed_trials(&self, i: usize) -> u64 {
        let s = &self.states[i];
        let floor = u64::from(self.cfg.min_per_stratum).min(self.strata.strata()[i].size());
        let p = s.smoothed();
        let req = self.requested_halfwidth(i);
        let for_ci = (p * (1.0 - p) * (1.96 / req).powi(2)).ceil() as u64;
        for_ci.max(floor).saturating_sub(s.trials)
    }

    /// Whether a stratum still needs trials.
    fn is_active(&self, i: usize) -> bool {
        let s = &self.states[i];
        if s.exhausted {
            return false;
        }
        if s.trials < u64::from(self.cfg.min_per_stratum).min(self.strata.strata()[i].size()) {
            return true;
        }
        s.halfwidth() > self.requested_halfwidth(i)
    }

    /// Whether the campaign has reached its stopping condition: the
    /// aggregate interval met the target (only judged once the pilot
    /// round has given every stratum its floor), every stratum stopped
    /// individually, or the round cap was hit.
    pub fn done(&self) -> bool {
        if self.round >= self.cfg.max_rounds {
            return true;
        }
        if self.round == 0 {
            return false;
        }
        self.estimate().halfwidth <= self.cfg.target_halfwidth
            || (0..self.states.len()).all(|i| !self.is_active(i))
    }

    /// Plans the next round: the exact list of trials to evaluate, in
    /// deterministic order. Empty only when [`AdaptiveScheduler::done`].
    pub fn plan_round(&self) -> Vec<Trial> {
        if self.done() {
            return Vec::new();
        }
        let mut plan = Vec::new();
        if self.round == 0 {
            for (i, s) in self.strata.strata().iter().enumerate() {
                let size = s.size();
                if size <= self.cfg.exhaust_threshold {
                    for rank in 0..size {
                        plan.push(Trial {
                            stratum: i,
                            coord: s.coord(rank),
                        });
                    }
                } else {
                    self.push_sampled(&mut plan, i, u64::from(self.cfg.min_per_stratum));
                }
            }
            return plan;
        }
        // Neyman allocation of the round budget across active strata:
        // priority ∝ weight × smoothed σ, largest-remainder rounding,
        // every active stratum gets at least one trial, and no stratum
        // gets more than it still needs to close.
        let active: Vec<usize> = (0..self.states.len()).filter(|&i| self.is_active(i)).collect();
        let caps: Vec<u64> = active.iter().map(|&i| self.needed_trials(i).max(1)).collect();
        let priorities: Vec<f64> = active
            .iter()
            .map(|&i| {
                let p = self.states[i].smoothed();
                self.strata.weight(i) * (p * (1.0 - p)).sqrt()
            })
            .collect();
        let total: f64 = priorities.iter().sum();
        let budget = u64::from(self.cfg.round_budget).max(active.len() as u64);
        let mut alloc: Vec<u64> = Vec::with_capacity(active.len());
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(active.len());
        for (k, pr) in priorities.iter().enumerate() {
            let share = if total > 0.0 {
                budget as f64 * pr / total
            } else {
                budget as f64 / active.len() as f64
            };
            let base = ((share.floor() as u64).max(1)).min(caps[k]);
            alloc.push(base);
            fracs.push((share - share.floor(), k));
        }
        // Hand out any remaining budget by largest fractional share
        // (index order breaks ties deterministically), still capped.
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let used: u64 = alloc.iter().sum();
        let mut left = budget.saturating_sub(used);
        for &(_, k) in &fracs {
            if left == 0 {
                break;
            }
            let room = caps[k].saturating_sub(alloc[k]).min(left);
            alloc[k] += room;
            left -= room;
        }
        for (k, &i) in active.iter().enumerate() {
            self.push_sampled(&mut plan, i, alloc[k]);
        }
        plan
    }

    /// Appends `count` sampled trials for stratum `i`, drawn from the
    /// (seed, stratum, round) stream.
    fn push_sampled(&self, plan: &mut Vec<Trial>, i: usize, count: u64) {
        let s = &self.strata.strata()[i];
        let size = s.size();
        let stream = splitmix64(
            splitmix64(self.cfg.seed ^ (i as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5))
                ^ u64::from(self.round),
        );
        for t in 0..count {
            let rank = splitmix64(stream ^ t) % size;
            plan.push(Trial {
                stratum: i,
                coord: s.coord(rank),
            });
        }
    }

    /// Records the outcome of every trial of the round just planned and
    /// closes the round. `events[k]` answers trial `plan[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `plan` and `events` lengths differ.
    pub fn record_round(&mut self, plan: &[Trial], events: &[bool]) {
        assert_eq!(plan.len(), events.len(), "one observation per trial");
        for (t, &hit) in plan.iter().zip(events) {
            let st = &mut self.states[t.stratum];
            st.trials += 1;
            st.events += u64::from(hit);
        }
        if self.round == 0 {
            for (i, s) in self.strata.strata().iter().enumerate() {
                if s.size() <= self.cfg.exhaust_threshold {
                    self.states[i].exhausted = true;
                }
            }
        }
        let closing = self.round;
        for i in 0..self.states.len() {
            if self.states[i].stopped_round.is_none() && !self.is_active(i) {
                self.states[i].stopped_round = Some(closing);
            }
        }
        self.round += 1;
        let est = self.estimate();
        let active = (0..self.states.len()).filter(|&i| self.is_active(i)).count();
        let cumulative: u64 = self.states.iter().map(|s| s.trials).sum();
        self.trajectory.push(RoundRecord {
            round: closing,
            trials: plan.len() as u64,
            cumulative_trials: cumulative,
            estimate: est.estimate,
            halfwidth: est.halfwidth,
            active_strata: active,
        });
    }

    /// The current post-stratified estimate.
    pub fn estimate(&self) -> StratifiedEstimate {
        let strata: Vec<StratumEstimate> = self
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| StratumEstimate {
                weight: self.strata.weight(i),
                proportion: s.proportion(),
                halfwidth: s.halfwidth(),
            })
            .collect();
        let estimate = strata.iter().map(|s| s.weight * s.proportion).sum();
        let halfwidth = strata
            .iter()
            .map(|s| (s.weight * s.halfwidth).powi(2))
            .sum::<f64>()
            .sqrt();
        StratifiedEstimate {
            estimate,
            halfwidth,
            strata,
        }
    }

    /// Total trials evaluated.
    pub fn total_trials(&self) -> u64 {
        self.states.iter().map(|s| s.trials).sum()
    }

    /// Captures the full scheduler state for stop/resume.
    pub fn checkpoint(&self) -> AdaptiveCheckpoint {
        AdaptiveCheckpoint {
            round: self.round,
            strata: self
                .states
                .iter()
                .map(|s| StratumCheckpoint {
                    trials: s.trials,
                    events: s.events,
                    exhausted: s.exhausted,
                    stopped_round: s.stopped_round,
                })
                .collect(),
            trajectory: self.trajectory.clone(),
        }
    }

    /// Restores a scheduler from a checkpoint over the same strata and
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's stratum count does not match.
    pub fn restore(strata: Strata, cfg: AdaptiveConfig, ckpt: &AdaptiveCheckpoint) -> Self {
        assert_eq!(
            ckpt.strata.len(),
            strata.len(),
            "checkpoint belongs to a different partition"
        );
        let states = ckpt
            .strata
            .iter()
            .map(|c| StratumState {
                trials: c.trials,
                events: c.events,
                exhausted: c.exhausted,
                stopped_round: c.stopped_round,
            })
            .collect();
        AdaptiveScheduler {
            strata,
            cfg,
            states,
            round: ckpt.round,
            trajectory: ckpt.trajectory.clone(),
        }
    }

    /// Drives the scheduler to completion against an outcome function
    /// (used by tests and synthetic studies; campaigns instead plan and
    /// evaluate rounds on their parallel worker path).
    pub fn run_to_completion(&mut self, mut eval: impl FnMut(&FaultCoord) -> bool) {
        while !self.done() {
            let plan = self.plan_round();
            let events: Vec<bool> = plan.iter().map(|t| eval(&t.coord)).collect();
            self.record_round(&plan, &events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratify::OccupancyProfile;

    fn toy_strata(cycles: u64, iq: usize) -> Strata {
        let lo = cycles / 3;
        let hi = 2 * cycles / 3;
        let intervals: Vec<(u64, u64)> = (0..iq).map(|_| (lo, hi)).collect();
        let profile = OccupancyProfile::from_intervals(cycles, iq, intervals, 8);
        Strata::build(cycles, iq, &profile)
    }

    /// A deterministic synthetic outcome: failures concentrate in the
    /// high-occupancy window on control bits.
    fn synthetic(c: &FaultCoord) -> bool {
        let busy = (20..40).contains(&c.cycle);
        let control = c.bit < 16;
        busy && control && (c.cycle ^ c.slot as u64 ^ u64::from(c.bit)) % 3 != 0
    }

    #[test]
    fn exhaustive_mode_reproduces_the_uniform_exhaustive_mean() {
        let strata = toy_strata(60, 4);
        let cfg = AdaptiveConfig {
            exhaust_threshold: u64::MAX,
            ..AdaptiveConfig::default()
        };
        let mut sched = AdaptiveScheduler::new(strata.clone(), cfg);
        sched.run_to_completion(synthetic);
        assert!(sched.states().iter().all(|s| s.exhausted));
        // Uniform exhaustive mean over the whole space.
        let mut hits = 0u64;
        let mut total = 0u64;
        for cycle in 0..60 {
            for slot in 0..4 {
                for bit in 0..64 {
                    total += 1;
                    hits += u64::from(synthetic(&FaultCoord { cycle, slot, bit }));
                }
            }
        }
        let uniform = hits as f64 / total as f64;
        let est = sched.estimate();
        assert!(
            (est.estimate - uniform).abs() < 1e-9,
            "stratified exhaustive {} != uniform exhaustive {}",
            est.estimate,
            uniform
        );
        assert_eq!(est.halfwidth, 0.0, "exhaustive estimate is exact");
        assert_eq!(sched.total_trials(), total);
    }

    #[test]
    fn sampled_campaign_stops_early_on_quiet_strata() {
        let strata = toy_strata(120, 8);
        let cfg = AdaptiveConfig {
            target_halfwidth: 0.05,
            min_per_stratum: 8,
            round_budget: 128,
            ..AdaptiveConfig::default()
        };
        let mut sched = AdaptiveScheduler::new(strata, cfg);
        sched.run_to_completion(synthetic);
        assert!(sched.done());
        let est = sched.estimate();
        assert!(est.halfwidth <= 0.05, "aggregate CI must meet the target");
        // Quiet strata (payload bits in idle windows) must have stopped at
        // the pilot floor.
        let min_trials = sched
            .states()
            .iter()
            .filter(|s| !s.exhausted)
            .map(|s| s.trials)
            .min()
            .unwrap();
        assert_eq!(min_trials, 8, "quiet strata stop at the pilot floor");
    }

    #[test]
    fn planning_is_deterministic() {
        let cfg = AdaptiveConfig::default();
        let mk = || {
            let mut s = AdaptiveScheduler::new(toy_strata(80, 4), cfg.clone());
            let mut all = Vec::new();
            while !s.done() {
                let plan = s.plan_round();
                let events: Vec<bool> = plan.iter().map(|t| synthetic(&t.coord)).collect();
                all.extend(plan.iter().map(|t| (t.stratum, t.coord)));
                s.record_round(&plan, &events);
            }
            (all, s.estimate())
        };
        let (a_plan, a_est) = mk();
        let (b_plan, b_est) = mk();
        assert_eq!(a_plan, b_plan);
        assert_eq!(a_est, b_est);
    }

    #[test]
    fn checkpoint_resume_is_invisible() {
        let cfg = AdaptiveConfig {
            target_halfwidth: 0.04,
            ..AdaptiveConfig::default()
        };
        // Uninterrupted run.
        let mut full = AdaptiveScheduler::new(toy_strata(80, 4), cfg.clone());
        full.run_to_completion(synthetic);
        // Run one round, checkpoint, restore into a fresh scheduler.
        let mut first = AdaptiveScheduler::new(toy_strata(80, 4), cfg.clone());
        let plan = first.plan_round();
        let events: Vec<bool> = plan.iter().map(|t| synthetic(&t.coord)).collect();
        first.record_round(&plan, &events);
        let ckpt = first.checkpoint();
        let mut resumed = AdaptiveScheduler::restore(toy_strata(80, 4), cfg, &ckpt);
        resumed.run_to_completion(synthetic);
        assert_eq!(full.states(), resumed.states());
        assert_eq!(full.trajectory(), resumed.trajectory());
        assert_eq!(full.estimate(), resumed.estimate());
    }

    #[test]
    fn pooled_interval_is_inside_the_union_bound() {
        let mut sched = AdaptiveScheduler::new(
            toy_strata(120, 8),
            AdaptiveConfig {
                target_halfwidth: 0.05,
                ..AdaptiveConfig::default()
            },
        );
        sched.run_to_completion(synthetic);
        let est = sched.estimate();
        let (plo, phi) = est.interval();
        let (ulo, uhi) = est.union_bound();
        assert!(plo >= ulo - 1e-12, "pooled lower {plo} below union {ulo}");
        assert!(phi <= uhi + 1e-12, "pooled upper {phi} above union {uhi}");
    }

    #[test]
    fn trajectory_tracks_cumulative_trials() {
        let mut sched = AdaptiveScheduler::new(toy_strata(80, 4), AdaptiveConfig::default());
        sched.run_to_completion(synthetic);
        let mut cum = 0;
        for r in sched.trajectory() {
            cum += r.trials;
            assert_eq!(r.cumulative_trials, cum);
        }
        assert_eq!(cum, sched.total_trials());
    }
}
