//! The architectural instruction type and its constructors.

use std::fmt;

use serde::{Deserialize, Serialize};
use ses_types::{Pred, Reg};

use crate::opcode::Opcode;

/// A decoded SES-64 instruction.
///
/// Every instruction carries a qualifying predicate `qp` (IA-64 style); an
/// instruction whose guard evaluates false at run time is *falsely
/// predicated* — it occupies pipeline resources but commits nothing, making
/// it one of the paper's sources of false DUE events (§4.1).
///
/// Fields that an opcode does not use are kept at their default encoding of
/// zero; [`crate::encode`] produces a canonical word for every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Qualifying (guard) predicate.
    pub qp: Pred,
    /// Destination register (when [`Opcode::writes_reg`]).
    pub dest: Reg,
    /// First source register.
    pub src1: Reg,
    /// Second source register.
    pub src2: Reg,
    /// Destination predicate (when [`Opcode::writes_pred`]).
    pub pdest: Pred,
    /// Signed 32-bit immediate (displacement, constant, or branch offset).
    pub imm: i32,
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::nop()
    }
}

impl Instruction {
    /// A fully specified instruction; prefer the named constructors below.
    pub fn raw(op: Opcode, qp: Pred, dest: Reg, src1: Reg, src2: Reg, pdest: Pred, imm: i32) -> Self {
        Instruction {
            op,
            qp,
            dest,
            src1,
            src2,
            pdest,
            imm,
        }
    }

    fn basic(op: Opcode) -> Self {
        Instruction {
            op,
            qp: Pred::TRUE,
            dest: Reg::ZERO,
            src1: Reg::ZERO,
            src2: Reg::ZERO,
            pdest: Pred::TRUE,
            imm: 0,
        }
    }

    /// `dest = src1 + src2`.
    pub fn add(dest: Reg, src1: Reg, src2: Reg) -> Self {
        Instruction {
            dest,
            src1,
            src2,
            ..Self::basic(Opcode::Add)
        }
    }

    /// `dest = src1 - src2`.
    pub fn sub(dest: Reg, src1: Reg, src2: Reg) -> Self {
        Instruction {
            dest,
            src1,
            src2,
            ..Self::basic(Opcode::Sub)
        }
    }

    /// `dest = src1 * src2` (wrapping).
    pub fn mul(dest: Reg, src1: Reg, src2: Reg) -> Self {
        Instruction {
            dest,
            src1,
            src2,
            ..Self::basic(Opcode::Mul)
        }
    }

    /// A three-register ALU operation of the given opcode.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a register-writing ALU opcode.
    pub fn alu(op: Opcode, dest: Reg, src1: Reg, src2: Reg) -> Self {
        assert!(
            matches!(op.class(), crate::OpcodeClass::Alu) && op.writes_reg(),
            "{op} is not a 3-register ALU opcode"
        );
        Instruction {
            dest,
            src1,
            src2,
            ..Self::basic(op)
        }
    }

    /// `dest = src1 + imm`.
    pub fn addi(dest: Reg, src1: Reg, imm: i32) -> Self {
        Instruction {
            dest,
            src1,
            imm,
            ..Self::basic(Opcode::AddI)
        }
    }

    /// `dest = imm`.
    pub fn movi(dest: Reg, imm: i32) -> Self {
        Instruction {
            dest,
            imm,
            ..Self::basic(Opcode::MovI)
        }
    }

    /// `pdest = (src1 == src2)`.
    pub fn cmp_eq(pdest: Pred, src1: Reg, src2: Reg) -> Self {
        Instruction {
            pdest,
            src1,
            src2,
            ..Self::basic(Opcode::CmpEq)
        }
    }

    /// `pdest = (src1 < src2)` (signed).
    pub fn cmp_lt(pdest: Pred, src1: Reg, src2: Reg) -> Self {
        Instruction {
            pdest,
            src1,
            src2,
            ..Self::basic(Opcode::CmpLt)
        }
    }

    /// `dest = mem[src1 + imm]`.
    pub fn ld(dest: Reg, base: Reg, imm: i32) -> Self {
        Instruction {
            dest,
            src1: base,
            imm,
            ..Self::basic(Opcode::Ld)
        }
    }

    /// `mem[base + imm] = data`.
    pub fn st(base: Reg, data: Reg, imm: i32) -> Self {
        Instruction {
            src1: base,
            src2: data,
            imm,
            ..Self::basic(Opcode::St)
        }
    }

    /// Software prefetch of `mem[base + imm]`.
    pub fn prefetch(base: Reg, imm: i32) -> Self {
        Instruction {
            src1: base,
            imm,
            ..Self::basic(Opcode::Prefetch)
        }
    }

    /// Conditional branch to `pc + offset` guarded by `qp`.
    pub fn br(qp: Pred, offset: i32) -> Self {
        Instruction {
            qp,
            imm: offset,
            ..Self::basic(Opcode::Br)
        }
    }

    /// Unconditional jump to `pc + offset`.
    pub fn jmp(offset: i32) -> Self {
        Instruction {
            imm: offset,
            ..Self::basic(Opcode::Jmp)
        }
    }

    /// Call `pc + offset`, writing the return address to `link`.
    pub fn call(link: Reg, offset: i32) -> Self {
        Instruction {
            dest: link,
            imm: offset,
            ..Self::basic(Opcode::Call)
        }
    }

    /// Return to the address in `link`.
    pub fn ret(link: Reg) -> Self {
        Instruction {
            src1: link,
            ..Self::basic(Opcode::Ret)
        }
    }

    /// No operation.
    pub fn nop() -> Self {
        Self::basic(Opcode::Nop)
    }

    /// Branch-prediction hint (architectural no-op).
    pub fn hint() -> Self {
        Self::basic(Opcode::Hint)
    }

    /// Write `src`'s value to the output stream.
    pub fn out(src: Reg) -> Self {
        Instruction {
            src1: src,
            ..Self::basic(Opcode::Out)
        }
    }

    /// Stop the program.
    pub fn halt() -> Self {
        Self::basic(Opcode::Halt)
    }

    /// Replaces the qualifying predicate, builder-style.
    pub fn guarded_by(mut self, qp: Pred) -> Self {
        self.qp = qp;
        self
    }

    /// The registers this instruction reads, in (src1, src2) order.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        let a = self.op.reads_src1().then_some(self.src1);
        let b = self.op.reads_src2().then_some(self.src2);
        a.into_iter().chain(b)
    }

    /// The general-purpose register this instruction writes, if any.
    pub fn reg_write(&self) -> Option<Reg> {
        self.op.writes_reg().then_some(self.dest)
    }

    /// The predicate register this instruction writes, if any.
    pub fn pred_write(&self) -> Option<Pred> {
        self.op.writes_pred().then_some(self.pdest)
    }

    /// Whether the instruction is one of the paper's neutral types.
    pub fn is_neutral(&self) -> bool {
        self.op.is_neutral()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        write!(f, "({}) ", self.qp)?;
        match self.op {
            Add | Sub | Mul | And | Or | Xor | Shl | Shr => {
                write!(f, "{} {} = {}, {}", self.op, self.dest, self.src1, self.src2)
            }
            AddI => write!(f, "addi {} = {}, {}", self.dest, self.src1, self.imm),
            MovI => write!(f, "movi {} = {}", self.dest, self.imm),
            CmpEq | CmpLt => {
                write!(f, "{} {} = {}, {}", self.op, self.pdest, self.src1, self.src2)
            }
            Ld => write!(f, "ld8 {} = [{} + {}]", self.dest, self.src1, self.imm),
            St => write!(f, "st8 [{} + {}] = {}", self.src1, self.imm, self.src2),
            Prefetch => write!(f, "lfetch [{} + {}]", self.src1, self.imm),
            Br => write!(f, "br {:+}", self.imm),
            Jmp => write!(f, "jmp {:+}", self.imm),
            Call => write!(f, "call {:+}, link={}", self.imm, self.dest),
            Ret => write!(f, "ret {}", self.src1),
            Nop => write!(f, "nop"),
            Hint => write!(f, "hint {:+}", self.imm),
            Out => write!(f, "out {}", self.src1),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let r = |n| Reg::new(n);
        let i = Instruction::add(r(3), r(1), r(2));
        assert_eq!(i.reg_write(), Some(r(3)));
        assert_eq!(i.reads().collect::<Vec<_>>(), vec![r(1), r(2)]);
        assert_eq!(i.pred_write(), None);

        let c = Instruction::cmp_lt(Pred::new(2), r(4), r(5));
        assert_eq!(c.pred_write(), Some(Pred::new(2)));
        assert_eq!(c.reg_write(), None);

        let l = Instruction::ld(r(6), r(7), 16);
        assert_eq!(l.reg_write(), Some(r(6)));
        assert_eq!(l.reads().collect::<Vec<_>>(), vec![r(7)]);

        let s = Instruction::st(r(8), r(9), -8);
        assert_eq!(s.reg_write(), None);
        assert_eq!(s.reads().collect::<Vec<_>>(), vec![r(8), r(9)]);

        let ret = Instruction::ret(r(10));
        assert_eq!(ret.reads().collect::<Vec<_>>(), vec![r(10)]);

        let call = Instruction::call(r(11), 64);
        assert_eq!(call.reg_write(), Some(r(11)));
        assert_eq!(call.reads().count(), 0);
    }

    #[test]
    fn guarded_by_changes_qp_only() {
        let i = Instruction::nop().guarded_by(Pred::new(3));
        assert_eq!(i.qp, Pred::new(3));
        assert_eq!(i.op, Opcode::Nop);
        assert!(i.is_neutral());
    }

    #[test]
    fn neutral_flag() {
        assert!(Instruction::nop().is_neutral());
        assert!(Instruction::hint().is_neutral());
        assert!(Instruction::prefetch(Reg::new(1), 0).is_neutral());
        assert!(!Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)).is_neutral());
    }

    #[test]
    fn display_is_readable() {
        let r = |n| Reg::new(n);
        assert_eq!(
            Instruction::add(r(3), r(1), r(2)).to_string(),
            "(p0) add r3 = r1, r2"
        );
        assert_eq!(
            Instruction::br(Pred::new(1), -16).to_string(),
            "(p1) br -16"
        );
        assert_eq!(Instruction::st(r(1), r(2), 8).to_string(), "(p0) st8 [r1 + 8] = r2");
        assert_eq!(Instruction::halt().to_string(), "(p0) halt");
        assert_eq!(Instruction::movi(r(5), -7).to_string(), "(p0) movi r5 = -7");
    }

    #[test]
    #[should_panic(expected = "not a 3-register ALU opcode")]
    fn alu_constructor_rejects_non_alu() {
        let _ = Instruction::alu(Opcode::Ld, Reg::ZERO, Reg::ZERO, Reg::ZERO);
    }

    #[test]
    fn default_is_nop() {
        assert_eq!(Instruction::default(), Instruction::nop());
    }
}
