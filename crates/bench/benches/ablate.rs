//! Ablation studies of the design choices DESIGN.md calls out: how
//! sensitive are the reproduced results to the modelling knobs that are
//! *not* pinned down by the paper?
//!
//! * **Instruction-queue size** — AVF and IPC versus queue depth (the
//!   64-entry point is the paper's machine);
//! * **Front-end stall model** — the synthetic I-fetch stall duty cycle
//!   that calibrates the paper's ~30 % idle fraction;
//! * **Front-end depth** — refill penalty after squash/misprediction;
//! * **Squash vs throttle** — the paper's two actions, separately and
//!   combined.
//!
//! Run with `cargo bench -p ses-bench --bench ablate`.

use ses_core::{mean, run_workload, spec_by_name, FalseDueCause, Level, PipelineConfig, PredictorKind, Table};
use ses_pipeline::IssueOrder;

const BENCHES: [&str; 4] = ["gap", "gzip", "twolf", "ammp"];

fn measure(cfg: &PipelineConfig) -> (f64, f64, f64) {
    let mut ipc = Vec::new();
    let mut sdc = Vec::new();
    let mut idle = Vec::new();
    for b in BENCHES {
        let spec = spec_by_name(b).expect("bench");
        let run = run_workload(&spec, cfg).expect("run");
        ipc.push(run.result.ipc().value());
        sdc.push(run.avf.sdc_avf().percent());
        idle.push(run.avf.state_fractions().idle);
    }
    (mean(ipc), mean(sdc), mean(idle))
}

fn main() {
    println!("\n=== Ablation 1: instruction-queue size ===\n");
    let mut t = Table::new(vec!["IQ entries", "IPC", "SDC AVF", "idle"]);
    let mut iq_rows = Vec::new();
    for entries in [16usize, 32, 64, 128] {
        let cfg = PipelineConfig {
            iq_entries: entries,
            ..PipelineConfig::default()
        };
        let (ipc, sdc, idle) = measure(&cfg);
        t.row(vec![
            entries.to_string(),
            format!("{ipc:.2}"),
            format!("{sdc:.1}%"),
            format!("{idle:.2}"),
        ]);
        iq_rows.push((entries, ipc, sdc));
    }
    println!("{t}");
    // Bigger queues buffer more exposed state: AVF should not collapse
    // with size, and IPC should not degrade.
    assert!(iq_rows[3].1 >= iq_rows[0].1 - 0.05, "IPC monotone-ish in size");

    println!("\n=== Ablation 2: synthetic I-fetch stall duty (idle calibration) ===\n");
    let mut t = Table::new(vec!["stall cycles / period", "IPC", "SDC AVF", "idle"]);
    let mut duty_rows = Vec::new();
    for (cycles, period) in [(0u64, 0u64), (20, 80), (48, 80), (64, 80)] {
        let cfg = PipelineConfig {
            ifetch_stall_period: period,
            ifetch_stall_cycles: cycles,
            ..PipelineConfig::default()
        };
        let (ipc, sdc, idle) = measure(&cfg);
        t.row(vec![
            format!("{cycles}/{period}"),
            format!("{ipc:.2}"),
            format!("{sdc:.1}%"),
            format!("{idle:.2}"),
        ]);
        duty_rows.push((cycles, idle, sdc));
    }
    println!("{t}");
    assert!(
        duty_rows[3].1 > duty_rows[0].1,
        "more fetch-off duty must raise idle fraction"
    );
    assert!(
        duty_rows[3].2 < duty_rows[0].2,
        "idle time displaces exposed state, lowering AVF"
    );

    println!("\n=== Ablation 3: front-end depth (squash refill penalty) ===\n");
    let mut t = Table::new(vec!["depth", "IPC (squash L1)", "SDC AVF (squash L1)"]);
    for depth in [4u64, 8, 16] {
        let mut cfg = PipelineConfig::default().with_squash(Level::L1);
        cfg.frontend_depth = depth;
        let (ipc, sdc, _) = measure(&cfg);
        t.row(vec![
            depth.to_string(),
            format!("{ipc:.2}"),
            format!("{sdc:.1}%"),
        ]);
    }
    println!("{t}");

    println!("\n=== Ablation 4: branch predictor vs wrong-path exposure ===\n");
    let mut t = Table::new(vec!["predictor", "mispredict", "wrong-path false DUE share", "IPC"]);
    let mut wp_rows = Vec::new();
    for kind in [PredictorKind::Gshare, PredictorKind::Bimodal, PredictorKind::StaticTaken] {
        let mut mp = Vec::new();
        let mut wp_share = Vec::new();
        let mut ipc = Vec::new();
        for b in BENCHES {
            let spec = spec_by_name(b).expect("bench");
            let mut cfg = PipelineConfig::default();
            cfg.predictor.kind = kind;
            let run = run_workload(&spec, &cfg).expect("run");
            mp.push(run.result.mispredict_ratio());
            let wrong = run.avf.false_due_cause(FalseDueCause::WrongPath) as f64;
            let total: f64 = FalseDueCause::ALL
                .iter()
                .map(|&c| run.avf.false_due_cause(c) as f64)
                .sum();
            wp_share.push(if total > 0.0 { wrong / total } else { 0.0 });
            ipc.push(run.result.ipc().value());
        }
        let (mp, wp, ipc) = (mean(mp), mean(wp_share), mean(ipc));
        t.row(vec![
            format!("{kind:?}"),
            format!("{:.1}%", mp * 100.0),
            format!("{:.1}%", wp * 100.0),
            format!("{ipc:.2}"),
        ]);
        wp_rows.push((mp, wp));
    }
    println!("{t}");
    assert!(
        wp_rows[2].0 > wp_rows[0].0,
        "static-taken must mispredict more than gshare"
    );
    assert!(
        wp_rows[2].1 > wp_rows[0].1,
        "more mispredicts, more wrong-path false-DUE exposure"
    );

    println!("\n=== Ablation 5: squash vs throttle vs both ===\n");
    let mut t = Table::new(vec!["action", "IPC", "SDC AVF", "IPC/AVF"]);
    let mut rows = Vec::new();
    let actions: [(&str, PipelineConfig); 4] = [
        ("none", PipelineConfig::default()),
        ("throttle L1", PipelineConfig::default().with_throttle(Level::L1)),
        ("squash L1", PipelineConfig::default().with_squash(Level::L1)),
        (
            "squash + throttle L1",
            PipelineConfig::default()
                .with_squash(Level::L1)
                .with_throttle(Level::L1),
        ),
    ];
    for (name, cfg) in &actions {
        let (ipc, sdc, _) = measure(cfg);
        t.row(vec![
            (*name).into(),
            format!("{ipc:.2}"),
            format!("{sdc:.1}%"),
            format!("{:.2}", ipc / (sdc / 100.0)),
        ]);
        rows.push((*name, ipc, sdc));
    }
    println!("{t}");
    // The paper's observation: throttling adds little beyond squashing.
    let squash = rows[2].2;
    let both = rows[3].2;
    assert!(
        (both - squash).abs() < 0.35 * squash,
        "throttle must add little AVF benefit on top of squashing \
         (paper: 'we did not observe significant reduction ... beyond what \
         instruction squashing already provides')"
    );
    println!("\n=== Ablation 6: in-order vs out-of-order issue ===\n");
    let mut t = Table::new(vec![
        "machine",
        "IPC",
        "SDC AVF",
        "squash-L1 SDC cut",
        "squash-L1 IPC cost",
    ]);
    let mut oo_rows = Vec::new();
    for order in [IssueOrder::InOrder, IssueOrder::OutOfOrder] {
        let base_cfg = PipelineConfig {
            issue_order: order,
            ..PipelineConfig::default()
        };
        let mut sq_cfg = base_cfg.clone().with_squash(Level::L1);
        sq_cfg.issue_order = order;
        let (ipc0, sdc0, _) = measure(&base_cfg);
        let (ipc1, sdc1, _) = measure(&sq_cfg);
        let cut = 1.0 - sdc1 / sdc0;
        let cost = 1.0 - ipc1 / ipc0;
        t.row(vec![
            format!("{order:?}"),
            format!("{ipc0:.2}"),
            format!("{sdc0:.1}%"),
            format!("{:.0}%", cut * 100.0),
            format!("{:.1}%", cost * 100.0),
        ]);
        oo_rows.push((ipc0, cut));
    }
    println!("{t}");
    assert!(
        oo_rows[1].0 > oo_rows[0].0,
        "out-of-order issue must raise IPC"
    );
    assert!(
        oo_rows[1].1 < oo_rows[0].1,
        "squash benefit must be less pronounced out of order (paper §3.1)"
    );

    println!("\nAll ablation assertions hold.");
}
