; fuzz corpus entry 9: campaign seed 1, program seed 0x88712be8a582fca
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 17    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 159    ; +0x0020
(p0) movi r11 = 952    ; +0x0028
(p0) movi r12 = 441    ; +0x0030
(p0) movi r13 = 9    ; +0x0038
(p0) movi r14 = 1054    ; +0x0040
(p0) movi r15 = 721    ; +0x0048
(p0) movi r16 = 1161    ; +0x0050
(p0) movi r17 = 870    ; +0x0058
(p0) movi r18 = 1864    ; +0x0060
(p0) movi r19 = 402    ; +0x0068
(p0) st8 [r3 + 0] = r14    ; +0x0070
(p0) st8 [r3 + 8] = r12    ; +0x0078
(p0) st8 [r3 + 16] = r11    ; +0x0080
(p0) st8 [r3 + 24] = r18    ; +0x0088
(p0) add r10 = r14, r19    ; +0x0090
(p0) and r6 = r15, r4    ; +0x0098
(p0) cmp.eq p2 = r6, r0    ; +0x00a0
(p2) add r15 = r13, r14    ; +0x00a8
(p2) xor r14 = r15, r12    ; +0x00b0
(p0) movi r14 = 1217    ; +0x00b8
(p0) addi r6 = r10, -1472    ; +0x00c0
(p0) cmp.lt p3 = r6, r0    ; +0x00c8
(p3) br +24    ; +0x00d0
(p0) add r12 = r17, r4    ; +0x00d8
(p0) add r17 = r14, r4    ; +0x00e0
(p0) nop    ; +0x00e8
(p0) and r6 = r1, r4    ; +0x00f0
(p0) cmp.eq p4 = r6, r0    ; +0x00f8
(p4) out r2    ; +0x0100
(p0) ld8 r14 = [r3 + 0]    ; +0x0108
(p0) add r2 = r2, r14    ; +0x0110
(p0) addi r1 = r1, -1    ; +0x0118
(p0) cmp.lt p1 = r0, r1    ; +0x0120
(p1) br -152    ; +0x0128
(p0) out r2    ; +0x0130
(p0) halt    ; +0x0138
