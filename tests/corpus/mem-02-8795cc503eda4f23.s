; fuzz corpus entry 2: campaign seed 77, program seed 0x8795cc503eda4f23
; regenerate with: ser-repro fuzz --seed 77 --mutate regions --emit-corpus <dir> --corpus-count 6
(p0) movi r1 = 9    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 1577    ; +0x0020
(p0) movi r11 = 180    ; +0x0028
(p0) movi r12 = 1229    ; +0x0030
(p0) movi r13 = 1298    ; +0x0038
(p0) movi r14 = 152    ; +0x0040
(p0) movi r15 = 602    ; +0x0048
(p0) movi r16 = 115    ; +0x0050
(p0) movi r17 = 1569    ; +0x0058
(p0) movi r18 = 558    ; +0x0060
(p0) movi r19 = 885    ; +0x0068
(p0) st8 [r3 + 0] = r10    ; +0x0070
(p0) st8 [r3 + 8] = r11    ; +0x0078
(p0) st8 [r3 + 16] = r10    ; +0x0080
(p0) st8 [r3 + 24] = r14    ; +0x0088
(p0) ld8 r13 = [r3 + 32]    ; +0x0090
(p0) st8 [r3 + 16] = r14    ; +0x0098
(p0) ld8 r17 = [r3 + 48]    ; +0x00a0
(p0) ld8 r18 = [r3 + 56]    ; +0x00a8
(p0) st8 [r3 + 0] = r18    ; +0x00b0
(p0) ld8 r17 = [r3 + 40]    ; +0x00b8
(p0) st8 [r3 + 1024] = r17    ; +0x00c0
(p0) st8 [r3 + 1080] = r18    ; +0x00c8
(p0) st8 [r3 + 16] = r12    ; +0x00d0
(p0) and r6 = r1, r4    ; +0x00d8
(p0) cmp.eq p2 = r6, r0    ; +0x00e0
(p2) call +160, link=r31    ; +0x00e8
(p0) st8 [r3 + 1128] = r16    ; +0x00f0
(p0) st8 [r3 + 40] = r19    ; +0x00f8
(p0) ld8 r13 = [r3 + 56]    ; +0x0100
(p0) ld8 r15 = [r3 + 0]    ; +0x0108
(p0) ld8 r12 = [r3 + 0]    ; +0x0110
(p0) ld8 r13 = [r3 + 40]    ; +0x0118
(p0) ld8 r10 = [r3 + 48]    ; +0x0120
(p0) add r2 = r2, r16    ; +0x0128
(p0) addi r1 = r1, -1    ; +0x0130
(p0) cmp.lt p1 = r0, r1    ; +0x0138
(p1) br -176    ; +0x0140
(p0) out r2    ; +0x0148
(p0) halt    ; +0x0150
(p0) movi r40 = 3    ; +0x0158
(p0) movi r41 = 4    ; +0x0160
(p0) movi r42 = 5    ; +0x0168
(p0) movi r43 = 6    ; +0x0170
(p0) add r2 = r2, r4    ; +0x0178
(p0) ret r31    ; +0x0180
(p0) movi r40 = 4    ; +0x0188
(p0) movi r41 = 5    ; +0x0190
(p0) movi r42 = 6    ; +0x0198
(p0) movi r43 = 7    ; +0x01a0
(p0) add r2 = r2, r4    ; +0x01a8
(p0) ret r31    ; +0x01b0
