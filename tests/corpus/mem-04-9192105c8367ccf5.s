; fuzz corpus entry 4: campaign seed 77, program seed 0x9192105c8367ccf5
; regenerate with: ser-repro fuzz --seed 77 --mutate regions --emit-corpus <dir> --corpus-count 6
(p0) movi r1 = 13    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 805    ; +0x0020
(p0) movi r11 = 1658    ; +0x0028
(p0) movi r12 = 98    ; +0x0030
(p0) movi r13 = 1353    ; +0x0038
(p0) movi r14 = 1361    ; +0x0040
(p0) movi r15 = 898    ; +0x0048
(p0) movi r16 = 1550    ; +0x0050
(p0) movi r17 = 1791    ; +0x0058
(p0) movi r18 = 97    ; +0x0060
(p0) movi r19 = 1879    ; +0x0068
(p0) st8 [r3 + 0] = r15    ; +0x0070
(p0) st8 [r3 + 8] = r18    ; +0x0078
(p0) st8 [r3 + 16] = r11    ; +0x0080
(p0) st8 [r3 + 24] = r17    ; +0x0088
(p0) st8 [r3 + 48] = r11    ; +0x0090
(p0) ld8 r15 = [r3 + 24]    ; +0x0098
(p0) st8 [r3 + 1056] = r13    ; +0x00a0
(p0) movi r12 = -802    ; +0x00a8
(p0) st8 [r3 + 1088] = r14    ; +0x00b0
(p0) ld8 r18 = [r3 + 8]    ; +0x00b8
(p0) xor r19 = r15, r14    ; +0x00c0
(p0) and r6 = r10, r4    ; +0x00c8
(p0) cmp.eq p2 = r6, r0    ; +0x00d0
(p2) mul r17 = r10, r18    ; +0x00d8
(p2) or r12 = r11, r18    ; +0x00e0
(p2) xor r18 = r19, r13    ; +0x00e8
(p0) ld8 r15 = [r3 + 24]    ; +0x00f0
(p0) movi r20 = 85    ; +0x00f8
(p0) add r21 = r20, r4    ; +0x0100
(p0) mul r22 = r21, r21    ; +0x0108
(p0) add r2 = r2, r11    ; +0x0110
(p0) addi r1 = r1, -1    ; +0x0118
(p0) cmp.lt p1 = r0, r1    ; +0x0120
(p1) br -152    ; +0x0128
(p0) out r2    ; +0x0130
(p0) halt    ; +0x0138
