//! Vendored stand-in for `serde`, providing just the marker traits and
//! derive re-exports the workspace names.
//!
//! The simulator's machine-readable artifacts are produced by the
//! deterministic JSON writer in `ses-metrics::telemetry`, not by serde, so
//! these traits carry no methods: deriving them documents that a type is
//! part of the (schema-versioned) data model without pulling a remote
//! dependency into the graph. The container this repo builds in has no
//! network access, so every external crate must resolve from `vendor/`.

/// Marker: the type is part of the serializable data model.
pub trait Serialize {}

/// Marker: the type is part of the deserializable data model.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
