//! Per-stage pipeline counters and bit-lifetime histograms.
//!
//! [`StageCounters`] buckets fetch/insert/issue/commit/squash/throttle
//! activity and queue occupancy by cycle interval, giving run artifacts a
//! time-resolved view of where the machine spent its bandwidth (and where
//! squash/throttle events cluster around miss shadows). Collection is
//! opt-in: the engine holds an `Option<StageCounters>` and pays only a
//! branch per stage per cycle when telemetry is off.
//!
//! [`LifetimeHistogram`] summarises the residency log into power-of-two
//! buckets of entry lifetime — the raw material behind the paper's
//! observation that most queue state is short-lived while the vulnerable
//! tail is long.

use crate::residency::Residency;

/// Activity observed in one cycle interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBucket {
    /// First cycle of the interval.
    pub start_cycle: u64,
    /// Cycles of the interval actually simulated.
    pub cycles: u64,
    /// Correct-path instructions fetched.
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Instructions inserted into the queue.
    pub inserted: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Squash actions triggered.
    pub squashes: u64,
    /// Instructions discarded by squash actions.
    pub squashed_instrs: u64,
    /// Cycles fetch was throttled.
    pub throttled_cycles: u64,
    /// Sum of queue occupancy over the interval's cycles.
    pub occupancy_sum: u64,
}

/// Cycle-bucketed per-stage pipeline counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCounters {
    bucket_size: u64,
    buckets: Vec<StageBucket>,
}

impl StageCounters {
    /// Creates a collector bucketing by `bucket_size` cycles (min 1).
    pub fn new(bucket_size: u64) -> Self {
        StageCounters {
            bucket_size: bucket_size.max(1),
            buckets: Vec::new(),
        }
    }

    /// The bucket width in cycles.
    pub fn bucket_size(&self) -> u64 {
        self.bucket_size
    }

    /// The recorded intervals, in cycle order.
    pub fn buckets(&self) -> &[StageBucket] {
        &self.buckets
    }

    /// Sums every interval into one totals record (`start_cycle` 0).
    pub fn totals(&self) -> StageBucket {
        let mut t = StageBucket::default();
        for b in &self.buckets {
            t.cycles += b.cycles;
            t.fetched += b.fetched;
            t.wrong_path_fetched += b.wrong_path_fetched;
            t.inserted += b.inserted;
            t.issued += b.issued;
            t.committed += b.committed;
            t.squashes += b.squashes;
            t.squashed_instrs += b.squashed_instrs;
            t.throttled_cycles += b.throttled_cycles;
            t.occupancy_sum += b.occupancy_sum;
        }
        t
    }

    fn bucket_mut(&mut self, cycle: u64) -> &mut StageBucket {
        let idx = (cycle / self.bucket_size) as usize;
        while self.buckets.len() <= idx {
            let start = self.buckets.len() as u64 * self.bucket_size;
            self.buckets.push(StageBucket {
                start_cycle: start,
                ..StageBucket::default()
            });
        }
        &mut self.buckets[idx]
    }

    /// Records correct- and wrong-path fetches this cycle.
    pub fn on_fetch(&mut self, cycle: u64, correct: u64, wrong: u64) {
        let b = self.bucket_mut(cycle);
        b.fetched += correct;
        b.wrong_path_fetched += wrong;
    }

    /// Records queue insertions this cycle.
    pub fn on_insert(&mut self, cycle: u64, n: u64) {
        self.bucket_mut(cycle).inserted += n;
    }

    /// Records issues this cycle.
    pub fn on_issue(&mut self, cycle: u64, n: u64) {
        self.bucket_mut(cycle).issued += n;
    }

    /// Records commits this cycle.
    pub fn on_commit(&mut self, cycle: u64, n: u64) {
        self.bucket_mut(cycle).committed += n;
    }

    /// Records one squash action discarding `n` instructions.
    pub fn on_squash(&mut self, cycle: u64, n: u64) {
        let b = self.bucket_mut(cycle);
        b.squashes += 1;
        b.squashed_instrs += n;
    }

    /// Records a throttled fetch cycle.
    pub fn on_throttle(&mut self, cycle: u64) {
        self.bucket_mut(cycle).throttled_cycles += 1;
    }

    /// Closes out one simulated cycle with its end-of-cycle occupancy.
    pub fn on_cycle(&mut self, cycle: u64, occupancy: u64) {
        let b = self.bucket_mut(cycle);
        b.cycles += 1;
        b.occupancy_sum += occupancy;
    }
}

/// Power-of-two histograms of residency lifetimes.
///
/// Bucket 0 counts zero-cycle intervals; bucket `k >= 1` counts intervals
/// of `[2^(k-1), 2^k)` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeHistogram {
    valid: Vec<u64>,
    exposed: Vec<u64>,
    ex_ace: Vec<u64>,
    residencies: u64,
}

fn bucket_of(cycles: u64) -> usize {
    (64 - cycles.leading_zeros()) as usize
}

fn bump(hist: &mut Vec<u64>, cycles: u64) {
    let b = bucket_of(cycles);
    if hist.len() <= b {
        hist.resize(b + 1, 0);
    }
    hist[b] += 1;
}

impl LifetimeHistogram {
    /// Builds the three lifetime histograms from a residency log.
    pub fn from_residencies(residencies: &[Residency]) -> Self {
        let mut h = LifetimeHistogram {
            valid: Vec::new(),
            exposed: Vec::new(),
            ex_ace: Vec::new(),
            residencies: residencies.len() as u64,
        };
        for r in residencies {
            bump(&mut h.valid, r.valid_cycles());
            bump(&mut h.exposed, r.exposed_cycles());
            bump(&mut h.ex_ace, r.ex_ace_cycles());
        }
        h
    }

    /// Residencies counted.
    pub fn residencies(&self) -> u64 {
        self.residencies
    }

    /// Valid-lifetime (alloc → dealloc) bucket counts.
    pub fn valid(&self) -> &[u64] {
        &self.valid
    }

    /// Exposure-window (alloc → last read) bucket counts.
    pub fn exposed(&self) -> &[u64] {
        &self.exposed
    }

    /// Ex-ACE-window (last read → dealloc) bucket counts.
    pub fn ex_ace(&self) -> &[u64] {
        &self.ex_ace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residency::{Occupant, ResidencyEnd};
    use ses_isa::Instruction;
    use ses_types::{Cycle, SeqNo};

    #[test]
    fn stage_counters_bucket_and_total() {
        let mut s = StageCounters::new(10);
        s.on_fetch(0, 4, 1);
        s.on_issue(5, 3);
        s.on_commit(12, 2);
        s.on_squash(25, 7);
        s.on_throttle(25);
        for c in 0..30 {
            s.on_cycle(c, 8);
        }
        assert_eq!(s.buckets().len(), 3);
        assert_eq!(s.buckets()[0].start_cycle, 0);
        assert_eq!(s.buckets()[1].start_cycle, 10);
        assert_eq!(s.buckets()[0].fetched, 4);
        assert_eq!(s.buckets()[0].wrong_path_fetched, 1);
        assert_eq!(s.buckets()[1].committed, 2);
        assert_eq!(s.buckets()[2].squashes, 1);
        assert_eq!(s.buckets()[2].squashed_instrs, 7);
        assert_eq!(s.buckets()[2].throttled_cycles, 1);
        let t = s.totals();
        assert_eq!(t.cycles, 30);
        assert_eq!(t.occupancy_sum, 240);
        assert_eq!(t.issued, 3);
    }

    #[test]
    fn zero_bucket_size_is_clamped() {
        let mut s = StageCounters::new(0);
        s.on_cycle(3, 1);
        assert_eq!(s.bucket_size(), 1);
        assert_eq!(s.buckets().len(), 4);
    }

    fn res(alloc: u64, read: Option<u64>, dealloc: u64) -> Residency {
        Residency {
            slot: 0,
            seq: SeqNo::new(1),
            occupant: Occupant::CorrectPath { trace_idx: 0 },
            instr: Instruction::nop(),
            alloc: Cycle::new(alloc),
            last_read: read.map(Cycle::new),
            dealloc: Cycle::new(dealloc),
            end: ResidencyEnd::Retired,
            falsely_predicated: false,
        }
    }

    #[test]
    fn lifetime_histogram_buckets_by_log2() {
        // Lifetimes: 0 (bucket 0), 1 (bucket 1), 5 (bucket 3), 16 (bucket 5).
        let log = [
            res(10, None, 10),
            res(0, Some(1), 1),
            res(0, None, 5),
            res(4, Some(8), 20),
        ];
        let h = LifetimeHistogram::from_residencies(&log);
        assert_eq!(h.residencies(), 4);
        assert_eq!(h.valid()[0], 1);
        assert_eq!(h.valid()[1], 1);
        assert_eq!(h.valid()[3], 1);
        assert_eq!(h.valid()[5], 1);
        assert_eq!(h.valid().iter().sum::<u64>(), 4);
        // Exposure: 0, 1, 0, 4 -> buckets 0,1,0,3.
        assert_eq!(h.exposed()[0], 2);
        assert_eq!(h.exposed()[1], 1);
        assert_eq!(h.exposed()[3], 1);
        // Every residency lands in exactly one bucket of each histogram.
        assert_eq!(h.exposed().iter().sum::<u64>(), 4);
        assert_eq!(h.ex_ace().iter().sum::<u64>(), 4);
    }
}
