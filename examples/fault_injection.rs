//! Statistical fault injection: strike random bits of the instruction
//! queue and watch what actually happens under three protection schemes —
//! the empirical counterpart of the analytic AVF numbers.
//!
//! Run with `cargo run --release --example fault_injection`.

use ses_core::{
    Campaign, CampaignConfig, DetectionModel, Outcome, PiScope, Table, TrackingConfig,
    WorkloadSpec,
};

fn main() -> Result<(), ses_core::SesError> {
    let spec = WorkloadSpec::quick("fi-example", 1234);
    let injections = 400;

    let schemes: [(&str, DetectionModel); 3] = [
        ("unprotected", DetectionModel::None),
        ("parity", DetectionModel::Parity { tracking: None }),
        (
            "parity + pi-tracking",
            DetectionModel::Parity {
                tracking: Some(TrackingConfig {
                    scope: PiScope::StoreCommit,
                    anti_pi: true,
                    pet_entries: None,
                    mem_granule: 8,
                }),
            },
        ),
    ];

    let mut table = Table::new(vec!["scheme", "outcome", "count", "share"]);
    for (name, detection) in schemes {
        let campaign = Campaign::prepare(
            &spec,
            CampaignConfig {
                injections,
                seed: 7,
                detection,
                ..CampaignConfig::default()
            },
        )?;
        let report = campaign.run();
        for o in Outcome::ALL {
            if report.count(o) > 0 {
                table.row(vec![
                    name.into(),
                    o.to_string(),
                    report.count(o).to_string(),
                    format!("{:.1}%", report.fraction(o) * 100.0),
                ]);
            }
        }
        if matches!(detection, DetectionModel::None) {
            let est = report.sdc_avf_estimate();
            println!(
                "{name}: statistical SDC AVF {:.1}% +/- {:.1}%",
                est * 100.0,
                report.ci95(est) * 100.0
            );
        } else {
            let est = report.due_avf_estimate();
            println!(
                "{name}: statistical DUE AVF {:.1}% +/- {:.1}%",
                est * 100.0,
                report.ci95(est) * 100.0
            );
        }
    }
    println!("\n{table}");
    println!(
        "Note the transformation the paper describes: parity converts every\n\
         silent corruption into a detected error (more than doubling the DUE\n\
         rate with false DUEs), and pi tracking then suppresses the false\n\
         share without reintroducing meaningful SDC."
    );
    Ok(())
}
