//! Criterion micro-benchmarks and table/figure regeneration harness live in `benches/`.
