//! The hand-written kernels through the entire stack: verified outputs,
//! timing, AVF, and technique behaviour on real (non-synthetic) programs.

use ses_arch::Emulator;
use ses_core::{AvfAnalysis, DeadMap, Level, Pipeline, PipelineConfig, RegFileAvf};
use ses_workloads::{kernels, list_chase};

#[test]
fn kernels_flow_through_timing_and_avf() {
    for k in kernels() {
        let trace = Emulator::new(&k.program).run(5_000_000).unwrap();
        assert_eq!(trace.output(), k.expected_output.as_slice(), "{}", k.name);
        let dead = DeadMap::analyze(&trace);
        let result = Pipeline::new(PipelineConfig::default()).run(&k.program, &trace);
        assert_eq!(result.committed, trace.len() as u64, "{}", k.name);
        let avf = AvfAnalysis::new(&result, &dead);
        assert!(avf.due_avf().fraction() >= avf.sdc_avf().fraction());
        let s = avf.state_fractions();
        assert!((s.idle + s.unread + s.unace + s.ace - 1.0).abs() < 1e-9);
        // Register-file analysis runs on every kernel too.
        let rf = RegFileAvf::analyze(&trace, &dead);
        assert!(rf.avf().fraction() <= 1.0);
    }
}

#[test]
fn squashing_helps_the_pointer_chase() {
    // The chase misses constantly; squashing should slash its exposure,
    // like the paper's ammp.
    let k = list_chase();
    let trace = Emulator::new(&k.program).run(5_000_000).unwrap();
    let dead = DeadMap::analyze(&trace);
    let base_cfg = PipelineConfig {
        warm_caches: false, // a single walk is all cold misses
        ..PipelineConfig::default()
    };
    let mut sq_cfg = base_cfg.clone().with_squash(Level::L1);
    sq_cfg.warm_caches = false;

    let base = Pipeline::new(base_cfg).run(&k.program, &trace);
    let sq = Pipeline::new(sq_cfg).run(&k.program, &trace);
    let a0 = AvfAnalysis::new(&base, &dead).sdc_avf().fraction();
    let a1 = AvfAnalysis::new(&sq, &dead).sdc_avf().fraction();
    assert!(sq.squashes > 10, "every chase step misses");
    assert!(
        a1 < a0 * 0.5,
        "squash must slash chase exposure: {a1:.3} vs {a0:.3}"
    );
    // The chase is serialising anyway: IPC cost stays small.
    assert!(sq.ipc().value() > base.ipc().value() * 0.85);
}
