//! Vendored minimal timing harness exposing the `criterion` API subset
//! this workspace's benches use: `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is timed with a fixed warm-up pass followed by a fixed
//! number of measured batches; the median per-iteration time is printed.
//! There is no statistical analysis, plotting, or baseline storage — the
//! goal is an offline-resolvable harness that keeps the benches runnable
//! and their numbers comparable run-to-run on the same machine.

use std::time::Instant;

/// Re-export so benches can use `criterion::black_box` if they want;
/// the workspace currently uses `std::hint::black_box` directly.
pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times closures handed over by [`Criterion::bench_function`].
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    median_ns: f64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_BATCHES: usize = 7;
const BATCH_ITERS: u64 = 5;

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(MEASURE_BATCHES);
        for _ in 0..MEASURE_BATCHES {
            let start = Instant::now();
            for _ in 0..BATCH_ITERS {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / BATCH_ITERS as f64);
        }
        self.median_ns = median(&mut samples);
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time
    /// (setup runs outside the timed region, one input per iteration).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        let mut samples = Vec::with_capacity(MEASURE_BATCHES * BATCH_ITERS as usize);
        for _ in 0..MEASURE_BATCHES {
            for _ in 0..BATCH_ITERS {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                samples.push(start.elapsed().as_nanos() as f64);
            }
        }
        self.median_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` under the timing harness and prints the median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { median_ns: 0.0 };
        f(&mut bencher);
        println!("bench {name:<40} {}", format_ns(bencher.median_ns));
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} us", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns")
    }
}

/// Declares a benchmark group: a function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran >= WARMUP_ITERS as u32 + (MEASURE_BATCHES as u32 * BATCH_ITERS as u32));
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 1, "setup must run once per iteration");
    }

    #[test]
    fn median_is_order_independent() {
        let mut a = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut a), 2.0);
    }
}
