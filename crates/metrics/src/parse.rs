//! A strict JSON parser producing [`JsonValue`] trees, plus read
//! accessors.
//!
//! The serve daemon accepts job requests as JSON bodies and replies with
//! the artifacts [`JsonValue::render`] produces, so the parser lives next
//! to the renderer and round-trips its output exactly: insertion order is
//! preserved, integers stay integers ([`JsonValue::U64`]/[`JsonValue::I64`])
//! and only fractional or exponent forms become [`JsonValue::F64`].
//! Malformed input yields a positioned [`JsonParseError`], never a panic —
//! the daemon's hostile-input guarantee starts here.

use crate::telemetry::JsonValue;

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum nesting depth the parser accepts; hostile bodies cannot force
/// unbounded recursion.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(format!("unexpected character '{}'", b as char)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonParseError {
                                    offset: self.pos,
                                    message: "truncated \\u escape".into(),
                                })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| JsonParseError {
                                offset: self.pos,
                                message: "non-ascii \\u escape".into(),
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonParseError {
                                offset: self.pos,
                                message: "bad \\u escape".into(),
                            })?;
                            // Surrogates are rejected rather than paired:
                            // the renderer never emits them.
                            let c = char::from_u32(code).ok_or_else(|| JsonParseError {
                                offset: self.pos,
                                message: "invalid \\u code point".into(),
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is validated UTF-8).
                    let s = &self.as_str()[self.pos..];
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn as_str(&self) -> &'a str {
        // `parse` only constructs the parser from a validated &str.
        std::str::from_utf8(self.bytes).expect("input was a str")
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.as_str()[start..self.pos];
        if !fractional {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(JsonValue::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::F64(v)),
            _ => Err(JsonParseError {
                offset: start,
                message: format!("bad number '{text}'"),
            }),
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document. Trailing non-whitespace input is
    /// an error.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`JsonParseError`] on any syntax violation;
    /// never panics on hostile input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for missing keys or
    /// non-objects). Duplicate keys resolve to the first occurrence, the
    /// one [`JsonValue::render`] would emit first.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an unsigned integer ([`JsonValue::U64`], or an
    /// [`JsonValue::I64`]/integral [`JsonValue::F64`] that fits).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            JsonValue::I64(v) => u64::try_from(v).ok(),
            JsonValue::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::F64(v) => Some(v),
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rendered_artifacts() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", 1u32)
            .set("name", "two\"lf\n")
            .set("ipc", 1.25)
            .set("count", 42u64)
            .set("neg", -7i64)
            .set("flag", true)
            .set("nothing", JsonValue::Null)
            .set(
                "rows",
                vec![JsonValue::U64(1), JsonValue::F64(0.5), JsonValue::Str("x".into())],
            );
        let text = doc.render();
        let parsed = JsonValue::parse(&text).expect("parse");
        assert_eq!(parsed, doc);
        // Round-trip is byte-exact: parse(render(x)).render() == render(x).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn integers_keep_their_type() {
        assert_eq!(JsonValue::parse("7").unwrap(), JsonValue::U64(7));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::I64(-7));
        assert_eq!(JsonValue::parse("7.5").unwrap(), JsonValue::F64(7.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::F64(1000.0));
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\"}", "{\"a\":}", "\"unterminated",
            "tru", "nul", "01x", "1 2", "{\"a\":1,}", "[1 2]", "\u{1}",
            "\"\\q\"", "\"\\u12\"", "\"\\ud800\"", "nan", "1e999",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must fail");
        }
        // A deeply nested array must hit the depth guard, not the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn accessors_read_fields() {
        let doc = JsonValue::parse(
            "{\"job\": \"campaign\", \"seed\": 2026, \"hw\": 0.5, \"on\": true, \"xs\": [1]}",
        )
        .unwrap();
        assert_eq!(doc.get("job").and_then(JsonValue::as_str), Some("campaign"));
        assert_eq!(doc.get("seed").and_then(JsonValue::as_u64), Some(2026));
        assert_eq!(doc.get("hw").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(doc.get("on").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("xs").and_then(JsonValue::as_array).map(<[_]>::len), Some(1));
        assert!(doc.get("missing").is_none());
        assert!(JsonValue::U64(1).get("x").is_none());
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v = JsonValue::parse(" { \"a\" : [ { } , [ ] , null ] } ").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(3));
    }
}
