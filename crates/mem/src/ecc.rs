//! ECC protection domains: binary linear codes over the 64-bit words the
//! machine stores in the instruction queue and in cache lines.
//!
//! Every scheme is a systematic-in-spirit binary linear code described by
//! its parity-check matrix `H`, stored column-wise: position `p` of the
//! `n = k + r` codeword contributes column `cols[p]` (an `r`-bit value) to
//! the syndrome. The first `r` positions are the check bits, the last `k`
//! positions carry the data word. Decoding is pure syndrome lookup: a
//! table maps each correctable pattern's syndrome to the pattern, so
//! classifying an arbitrary error mask is O(weight) XORs and one probe —
//! cheap enough to sit on the fault-injection hot path.
//!
//! The schemes:
//!
//! * [`EccScheme::None`] — no check bits; every non-empty error is silent.
//! * [`EccScheme::Parity`] — one check bit; odd-weight errors are
//!   detected, even-weight errors escape (§2's multi-bit caveat).
//! * [`EccScheme::HammingSec`] — shortened Hamming code correcting any
//!   single bit; many double errors alias a column and *miscorrect*.
//! * [`EccScheme::SecDed`] — Hsiao construction (all columns odd
//!   weight): corrects singles and detects every double, because an even
//!   number of odd columns XORs to an even-weight syndrome that can never
//!   equal an (odd-weight) column.
//! * [`EccScheme::Taec`] — single + adjacent-double + adjacent-triple
//!   error correction: the correctable set is every linear burst `1`,
//!   `11`, `111` inside the codeword, built greedily.
//! * [`EccScheme::Dec`] — double-error correction via the classic BCH
//!   construction over GF(2^m) (`cols[p] = (α^p, α^{3p})`, `r = 2m`).
//!
//! The classification tables are *proven* rather than sampled: the
//! exhaustive oracle (`tests/ecc_oracle.rs`) enumerates every error
//! pattern of weight ≤ 3 per codeword geometry and checks the fast path
//! against [`RefDecoder`], an independent row-representation decoder.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The ECC scheme protecting one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccScheme {
    /// No protection: every non-empty error is silent.
    None,
    /// One parity bit per codeword (detect-only, odd weights).
    Parity,
    /// Shortened Hamming single-error-correcting code.
    HammingSec,
    /// Hsiao single-error-correcting, double-error-detecting code.
    SecDed,
    /// Triple-adjacent-error-correcting code (bursts of length ≤ 3).
    Taec,
    /// Double-error-correcting BCH code.
    Dec,
}

impl EccScheme {
    /// All schemes, in ascending-strength order.
    pub const ALL: [EccScheme; 6] = [
        EccScheme::None,
        EccScheme::Parity,
        EccScheme::HammingSec,
        EccScheme::SecDed,
        EccScheme::Taec,
        EccScheme::Dec,
    ];

    /// Stable label for artifacts and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            EccScheme::None => "none",
            EccScheme::Parity => "parity",
            EccScheme::HammingSec => "sec",
            EccScheme::SecDed => "sec-ded",
            EccScheme::Taec => "taec",
            EccScheme::Dec => "dec",
        }
    }

    /// Parses a CLI label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label.
    pub fn parse(s: &str) -> Result<EccScheme, String> {
        EccScheme::ALL
            .into_iter()
            .find(|m| m.label() == s)
            .ok_or_else(|| format!("unknown ECC scheme '{s}' (use none/parity/sec/sec-ded/taec/dec)"))
    }
}

/// How a codeword decoder disposes of one error pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccClass {
    /// The pattern is in the correctable set: absorbed, no residual error.
    Corrected,
    /// Uncorrectable but detected: the domain raises a machine check.
    Detected,
    /// The syndrome aliases a different correctable pattern: the decoder
    /// "fixes" the wrong bits and the residual error flows on silently.
    Miscorrected,
    /// Zero syndrome on a non-empty error (the error is a codeword):
    /// completely invisible to the checker.
    Undetected,
}

impl EccClass {
    /// Whether the error survives the decoder without a machine check.
    pub fn is_silent(self) -> bool {
        matches!(self, EccClass::Miscorrected | EccClass::Undetected)
    }
}

/// One binary linear code: `k` data bits, `r` check bits, column-wise `H`.
#[derive(Debug)]
pub struct EccCode {
    scheme: EccScheme,
    k: u32,
    r: u32,
    /// Syndrome column of each codeword position (`n = r + k` entries;
    /// positions `0..r` are check bits, `r..n` carry data bits `0..k`).
    cols: Vec<u32>,
    /// Syndrome → correctable pattern.
    table: HashMap<u32, u128>,
}

impl EccCode {
    /// Data bits per codeword.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Check bits per codeword.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// Codeword length `k + r`.
    pub fn n(&self) -> u32 {
        self.k + self.r
    }

    /// The scheme this code implements.
    pub fn scheme(&self) -> EccScheme {
        self.scheme
    }

    /// Number of correctable error patterns.
    pub fn correctable_patterns(&self) -> usize {
        self.table.len()
    }

    /// The syndrome of an error mask over codeword positions.
    pub fn syndrome(&self, e: u128) -> u32 {
        let mut s = 0u32;
        let mut m = e;
        while m != 0 {
            let p = m.trailing_zeros() as usize;
            s ^= self.cols[p];
            m &= m - 1;
        }
        s
    }

    /// Classifies an error mask and returns the residual error left after
    /// the decoder acts (zero for corrected patterns, the miscorrection
    /// artifact `e ⊕ ê` for aliased ones, `e` itself otherwise).
    pub fn decode(&self, e: u128) -> (EccClass, u128) {
        debug_assert_eq!(e >> self.n(), 0, "error exceeds the codeword");
        let s = self.syndrome(e);
        if s == 0 {
            // A non-empty codeword-shaped error: invisible. (e == 0 is the
            // caller's no-strike case and never reaches a decoder.)
            return (EccClass::Undetected, e);
        }
        match self.table.get(&s) {
            Some(&p) if p == e => (EccClass::Corrected, 0),
            Some(&p) => (EccClass::Miscorrected, e ^ p),
            None => (EccClass::Detected, e),
        }
    }

    /// Classifies an error mask.
    pub fn classify(&self, e: u128) -> EccClass {
        self.decode(e).0
    }

    /// Embeds a data-word error mask into codeword positions (check bits
    /// clean — the geometry of a strike on the stored word).
    pub fn data_error(&self, data_mask: u64) -> u128 {
        debug_assert_eq!(
            u128::from(data_mask) >> self.k,
            0,
            "data mask exceeds k bits"
        );
        u128::from(data_mask) << self.r
    }

    /// The data-word part of a codeword error mask.
    pub fn data_mask(&self, e: u128) -> u64 {
        ((e >> self.r) & ((1u128 << self.k) - 1)) as u64
    }

    /// An independent reference decoder over the same code (row-wise `H`,
    /// sorted-list syndrome search): the oracle's second opinion.
    pub fn reference(&self) -> RefDecoder {
        let rows: Vec<u128> = (0..self.r)
            .map(|j| {
                let mut row = 0u128;
                for (p, &c) in self.cols.iter().enumerate() {
                    if c >> j & 1 == 1 {
                        row |= 1u128 << p;
                    }
                }
                row
            })
            .collect();
        // Re-enumerate the correctable set geometrically — independent of
        // the construction-time bookkeeping the fast table was built from.
        let mut correctable: Vec<(u32, u128)> = correctable_shapes(self.scheme, self.n())
            .into_iter()
            .map(|p| (syndrome_by_rows(&rows, p), p))
            .collect();
        correctable.sort_unstable();
        RefDecoder { rows, correctable }
    }
}

/// Syndrome of `e` computed row-wise: bit `j` is the parity of `rows[j] ∩ e`.
fn syndrome_by_rows(rows: &[u128], e: u128) -> u32 {
    rows.iter()
        .enumerate()
        .fold(0u32, |s, (j, &row)| s | (((row & e).count_ones() & 1) << j))
}

/// Independent syndrome decoder used to verify [`EccCode`]: the same code,
/// but with `H` stored row-wise and the correctable set re-derived from
/// the scheme's geometry and searched as a sorted list instead of probed
/// through the construction-time hash table.
#[derive(Debug)]
pub struct RefDecoder {
    rows: Vec<u128>,
    /// `(syndrome, pattern)`, sorted by syndrome.
    correctable: Vec<(u32, u128)>,
}

impl RefDecoder {
    /// Classifies an error mask through the reference path.
    pub fn classify(&self, e: u128) -> EccClass {
        let s = syndrome_by_rows(&self.rows, e);
        if s == 0 {
            return EccClass::Undetected;
        }
        match self
            .correctable
            .binary_search_by_key(&s, |&(syn, _)| syn)
        {
            Ok(i) if self.correctable[i].1 == e => EccClass::Corrected,
            Ok(_) => EccClass::Miscorrected,
            Err(_) => EccClass::Detected,
        }
    }

    /// Every distinct correctable-pattern syndrome maps to exactly one
    /// pattern — the well-formedness the oracle asserts per scheme.
    pub fn syndromes_are_unique(&self) -> bool {
        self.correctable
            .windows(2)
            .all(|w| w[0].0 != w[1].0)
    }
}

/// The correctable error patterns of a scheme over an `n`-bit codeword,
/// derived purely from the scheme's geometry.
fn correctable_shapes(scheme: EccScheme, n: u32) -> Vec<u128> {
    let singles = || (0..n).map(|p| 1u128 << p);
    match scheme {
        EccScheme::None | EccScheme::Parity => Vec::new(),
        EccScheme::HammingSec | EccScheme::SecDed => singles().collect(),
        EccScheme::Taec => {
            let mut v: Vec<u128> = singles().collect();
            v.extend((0..n - 1).map(|p| 0b11u128 << p));
            v.extend((0..n - 2).map(|p| 0b111u128 << p));
            v
        }
        EccScheme::Dec => {
            let mut v: Vec<u128> = singles().collect();
            for a in 0..n {
                for b in a + 1..n {
                    v.push(1u128 << a | 1u128 << b);
                }
            }
            v
        }
    }
}

/// Builds the code for `(scheme, k)`; `k` must be at most 64.
fn build(scheme: EccScheme, k: u32) -> EccCode {
    assert!((1..=64).contains(&k), "codeword data width {k} out of range");
    match scheme {
        EccScheme::None => EccCode {
            scheme,
            k,
            r: 0,
            cols: vec![0; k as usize],
            table: HashMap::new(),
        },
        EccScheme::Parity => EccCode {
            scheme,
            k,
            r: 1,
            cols: vec![1; k as usize + 1],
            table: HashMap::new(),
        },
        EccScheme::Dec => build_bch_dec(k),
        EccScheme::HammingSec | EccScheme::SecDed | EccScheme::Taec => {
            // Iterate the check-bit count upward until the greedy column
            // search closes; the loop is deterministic, so every build of
            // (scheme, k) lands on the same code.
            let mut r = match scheme {
                EccScheme::HammingSec => (1..).find(|&r| (1u64 << r) > u64::from(k + r)).unwrap(),
                EccScheme::SecDed => (2..).find(|&r| odd_weight_count(r) >= k).unwrap(),
                EccScheme::Taec => (3..)
                    .find(|&r| (1u64 << r) > 3 * u64::from(k + r))
                    .unwrap(),
                _ => unreachable!("greedy construction handles SEC/SEC-DED/TAEC only"),
            };
            loop {
                if let Some(code) = try_greedy(scheme, k, r) {
                    return code;
                }
                r += 1;
                assert!(r <= 24, "no {scheme:?} code found for k={k}");
            }
        }
    }
}

/// Number of odd-weight-≥3 values on `r` bits (the Hsiao data-column pool).
fn odd_weight_count(r: u32) -> u32 {
    (1u32..1 << r)
        .filter(|v| v.count_ones() % 2 == 1 && v.count_ones() >= 3)
        .count() as u32
}

/// Greedy column construction: check positions carry unit vectors, data
/// positions take the smallest candidate column that keeps every
/// correctable-pattern syndrome distinct and non-zero. Left-to-right, so
/// appending position `p` only creates patterns whose support ends at `p`.
fn try_greedy(scheme: EccScheme, k: u32, r: u32) -> Option<EccCode> {
    let n = k + r;
    let mut cols: Vec<u32> = Vec::with_capacity(n as usize);
    let mut table: HashMap<u32, u128> = HashMap::new();

    // Patterns whose support ends at the newly appended position `p`.
    let new_patterns = |p: u32| -> Vec<u128> {
        let mut v = vec![1u128 << p];
        if scheme == EccScheme::Taec {
            if p >= 1 {
                v.push(0b11u128 << (p - 1));
            }
            if p >= 2 {
                v.push(0b111u128 << (p - 2));
            }
        }
        v
    };

    let admit = |cols: &mut Vec<u32>, table: &mut HashMap<u32, u128>, c: u32| -> bool {
        let p = cols.len() as u32;
        cols.push(c);
        let pats = new_patterns(p);
        let mut syns = Vec::with_capacity(pats.len());
        for &pat in &pats {
            let mut s = 0u32;
            let mut m = pat;
            while m != 0 {
                let q = m.trailing_zeros() as usize;
                s ^= cols[q];
                m &= m - 1;
            }
            if s == 0 || table.contains_key(&s) || syns.iter().any(|&(t, _)| t == s) {
                cols.pop();
                return false;
            }
            syns.push((s, pat));
        }
        table.extend(syns);
        true
    };

    for j in 0..r {
        if !admit(&mut cols, &mut table, 1 << j) {
            return None;
        }
    }
    for _ in 0..k {
        let found = (1u32..1 << r).find(|&c| {
            let ok = match scheme {
                EccScheme::SecDed => c.count_ones() % 2 == 1 && c.count_ones() >= 3,
                _ => c.count_ones() >= 2,
            };
            ok && admit(&mut cols, &mut table, c)
        });
        found?;
    }
    Some(EccCode {
        scheme,
        k,
        r,
        cols,
        table,
    })
}

/// Primitive polynomials of GF(2^m) for the BCH DEC construction.
fn primitive_poly(m: u32) -> u32 {
    match m {
        3 => 0b1011,
        4 => 0b1_0011,
        5 => 0b10_0101,
        6 => 0b100_0011,
        7 => 0b1000_1001,
        8 => 0b1_0001_1101,
        _ => panic!("no primitive polynomial table entry for m={m}"),
    }
}

/// Double-error-correcting BCH code: `cols[p] = α^p | α^{3p} << m` over
/// GF(2^m), with `m` the smallest field exponent fitting `n = k + 2m`
/// positions into the 2^m − 1 distinct powers of α. The (S₁, S₃) syndrome
/// pair of every error of weight ≤ 2 is distinct and non-zero — the
/// classic BCH argument — which the construction double-checks while
/// filling the decode table.
fn build_bch_dec(k: u32) -> EccCode {
    let m = (3..=8)
        .find(|&m| (1u32 << m) > k + 2 * m)
        .unwrap_or_else(|| panic!("no DEC field exponent for k={k}"));
    let r = 2 * m;
    let n = k + r;
    let order = (1u32 << m) - 1;
    // Antilog table of α = x.
    let poly = primitive_poly(m);
    let mut alog = Vec::with_capacity(order as usize);
    let mut v = 1u32;
    for _ in 0..order {
        alog.push(v);
        v <<= 1;
        if v >> m & 1 == 1 {
            v ^= poly;
        }
    }
    let cols: Vec<u32> = (0..n)
        .map(|p| alog[(p % order) as usize] | alog[(3 * p % order) as usize] << m)
        .collect();
    let mut table = HashMap::new();
    let insert = |s: u32, p: u128, table: &mut HashMap<u32, u128>| {
        assert_ne!(s, 0, "BCH correctable pattern with zero syndrome");
        let prev = table.insert(s, p);
        assert!(prev.is_none(), "BCH syndrome collision at {s:#x}");
    };
    for a in 0..n as usize {
        insert(cols[a], 1u128 << a, &mut table);
        for b in a + 1..n as usize {
            insert(cols[a] ^ cols[b], 1u128 << a | 1u128 << b, &mut table);
        }
    }
    EccCode {
        scheme: EccScheme::Dec,
        k,
        r,
        cols,
        table,
    }
}

/// The cached code for `(scheme, data width)`.
///
/// Codes are deterministic functions of their parameters, so the cache is
/// purely a cost optimization — campaigns probe the same few geometries
/// millions of times.
pub fn code_for(scheme: EccScheme, k: u32) -> Arc<EccCode> {
    type CodeCache = Mutex<HashMap<(EccScheme, u32), Arc<EccCode>>>;
    static CODES: OnceLock<CodeCache> = OnceLock::new();
    let cache = CODES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("ECC code cache poisoned");
    map.entry((scheme, k))
        .or_insert_with(|| Arc::new(build(scheme, k)))
        .clone()
}

/// What an ECC protection domain does with one strike on a stored word
/// (evaluated at the read that would consume the word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordVerdict {
    /// Every codeword decoded its error away: the read sees clean data.
    Corrected,
    /// At least one codeword detected an uncorrectable error: the domain
    /// raises a machine check (a DUE event).
    Signalled,
    /// Every codeword stayed silent and at least one residual bit
    /// survives: the corrupted word flows on as an SDC candidate.
    Silent {
        /// The residual data-word error after all decoders acted.
        effective: u64,
    },
}

/// An ECC protection domain over 64-bit stored words: a scheme plus a
/// physical interleaving factor. With `interleave = d`, bit `i` of the
/// word belongs to codeword `i mod d`, so the `d` codewords each protect
/// `64 / d` data bits and a spatial burst of `d` adjacent cells lands as
/// single-bit errors in `d` distinct codewords — the interleaving defence
/// the paper cites against multi-bit upsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccDomain {
    /// The code protecting each codeword.
    pub scheme: EccScheme,
    /// Physical interleaving factor (1, 2, or 4).
    pub interleave: u32,
}

impl EccDomain {
    /// A domain with no interleaving.
    pub fn new(scheme: EccScheme) -> EccDomain {
        EccDomain {
            scheme,
            interleave: 1,
        }
    }

    /// A domain with `interleave`-way physical interleaving.
    ///
    /// # Panics
    ///
    /// Panics unless `interleave` is 1, 2, or 4.
    pub fn interleaved(scheme: EccScheme, interleave: u32) -> EccDomain {
        assert!(
            matches!(interleave, 1 | 2 | 4),
            "interleave must be 1, 2, or 4 (got {interleave})"
        );
        EccDomain { scheme, interleave }
    }

    /// Data bits per codeword.
    pub fn codeword_bits(&self) -> u32 {
        64 / self.interleave
    }

    /// Check bits the domain spends per 64-bit word — the area cost the
    /// trade study weighs against squash/throttle IPC cost.
    pub fn check_bits(&self) -> u32 {
        self.interleave * code_for(self.scheme, self.codeword_bits()).r()
    }

    /// Stable label, e.g. `sec-ded` or `sec-ded/x4`.
    pub fn label(&self) -> String {
        if self.interleave == 1 {
            self.scheme.label().to_string()
        } else {
            format!("{}/x{}", self.scheme.label(), self.interleave)
        }
    }

    /// Classifies a strike pattern on one stored word (check bits clean).
    ///
    /// Each codeword decodes its share of the flipped bits independently;
    /// any detection signals (machine check), otherwise any surviving
    /// residual bit makes the strike silent, otherwise everything was
    /// absorbed.
    pub fn classify_word(&self, mask: u64) -> WordVerdict {
        debug_assert_ne!(mask, 0, "a strike flips at least one bit");
        let d = self.interleave;
        let code = code_for(self.scheme, self.codeword_bits());
        let mut signalled = false;
        let mut effective = 0u64;
        for c in 0..d {
            // Gather bits i ≡ c (mod d) into codeword-local data positions.
            let mut local = 0u64;
            for j in 0..self.codeword_bits() {
                if mask >> (c + j * d) & 1 == 1 {
                    local |= 1 << j;
                }
            }
            if local == 0 {
                continue;
            }
            let (class, residual) = code.decode(code.data_error(local));
            match class {
                EccClass::Corrected => {}
                EccClass::Detected => signalled = true,
                EccClass::Miscorrected | EccClass::Undetected => {
                    let res = code.data_mask(residual);
                    for j in 0..self.codeword_bits() {
                        if res >> j & 1 == 1 {
                            effective |= 1 << (c + j * d);
                        }
                    }
                }
            }
        }
        if signalled {
            WordVerdict::Signalled
        } else if effective != 0 {
            WordVerdict::Silent { effective }
        } else {
            WordVerdict::Corrected
        }
    }

    /// Classifies a strike across a multi-word cache line: each 64-bit
    /// word is its own protection domain, so a strike is signalled if any
    /// word detects and silent if any word's residual survives — the
    /// protection-domain granularity question for uncore structures.
    pub fn classify_line(&self, word_masks: &[u64]) -> WordVerdict {
        let mut signalled = false;
        let mut silent = false;
        for &m in word_masks.iter().filter(|&&m| m != 0) {
            match self.classify_word(m) {
                WordVerdict::Corrected => {}
                WordVerdict::Signalled => signalled = true,
                WordVerdict::Silent { .. } => silent = true,
            }
        }
        if signalled {
            WordVerdict::Signalled
        } else if silent {
            WordVerdict::Silent { effective: 0 }
        } else {
            WordVerdict::Corrected
        }
    }

    /// Exact disposition counts over an enumerated family of strike
    /// patterns — the analytic per-class profile the sampled campaign's
    /// residual rates are validated against.
    pub fn profile(&self, masks: impl IntoIterator<Item = u64>) -> ClassProfile {
        let mut p = ClassProfile::default();
        for m in masks {
            p.total += 1;
            match self.classify_word(m) {
                WordVerdict::Corrected => p.corrected += 1,
                WordVerdict::Signalled => p.detected += 1,
                WordVerdict::Silent { .. } => p.silent += 1,
            }
        }
        p
    }
}

/// Exact disposition counts of one enumerated pattern family under one
/// domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassProfile {
    /// Patterns fully absorbed.
    pub corrected: u64,
    /// Patterns converted to a machine check (DUE).
    pub detected: u64,
    /// Patterns that survive silently (SDC candidates).
    pub silent: u64,
    /// Patterns enumerated.
    pub total: u64,
}

impl ClassProfile {
    /// Fraction of patterns converted to DUE.
    pub fn detected_fraction(&self) -> f64 {
        self.frac(self.detected)
    }

    /// Fraction of patterns surviving silently.
    pub fn silent_fraction(&self) -> f64 {
        self.frac(self.silent)
    }

    /// Fraction of patterns absorbed.
    pub fn corrected_fraction(&self) -> f64 {
        self.frac(self.corrected)
    }

    fn frac(&self, x: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            x as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_table_matches_the_classic_codes() {
        assert_eq!(code_for(EccScheme::None, 64).r(), 0);
        assert_eq!(code_for(EccScheme::Parity, 64).r(), 1);
        assert_eq!(code_for(EccScheme::HammingSec, 64).r(), 7);
        assert_eq!(code_for(EccScheme::SecDed, 64).r(), 8);
        assert_eq!(code_for(EccScheme::Dec, 64).r(), 14);
        // TAEC sits between SEC-DED and DEC in check-bit cost.
        let taec = code_for(EccScheme::Taec, 64).r();
        assert!((8..14).contains(&taec), "TAEC r={taec}");
    }

    #[test]
    fn sec_corrects_singles_and_miscorrects_some_doubles() {
        let code = code_for(EccScheme::HammingSec, 64);
        for p in 0..code.n() {
            assert_eq!(code.classify(1u128 << p), EccClass::Corrected);
        }
        let mis = (0..code.n())
            .flat_map(|a| (a + 1..code.n()).map(move |b| (a, b)))
            .filter(|&(a, b)| code.classify(1u128 << a | 1u128 << b) == EccClass::Miscorrected)
            .count();
        assert!(mis > 0, "a SEC code must alias some double errors");
    }

    #[test]
    fn sec_ded_detects_every_double() {
        let code = code_for(EccScheme::SecDed, 64);
        for a in 0..code.n() {
            assert_eq!(code.classify(1u128 << a), EccClass::Corrected);
            for b in a + 1..code.n() {
                assert_eq!(
                    code.classify(1u128 << a | 1u128 << b),
                    EccClass::Detected,
                    "double ({a},{b}) must be detected"
                );
            }
        }
    }

    #[test]
    fn taec_corrects_adjacent_bursts() {
        let code = code_for(EccScheme::Taec, 64);
        for p in 0..code.n() - 2 {
            assert_eq!(code.classify(0b1u128 << p), EccClass::Corrected);
            assert_eq!(code.classify(0b11u128 << p), EccClass::Corrected);
            assert_eq!(code.classify(0b111u128 << p), EccClass::Corrected);
        }
    }

    #[test]
    fn dec_corrects_every_double() {
        let code = code_for(EccScheme::Dec, 32);
        for a in 0..code.n() {
            for b in a + 1..code.n() {
                assert_eq!(
                    code.classify(1u128 << a | 1u128 << b),
                    EccClass::Corrected,
                    "double ({a},{b}) must be corrected"
                );
            }
        }
    }

    #[test]
    fn parity_misses_even_weights() {
        let code = code_for(EccScheme::Parity, 64);
        assert_eq!(code.classify(1), EccClass::Detected);
        assert_eq!(code.classify(0b11), EccClass::Undetected);
        assert_eq!(code.classify(0b111), EccClass::Detected);
    }

    #[test]
    fn interleaving_turns_bursts_into_singles() {
        let flat = EccDomain::new(EccScheme::SecDed);
        let x2 = EccDomain::interleaved(EccScheme::SecDed, 2);
        // An adjacent double defeats a flat SEC-DED correction (detected,
        // DUE) but splits into two correctable singles under x2.
        assert_eq!(flat.classify_word(0b11 << 20), WordVerdict::Signalled);
        assert_eq!(x2.classify_word(0b11 << 20), WordVerdict::Corrected);
    }

    #[test]
    fn miscorrection_residual_is_visible_in_the_data_word() {
        // For data-only strikes the residual e ⊕ ê is a codeword of
        // weight ≥ d, so it can never vanish from the data positions: the
        // pipeline's parity-mismatch bookkeeping always sees silent
        // survivors.
        for scheme in [EccScheme::HammingSec, EccScheme::SecDed, EccScheme::Taec] {
            let d = EccDomain::new(scheme);
            let code = code_for(scheme, 64);
            let mut checked = 0;
            for a in 0..64u32 {
                for b in a + 1..64u32 {
                    let mask = 1u64 << a | 1u64 << b;
                    if code.classify(code.data_error(mask)) == EccClass::Miscorrected {
                        match d.classify_word(mask) {
                            WordVerdict::Silent { effective } => {
                                assert_ne!(effective, 0);
                                checked += 1;
                            }
                            v => panic!("{scheme:?}: miscorrected double yielded {v:?}"),
                        }
                    }
                }
            }
            if scheme == EccScheme::HammingSec {
                assert!(checked > 0, "SEC must miscorrect some data doubles");
            }
        }
    }

    #[test]
    fn line_classification_aggregates_word_verdicts() {
        let d = EccDomain::new(EccScheme::SecDed);
        assert_eq!(d.classify_line(&[0, 1 << 3, 0]), WordVerdict::Corrected);
        assert_eq!(d.classify_line(&[0b11, 1 << 3]), WordVerdict::Signalled);
        assert_eq!(d.classify_line(&[0, 0, 0]), WordVerdict::Corrected);
    }

    #[test]
    fn scheme_labels_round_trip() {
        for s in EccScheme::ALL {
            assert_eq!(EccScheme::parse(s.label()), Ok(s));
        }
        assert!(EccScheme::parse("chipkill").is_err());
    }
}
