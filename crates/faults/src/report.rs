//! Campaign result aggregation and statistical AVF estimation.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use crate::outcome::Outcome;

/// Performance accounting for one campaign execution: wall-clock per
/// phase plus cycle- and replay-level counters. Quantifies how much work
/// the checkpointed injection engine actually saved; the pruned
/// executor's additional savings live in [`PruneReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignPerf {
    /// Wall-clock time of `Campaign::prepare` (golden runs plus snapshot
    /// capture).
    pub prepare_wall: Duration,
    /// Wall-clock time of the injection phase.
    pub inject_wall: Duration,
    /// Injections performed.
    pub injections: u32,
    /// Pipeline snapshots captured during prepare.
    pub checkpoints: usize,
    /// Snapshot spacing in cycles (0 = checkpointing disabled).
    pub checkpoint_interval: u64,
    /// Timing-model cycles actually simulated across all injections.
    pub cycles_simulated: u64,
    /// Timing-model cycles skipped by resuming from checkpoints instead
    /// of simulating from cycle 0.
    pub cycles_skipped: u64,
    /// Functional replays requested by the outcome classifier.
    pub replays: u64,
    /// Replays short-circuited because the corrupted word equalled the
    /// golden word (trivially identical).
    pub replay_fast_path: u64,
}

impl CampaignPerf {
    /// Fraction of classifier replay requests answered without running
    /// the functional emulator (the golden-word fast path).
    pub fn replay_hit_rate(&self) -> f64 {
        if self.replays == 0 {
            0.0
        } else {
            self.replay_fast_path as f64 / self.replays as f64
        }
    }

    /// Fraction of timing-model work avoided by resuming from
    /// checkpoints.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.cycles_simulated + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }

    /// Injection throughput over the injection phase (0 when unmeasured).
    pub fn injections_per_sec(&self) -> f64 {
        let secs = self.inject_wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.injections as f64 / secs
        }
    }
}

/// Accounting for the convergence-pruned executor, present only when the
/// campaign ran with pruning enabled. All fields are pure functions of
/// the fault sequence (folded in injection-index order), so the report —
/// and the `pruning` telemetry stanza built from it — is byte-identical
/// across thread counts and checkpoint/resume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PruneReport {
    /// Injections executed by the pruned path.
    pub injections: u32,
    /// Injections resolved without any simulation because the struck
    /// coordinate held no residency at the strike cycle.
    pub idle_skips: u32,
    /// Faulted replays stopped early because their state fingerprint
    /// rejoined the golden stream (counted per injection, including
    /// memoized occurrences of a pruned verdict).
    pub fp_stops: u32,
    /// Injections whose verdict was memoizable per residency equivalence
    /// class (no scrubbing, no temporal double strike).
    pub memo_eligible: u32,
    /// Memo-eligible injections beyond the first occurrence of their
    /// equivalence class — verdicts answered without a fresh replay.
    pub memo_hits: u32,
    /// Timing-model cycles the pruned path actually simulated (first
    /// occurrences only).
    pub replay_cycles: u64,
    /// Timing-model cycles the pruned path avoided simulating, relative
    /// to replaying every fault's window to the golden end of the run.
    pub cycles_saved: u64,
}

impl PruneReport {
    /// Fraction of injections that never ran a replay to its natural end
    /// (idle shortcut or fingerprint stop).
    pub fn stop_fraction(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            f64::from(self.idle_skips + self.fp_stops) / f64::from(self.injections)
        }
    }

    /// Mean timing-model cycles simulated per injection.
    pub fn mean_replay_cycles(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.replay_cycles as f64 / f64::from(self.injections)
        }
    }

    /// Mean timing-model cycles avoided per injection.
    pub fn mean_cycles_saved(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.cycles_saved as f64 / f64::from(self.injections)
        }
    }

    /// Fraction of memo-eligible injections answered from the memo.
    pub fn memo_hit_rate(&self) -> f64 {
        if self.memo_eligible == 0 {
            0.0
        } else {
            f64::from(self.memo_hits) / f64::from(self.memo_eligible)
        }
    }
}

/// Aggregated results of a fault-injection campaign.
///
/// `PartialEq` compares outcome counts only — [`CampaignPerf`] is
/// execution metadata, so a checkpointed campaign and a from-scratch
/// campaign over the same faults compare equal.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    counts: HashMap<Outcome, u32>,
    total: u32,
    perf: CampaignPerf,
}

impl PartialEq for CampaignReport {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && Outcome::ALL.iter().all(|&o| self.count(o) == other.count(o))
    }
}

impl CampaignReport {
    /// Builds a report from raw outcomes.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = Outcome>) -> Self {
        let mut r = CampaignReport::default();
        for o in outcomes {
            *r.counts.entry(o).or_insert(0) += 1;
            r.total += 1;
        }
        r
    }

    /// Number of injections.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Injections with the given outcome.
    pub fn count(&self, outcome: Outcome) -> u32 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Fraction of injections with the given outcome (0 when empty).
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.total as f64
        }
    }

    /// Statistical SDC-AVF estimate (meaningful for unprotected
    /// campaigns): fraction of strikes producing SDC or hang.
    pub fn sdc_avf_estimate(&self) -> f64 {
        self.fraction(Outcome::Sdc) + self.fraction(Outcome::Hang)
    }

    /// Statistical DUE-AVF estimate (meaningful for parity campaigns):
    /// fraction of strikes raising a machine check.
    pub fn due_avf_estimate(&self) -> f64 {
        self.fraction(Outcome::FalseDue) + self.fraction(Outcome::TrueDue)
    }

    /// Half-width of the 95 % normal-approximation confidence interval for
    /// an estimated proportion `p` at this sample size (delegates to the
    /// shared [`ses_metrics::binomial_ci95`] helper, so campaign reports,
    /// the differential oracle and the cross-validation tests agree on one
    /// tolerance).
    pub fn ci95(&self, p: f64) -> f64 {
        ses_metrics::binomial_ci95(p, u64::from(self.total))
    }

    /// Performance accounting for the run that produced this report
    /// (all-zero for reports built directly from outcomes).
    pub fn perf(&self) -> CampaignPerf {
        self.perf
    }

    pub(crate) fn set_perf(&mut self, perf: CampaignPerf) {
        self.perf = perf;
    }

    /// Merges another report into this one. Additive performance
    /// counters are summed; checkpoint geometry is taken from whichever
    /// report has one.
    pub fn merge(&mut self, other: &CampaignReport) {
        for (o, c) in &other.counts {
            *self.counts.entry(*o).or_insert(0) += c;
        }
        self.total += other.total;
        self.perf.prepare_wall += other.perf.prepare_wall;
        self.perf.inject_wall += other.perf.inject_wall;
        self.perf.injections += other.perf.injections;
        self.perf.cycles_simulated += other.perf.cycles_simulated;
        self.perf.cycles_skipped += other.perf.cycles_skipped;
        self.perf.replays += other.perf.replays;
        self.perf.replay_fast_path += other.perf.replay_fast_path;
        if self.perf.checkpoint_interval == 0 {
            self.perf.checkpoint_interval = other.perf.checkpoint_interval;
            self.perf.checkpoints = other.perf.checkpoints;
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} injections:", self.total)?;
        for o in Outcome::ALL {
            let c = self.count(o);
            if c > 0 {
                writeln!(f, "  {:<18} {:>6}  ({:.1}%)", o.label(), c, self.fraction(o) * 100.0)?;
            }
        }
        if self.perf.inject_wall > Duration::ZERO {
            writeln!(
                f,
                "  perf: {:.2}s inject ({:.0}/s), {:.1}% cycles skipped, {:.1}% replays fast-pathed",
                self.perf.inject_wall.as_secs_f64(),
                self.perf.injections_per_sec(),
                self.perf.skip_fraction() * 100.0,
                self.perf.replay_hit_rate() * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_fractions() {
        let r = CampaignReport::from_outcomes([
            Outcome::Benign,
            Outcome::Benign,
            Outcome::Sdc,
            Outcome::FalseDue,
        ]);
        assert_eq!(r.total(), 4);
        assert_eq!(r.count(Outcome::Benign), 2);
        assert!((r.fraction(Outcome::Sdc) - 0.25).abs() < 1e-12);
        assert!((r.sdc_avf_estimate() - 0.25).abs() < 1e-12);
        assert!((r.due_avf_estimate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = CampaignReport::default();
        assert_eq!(r.total(), 0);
        assert_eq!(r.fraction(Outcome::Sdc), 0.0);
        assert_eq!(r.ci95(0.5), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small = CampaignReport::from_outcomes(vec![Outcome::Benign; 100]);
        let large = CampaignReport::from_outcomes(vec![Outcome::Benign; 10_000]);
        assert!(large.ci95(0.3) < small.ci95(0.3));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CampaignReport::from_outcomes([Outcome::Sdc]);
        let b = CampaignReport::from_outcomes([Outcome::Sdc, Outcome::Benign]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(Outcome::Sdc), 2);
    }

    #[test]
    fn equality_ignores_perf_metadata() {
        let mut a = CampaignReport::from_outcomes([Outcome::Sdc, Outcome::Benign]);
        let b = CampaignReport::from_outcomes([Outcome::Benign, Outcome::Sdc]);
        a.set_perf(CampaignPerf {
            inject_wall: Duration::from_secs(3),
            cycles_skipped: 1000,
            ..CampaignPerf::default()
        });
        assert_eq!(a, b, "perf counters must not affect report equality");
        let c = CampaignReport::from_outcomes([Outcome::Sdc, Outcome::Sdc]);
        assert_ne!(a, c);
    }

    #[test]
    fn perf_derived_rates() {
        let perf = CampaignPerf {
            inject_wall: Duration::from_secs(2),
            injections: 100,
            cycles_simulated: 250,
            cycles_skipped: 750,
            replays: 10,
            replay_fast_path: 2,
            ..CampaignPerf::default()
        };
        assert!((perf.skip_fraction() - 0.75).abs() < 1e-12);
        assert!((perf.replay_hit_rate() - 0.2).abs() < 1e-12);
        assert!((perf.injections_per_sec() - 50.0).abs() < 1e-12);
        assert_eq!(CampaignPerf::default().skip_fraction(), 0.0);
        assert_eq!(CampaignPerf::default().replay_hit_rate(), 0.0);
        assert_eq!(CampaignPerf::default().injections_per_sec(), 0.0);
    }

    #[test]
    fn prune_report_derived_rates() {
        let p = PruneReport {
            injections: 100,
            idle_skips: 20,
            fp_stops: 30,
            memo_eligible: 90,
            memo_hits: 9,
            replay_cycles: 5000,
            cycles_saved: 15_000,
        };
        assert!((p.stop_fraction() - 0.5).abs() < 1e-12);
        assert!((p.mean_replay_cycles() - 50.0).abs() < 1e-12);
        assert!((p.mean_cycles_saved() - 150.0).abs() < 1e-12);
        assert!((p.memo_hit_rate() - 0.1).abs() < 1e-12);
        assert_eq!(PruneReport::default().stop_fraction(), 0.0);
        assert_eq!(PruneReport::default().mean_replay_cycles(), 0.0);
        assert_eq!(PruneReport::default().memo_hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_perf_counters() {
        let mut a = CampaignReport::from_outcomes([Outcome::Sdc]);
        a.set_perf(CampaignPerf {
            cycles_simulated: 10,
            replays: 1,
            ..CampaignPerf::default()
        });
        let mut b = CampaignReport::from_outcomes([Outcome::Benign]);
        b.set_perf(CampaignPerf {
            cycles_simulated: 5,
            replays: 2,
            checkpoints: 4,
            checkpoint_interval: 100,
            ..CampaignPerf::default()
        });
        a.merge(&b);
        assert_eq!(a.perf().cycles_simulated, 15);
        assert_eq!(a.perf().replays, 3);
        assert_eq!(a.perf().checkpoint_interval, 100);
        assert_eq!(a.perf().checkpoints, 4);
    }

    #[test]
    fn display_lists_nonzero_outcomes() {
        let r = CampaignReport::from_outcomes([Outcome::Sdc, Outcome::Benign]);
        let s = r.to_string();
        assert!(s.contains("SDC"));
        assert!(s.contains("benign"));
        assert!(!s.contains("hang"));
    }
}
