//! Per-bit classification of the instruction word.
//!
//! The paper's ACE rules are stated per bit of the instruction-queue entry:
//!
//! * for **dynamically dead** instructions, "a strike on any bit ... except
//!   the destination register specifier bits, will not change the final
//!   outcome of a program" (§4.1) — so [`BitKind::DestSpec`] (and
//!   [`BitKind::PredDestSpec`]) bits remain ACE while everything else goes
//!   un-ACE;
//! * for **neutral** instructions, "faults in bits other than the opcode
//!   bits will not affect a program's final outcome" (§4.1) — so only
//!   [`BitKind::Opcode`] bits remain ACE.
//!
//! This module exposes the encoding layout of [`crate::encode`] as a 64-entry
//! bit map so the AVF accounting and fault injector agree exactly on what
//! each bit means.

use serde::{Deserialize, Serialize};

use crate::encode::{
    DEST_BITS, DEST_LO, IMM_BITS, IMM_LO, OPCODE_BITS, OPCODE_LO, PDEST_BITS, PDEST_LO, QP_BITS,
    QP_LO, RESERVED_BITS, RESERVED_LO, SRC1_BITS, SRC1_LO, SRC2_BITS, SRC2_LO,
};

/// Number of bits in an encoded instruction word.
pub const BIT_COUNT: usize = 64;

/// What a given bit of the instruction word encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitKind {
    /// Opcode field bits.
    Opcode,
    /// Qualifying-predicate field bits.
    Guard,
    /// Destination general-register specifier bits.
    DestSpec,
    /// Source register specifier bits (either source).
    SrcSpec,
    /// Destination predicate specifier bits.
    PredDestSpec,
    /// Immediate field bits.
    Immediate,
    /// Reserved bits (always zero; strikes are detected at decode).
    Reserved,
}

impl BitKind {
    /// All bit kinds.
    pub const ALL: [BitKind; 7] = [
        BitKind::Opcode,
        BitKind::Guard,
        BitKind::DestSpec,
        BitKind::SrcSpec,
        BitKind::PredDestSpec,
        BitKind::Immediate,
        BitKind::Reserved,
    ];

    /// Whether a bit of this kind stays ACE when the instruction holding it
    /// is dynamically dead (only destination specifiers do — §4.1).
    pub const fn ace_when_dead(self) -> bool {
        matches!(self, BitKind::DestSpec | BitKind::PredDestSpec)
    }

    /// Whether a bit of this kind stays ACE when the instruction holding it
    /// is a neutral type (only opcode bits do — §4.1).
    pub const fn ace_when_neutral(self) -> bool {
        matches!(self, BitKind::Opcode)
    }
}

const fn build_map() -> [BitKind; BIT_COUNT] {
    let mut map = [BitKind::Reserved; BIT_COUNT];
    let spans: [(u32, u32, BitKind); 8] = [
        (OPCODE_LO, OPCODE_BITS, BitKind::Opcode),
        (QP_LO, QP_BITS, BitKind::Guard),
        (DEST_LO, DEST_BITS, BitKind::DestSpec),
        (SRC1_LO, SRC1_BITS, BitKind::SrcSpec),
        (SRC2_LO, SRC2_BITS, BitKind::SrcSpec),
        (PDEST_LO, PDEST_BITS, BitKind::PredDestSpec),
        (IMM_LO, IMM_BITS, BitKind::Immediate),
        (RESERVED_LO, RESERVED_BITS, BitKind::Reserved),
    ];
    let mut s = 0;
    while s < spans.len() {
        let (lo, bits, kind) = spans[s];
        let mut b = 0;
        while b < bits {
            map[(lo + b) as usize] = kind;
            b += 1;
        }
        s += 1;
    }
    map
}

const BIT_MAP: [BitKind; BIT_COUNT] = build_map();

/// The kind of bit `bit` (0 = LSB) of the instruction word.
///
/// # Panics
///
/// Panics if `bit >= 64`.
pub const fn bit_kind(bit: usize) -> BitKind {
    BIT_MAP[bit]
}

/// Iterates over the bit positions of a given kind.
pub fn bits_of_kind(kind: BitKind) -> impl Iterator<Item = usize> {
    (0..BIT_COUNT).filter(move |&b| BIT_MAP[b] == kind)
}

/// A mask with ones at every bit position of the given kind.
///
/// `const`, so width and mask computations downstream (the span engine's
/// ACE masks, the classifier's specifier widths) fold at compile time
/// instead of rescanning the 64-entry bit map per call.
pub const fn field_mask(kind: BitKind) -> u64 {
    let mut m = 0u64;
    let mut b = 0;
    while b < BIT_COUNT {
        if BIT_MAP[b] as u8 == kind as u8 {
            m |= 1u64 << b;
        }
        b += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_covers_all_bits() {
        let total: u64 = BitKind::ALL.iter().map(|&k| field_mask(k)).fold(0, |a, b| {
            assert_eq!(a & b, 0, "bit kinds overlap");
            a | b
        });
        assert_eq!(total, u64::MAX);
    }

    #[test]
    fn field_widths() {
        assert_eq!(bits_of_kind(BitKind::Opcode).count(), 6);
        assert_eq!(bits_of_kind(BitKind::Guard).count(), 3);
        assert_eq!(bits_of_kind(BitKind::DestSpec).count(), 6);
        assert_eq!(bits_of_kind(BitKind::SrcSpec).count(), 12);
        assert_eq!(bits_of_kind(BitKind::PredDestSpec).count(), 3);
        assert_eq!(bits_of_kind(BitKind::Immediate).count(), 32);
        assert_eq!(bits_of_kind(BitKind::Reserved).count(), 2);
    }

    #[test]
    fn kind_positions_match_encoding() {
        assert_eq!(bit_kind(0), BitKind::Opcode);
        assert_eq!(bit_kind(5), BitKind::Opcode);
        assert_eq!(bit_kind(6), BitKind::Guard);
        assert_eq!(bit_kind(9), BitKind::DestSpec);
        assert_eq!(bit_kind(15), BitKind::SrcSpec);
        assert_eq!(bit_kind(27), BitKind::PredDestSpec);
        assert_eq!(bit_kind(30), BitKind::Immediate);
        assert_eq!(bit_kind(63), BitKind::Reserved);
    }

    #[test]
    fn ace_rules_match_paper() {
        // Dead instructions: only destination specifiers stay ACE.
        let ace_dead: Vec<_> = BitKind::ALL
            .iter()
            .filter(|k| k.ace_when_dead())
            .collect();
        assert_eq!(ace_dead, vec![&BitKind::DestSpec, &BitKind::PredDestSpec]);

        // Neutral instructions: only opcode bits stay ACE.
        let ace_neutral: Vec<_> = BitKind::ALL
            .iter()
            .filter(|k| k.ace_when_neutral())
            .collect();
        assert_eq!(ace_neutral, vec![&BitKind::Opcode]);
    }

    #[test]
    fn masks_are_consistent_with_bit_kind() {
        for kind in BitKind::ALL {
            let mask = field_mask(kind);
            for b in 0..BIT_COUNT {
                let in_mask = mask & (1u64 << b) != 0;
                assert_eq!(in_mask, bit_kind(b) == kind);
            }
        }
    }
}
