//! Seeded random program generator for the differential oracle.
//!
//! Where [`crate::synthesize`] builds *calibrated* workloads (block mixes
//! tuned to reproduce the paper's dynamic profiles), this module builds
//! *adversarial* ones: structurally random SES-64 programs that stress the
//! corners a hand-tuned mix never reaches — aliasing load/store pairs to
//! the same scratch words, skewed and near-50/50 data-dependent branches
//! (the wrong-path fetch source), predicated groups whose guards flip with
//! the data, transitively dead register chains, dead stores, gated calls,
//! and neutral filler, all in a randomly shuffled order with random
//! register/immediate choices.
//!
//! Guarantees the oracle relies on:
//!
//! * **Termination** — control flow is a single counted outer loop plus
//!   forward-only internal branches and leaf calls, so every generated
//!   program halts within a statically known dynamic budget
//!   ([`FuzzProgramSpec::dynamic_budget`]).
//! * **Determinism** — the same `seed` always yields the identical
//!   program.
//! * **Output** — the accumulator is emitted via `out` at least once, so
//!   SDC classification (output-stream comparison) is meaningful.
//! * **Assembler round-trip** — no data segments are used (memory is
//!   seeded by stores), so `assemble(disassemble(p))` reproduces the
//!   program exactly; shrunk reproducers and the regression corpus are
//!   plain `.s` files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_isa::{Instruction, Opcode, Program, ProgramBuilder};
use ses_types::{Pred, Reg};

/// Base of the aliased scratch region both loads and stores walk.
const SCRATCH_BASE: i32 = 0x2_0000;
/// Byte span of the aliased scratch region (word-granular offsets inside
/// it are chosen from a handful of slots so loads and stores collide).
const SCRATCH_SPAN: i32 = 256;
/// Byte offset of the never-loaded dead-store region above the scratch
/// base.
const DEAD_STORE_OFF: i32 = 1024;

/// The live data-register pool atoms read and write (`r10`–`r19`).
const POOL: [u8; 10] = [10, 11, 12, 13, 14, 15, 16, 17, 18, 19];
/// Dead-chain registers: written every iteration, never read outside the
/// chain itself (`r22` is first-level dead, `r20`/`r21` transitively dead).
const DEAD: [u8; 3] = [20, 21, 22];
/// Registers written by call targets and never read (return-killed).
const CALL_BANK: [u8; 4] = [40, 41, 42, 43];

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn p(n: u8) -> Pred {
    Pred::new(n)
}

/// Shape knobs for one generated program. The defaults give the small,
/// fast programs the fuzz loop wants; tests can widen or narrow them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzProgramSpec {
    /// Inclusive range of outer-loop trip counts.
    pub min_trips: u32,
    /// See [`FuzzProgramSpec::min_trips`].
    pub max_trips: u32,
    /// Inclusive range of random atoms per loop iteration.
    pub min_atoms: u32,
    /// See [`FuzzProgramSpec::min_atoms`].
    pub max_atoms: u32,
    /// Maximum number of leaf functions reachable via gated calls.
    pub max_functions: u32,
    /// Bias atom selection towards memory traffic: half the draws come
    /// from the store/load atoms instead of the uniform mix. The resulting
    /// store-dense, alias-heavy programs pack many idempotent-region
    /// boundaries into few instructions — the hunting ground for the
    /// region-mode fuzzer.
    pub mem_bias: bool,
}

impl Default for FuzzProgramSpec {
    fn default() -> Self {
        FuzzProgramSpec {
            min_trips: 6,
            max_trips: 24,
            min_atoms: 6,
            max_atoms: 18,
            max_functions: 2,
            mem_bias: false,
        }
    }
}

impl FuzzProgramSpec {
    /// The store-dense, alias-heavy shape: default sizes with
    /// [`FuzzProgramSpec::mem_bias`] enabled.
    pub fn mem_heavy() -> Self {
        FuzzProgramSpec {
            mem_bias: true,
            ..FuzzProgramSpec::default()
        }
    }
}

impl FuzzProgramSpec {
    /// A safe dynamic-instruction budget for any program this spec can
    /// generate: the worst-case loop body (every atom at its longest,
    /// every call taken) times the worst-case trip count, plus prologue
    /// and epilogue, with 4x headroom. A generated program that exceeds
    /// this budget without halting is itself a generator bug the oracle
    /// reports.
    pub fn dynamic_budget(&self) -> u64 {
        let worst_atom = 8u64; // longest atom emission, in instructions
        let body = u64::from(self.max_atoms) * worst_atom + 16;
        let calls = u64::from(self.max_functions) * (CALL_BANK.len() as u64 + 4);
        (u64::from(self.max_trips) * (body + calls) + 64) * 4
    }
}

/// One randomly chosen loop-body ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    /// Three-register ALU op over the live pool.
    Alu,
    /// `movi`/`addi` with a random immediate.
    AluImm,
    /// Store to a random scratch slot, then (sometimes) a load that may
    /// alias it.
    StoreScratch,
    /// Load from a random scratch slot into the pool.
    LoadScratch,
    /// Store to the never-loaded dead region.
    StoreDead,
    /// Three-instruction dead chain (TDD + FDD defs).
    DeadChain,
    /// Compare-defined predicate guarding 1–3 pool ops.
    Predicated,
    /// Data-dependent forward branch over 1–3 instructions.
    Branch,
    /// Gated call to a leaf function.
    Call,
    /// `out` of the accumulator, guarded so it fires on some iterations.
    Output,
    /// Neutral filler (`nop` / `hint` / `lfetch`).
    Neutral,
}

/// The atoms the memory bias over-samples.
const MEM_ATOMS: [Atom; 3] = [Atom::StoreScratch, Atom::LoadScratch, Atom::StoreDead];

const ATOMS: [Atom; 11] = [
    Atom::Alu,
    Atom::AluImm,
    Atom::StoreScratch,
    Atom::LoadScratch,
    Atom::StoreDead,
    Atom::DeadChain,
    Atom::Predicated,
    Atom::Branch,
    Atom::Call,
    Atom::Output,
    Atom::Neutral,
];

const ALU_OPS: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
];

fn pool_reg(rng: &mut StdRng) -> Reg {
    r(POOL[rng.gen_range(0..POOL.len() as u32) as usize])
}

/// Word-aligned offset into the aliased scratch region. Eight slots only,
/// so independent atoms collide often — the load/store aliasing the
/// oracle's diff must stay correct under.
fn scratch_off(rng: &mut StdRng) -> i32 {
    rng.gen_range(0..(SCRATCH_SPAN / 8) as u32 / 4) as i32 * 8
}

/// Generates a random, always-halting SES-64 program from a seed, with
/// default shape knobs.
pub fn fuzz_program(seed: u64) -> Program {
    fuzz_program_with(seed, &FuzzProgramSpec::default())
}

/// Generates a random, always-halting SES-64 program with explicit shape
/// knobs. The same `(seed, spec)` pair always yields the same program.
pub fn fuzz_program_with(seed: u64, spec: &FuzzProgramSpec) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    build(&mut rng, spec)
}

fn build(rng: &mut StdRng, spec: &FuzzProgramSpec) -> Program {
    let mut b = ProgramBuilder::new();
    let trips = rng.gen_range(spec.min_trips..spec.max_trips + 1) as i32;
    let atoms = rng.gen_range(spec.min_atoms..spec.max_atoms + 1);
    let n_funcs = if spec.max_functions == 0 {
        0
    } else {
        rng.gen_range(0..spec.max_functions + 1)
    };

    // --- prologue: counter, accumulator, bases, live pool ---
    b.push(Instruction::movi(r(1), trips));
    b.push(Instruction::movi(r(2), 0));
    b.push(Instruction::movi(r(3), SCRATCH_BASE));
    b.push(Instruction::movi(r(4), 1));
    for &reg in &POOL {
        b.push(Instruction::movi(r(reg), rng.gen_range(1i32..2000)));
    }
    // Seed a few scratch slots so early loads see data-dependent values.
    for slot in 0..4 {
        b.push(Instruction::st(r(3), pool_reg(rng), slot * 8));
    }

    // Function labels are created up front so call atoms can target them.
    let funcs: Vec<ses_isa::Label> = (0..n_funcs).map(|_| b.new_label()).collect();

    let loop_top = b.new_label();
    b.bind(loop_top);

    // --- loop body: shuffled random atoms ---
    let mut next_pred: u8 = 2; // p2..p7 rotate; p1 is the loop guard
    for _ in 0..atoms {
        let atom = if spec.mem_bias && rng.gen_range(0..2u32) == 0 {
            MEM_ATOMS[rng.gen_range(0..MEM_ATOMS.len() as u32) as usize]
        } else {
            ATOMS[rng.gen_range(0..ATOMS.len() as u32) as usize]
        };
        emit_atom(&mut b, rng, atom, &funcs, &mut next_pred);
    }

    // Fold a pool register into the accumulator so the body is live.
    b.push(Instruction::add(r(2), r(2), pool_reg(rng)));

    // --- loop control ---
    b.push(Instruction::addi(r(1), r(1), -1));
    b.push(Instruction::cmp_lt(p(1), Reg::ZERO, r(1)));
    b.branch(p(1), loop_top);

    // --- epilogue ---
    b.push(Instruction::out(r(2)));
    b.push(Instruction::halt());

    // --- leaf functions (after halt; reachable only by call) ---
    for (i, label) in funcs.iter().enumerate() {
        b.bind(*label);
        // Return-killed writes: nothing ever reads the call bank.
        for (k, &reg) in CALL_BANK.iter().enumerate() {
            b.push(Instruction::movi(r(reg), (i + k + 3) as i32));
        }
        // One live side effect so the call itself matters.
        b.push(Instruction::add(r(2), r(2), r(4)));
        b.push(Instruction::ret(r(31)));
    }

    b.build().expect("fuzz program must build")
}

fn emit_atom(
    b: &mut ProgramBuilder,
    rng: &mut StdRng,
    atom: Atom,
    funcs: &[ses_isa::Label],
    next_pred: &mut u8,
) {
    let take_pred = |n: &mut u8| {
        let pr = p(*n);
        *n = if *n >= 7 { 2 } else { *n + 1 };
        pr
    };
    match atom {
        Atom::Alu => {
            let op = ALU_OPS[rng.gen_range(0..ALU_OPS.len() as u32) as usize];
            b.push(Instruction::alu(op, pool_reg(rng), pool_reg(rng), pool_reg(rng)));
        }
        Atom::AluImm => {
            let dest = pool_reg(rng);
            if rng.gen_range(0..2u32) == 0 {
                b.push(Instruction::movi(dest, rng.gen_range(0i32..4000) - 2000));
            } else {
                b.push(Instruction::addi(dest, pool_reg(rng), rng.gen_range(0i32..200) - 100));
            }
        }
        Atom::StoreScratch => {
            let off = scratch_off(rng);
            b.push(Instruction::st(r(3), pool_reg(rng), off));
            if rng.gen_range(0..2u32) == 0 {
                // Immediately read a (possibly identical) slot back: the
                // aliasing pair the oracle must see commit in order.
                b.push(Instruction::ld(pool_reg(rng), r(3), scratch_off(rng)));
            }
        }
        Atom::LoadScratch => {
            b.push(Instruction::ld(pool_reg(rng), r(3), scratch_off(rng)));
        }
        Atom::StoreDead => {
            let off = DEAD_STORE_OFF + rng.gen_range(0..16u32) as i32 * 8;
            b.push(Instruction::st(r(3), pool_reg(rng), off));
        }
        Atom::DeadChain => {
            // r22 is never read (FDD); r20/r21 feed only dead consumers.
            b.push(Instruction::movi(r(DEAD[0]), rng.gen_range(1i32..100)));
            b.push(Instruction::add(r(DEAD[1]), r(DEAD[0]), r(4)));
            b.push(Instruction::mul(r(DEAD[2]), r(DEAD[1]), r(DEAD[1])));
        }
        Atom::Predicated => {
            let pr = take_pred(next_pred);
            let gate = pool_reg(rng);
            b.push(Instruction::alu(Opcode::And, r(6), gate, r(4)));
            b.push(Instruction::cmp_eq(pr, r(6), Reg::ZERO));
            for _ in 0..rng.gen_range(1..4u32) {
                let op = ALU_OPS[rng.gen_range(0..6u32) as usize];
                b.push(
                    Instruction::alu(op, pool_reg(rng), pool_reg(rng), pool_reg(rng))
                        .guarded_by(pr),
                );
            }
        }
        Atom::Branch => {
            // Taken iff a pool value clears a random threshold: the data
            // decides, so some of these sit near 50/50 and mispredict.
            let pr = take_pred(next_pred);
            let skip = b.new_label();
            b.push(Instruction::addi(r(6), pool_reg(rng), -(rng.gen_range(0..2000u32) as i32)));
            b.push(Instruction::cmp_lt(pr, r(6), Reg::ZERO));
            b.branch(pr, skip);
            for _ in 0..rng.gen_range(1..4u32) {
                b.push(Instruction::add(pool_reg(rng), pool_reg(rng), r(4)));
            }
            b.bind(skip);
        }
        Atom::Call => {
            if funcs.is_empty() {
                b.push(Instruction::nop());
                return;
            }
            let pr = take_pred(next_pred);
            let i = rng.gen_range(0..funcs.len() as u32) as usize;
            // Gate on the loop counter's low bits so the call fires on a
            // subset of iterations.
            b.push(Instruction::alu(Opcode::And, r(6), r(1), r(4)));
            b.push(Instruction::cmp_eq(pr, r(6), Reg::ZERO));
            b.call_guarded(pr, r(31), funcs[i]);
        }
        Atom::Output => {
            let pr = take_pred(next_pred);
            b.push(Instruction::alu(Opcode::And, r(6), r(1), r(4)));
            b.push(Instruction::cmp_eq(pr, r(6), Reg::ZERO));
            b.push(Instruction::out(r(2)).guarded_by(pr));
        }
        Atom::Neutral => {
            b.push(match rng.gen_range(0..3u32) {
                0 => Instruction::nop(),
                1 => Instruction::hint(),
                _ => Instruction::prefetch(r(3), rng.gen_range(0..8u32) as i32 * 64),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::Emulator;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(fuzz_program(7), fuzz_program(7));
        assert_ne!(fuzz_program(7), fuzz_program(8));
    }

    #[test]
    fn every_seed_halts_within_budget_and_outputs() {
        let spec = FuzzProgramSpec::default();
        for seed in 0..200u64 {
            let program = fuzz_program(seed);
            let trace = Emulator::new(&program)
                .run(spec.dynamic_budget())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(trace.halted(), "seed {seed} must halt");
            assert!(!trace.output().is_empty(), "seed {seed} must emit output");
        }
    }

    #[test]
    fn population_exercises_all_phenomena() {
        // No single seed need contain every atom, but across a batch the
        // generator must produce predication, branches both taken and not,
        // aliasing memory traffic, and calls.
        let mut agg = ses_arch::TraceStats::default();
        for seed in 0..40u64 {
            let program = fuzz_program(seed);
            let trace = Emulator::new(&program)
                .run(FuzzProgramSpec::default().dynamic_budget())
                .unwrap();
            let s = trace.stats();
            agg.total += s.total;
            agg.falsely_predicated += s.falsely_predicated;
            agg.neutral += s.neutral;
            agg.loads += s.loads;
            agg.stores += s.stores;
            agg.cond_branches += s.cond_branches;
            agg.taken_branches += s.taken_branches;
            agg.calls += s.calls;
            agg.outputs += s.outputs;
        }
        assert!(agg.falsely_predicated > 0);
        assert!(agg.loads > 0 && agg.stores > 0);
        assert!(agg.cond_branches > 0);
        assert!(agg.taken_branches > 0 && agg.taken_branches < agg.cond_branches);
        assert!(agg.calls > 0);
        assert!(agg.outputs >= 40, "every program outputs at least once");
        assert!(agg.neutral > 0);
    }

    #[test]
    fn mem_bias_makes_programs_store_denser() {
        let count = |spec: &FuzzProgramSpec| {
            let mut stores = 0u64;
            let mut total = 0u64;
            for seed in 0..30u64 {
                let trace = Emulator::new(&fuzz_program_with(seed, spec))
                    .run(spec.dynamic_budget())
                    .unwrap();
                let s = trace.stats();
                stores += s.stores;
                total += s.total;
            }
            stores as f64 / total as f64
        };
        let plain = count(&FuzzProgramSpec::default());
        let heavy = count(&FuzzProgramSpec::mem_heavy());
        assert!(
            heavy > plain * 1.3,
            "mem bias must raise store density: {heavy:.3} vs {plain:.3}"
        );
    }

    #[test]
    fn programs_roundtrip_through_the_assembler() {
        for seed in [0u64, 3, 11, 42] {
            let program = fuzz_program(seed);
            let text = ses_isa::disassemble(&program);
            let back = ses_isa::assemble(&text).expect("reassemble");
            assert_eq!(program, back, "seed {seed} must survive asm round-trip");
        }
    }
}
