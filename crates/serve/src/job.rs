//! Wire-level job schema and execution.
//!
//! A [`JobSpec`] parses from a request's JSON body, validates every field
//! (unknown keys are rejected — the canonical form is total), and executes
//! through exactly the `ses-core` calls the CLI subcommands make. The
//! served body is `doc.render()`, which is also byte-for-byte what
//! `write_artifact` puts in a `--json` file, so a served artifact is
//! identical to the CLI artifact for the same (config, workload, seed).
//!
//! [`JobSpec::canonical`] resolves all defaults into a deterministic
//! string that doubles as the result-cache key: two jobs share bytes iff
//! they share a canonical form, so cache-key collisions between distinct
//! configs are impossible by construction. Worker-thread count is
//! deliberately *excluded* from the canonical form — summary-level
//! artifacts are thread-count invariant (an invariant the equivalence
//! battery proves), so `--threads 1` and `--threads 8` requests share one
//! cache entry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ses_core::telemetry as artifact;
use ses_core::{
    read_probability, run_ecc_campaign, run_fuzz, run_suite_with, spec_by_name, Campaign,
    CampaignConfig, DetectionModel, EccCampaignConfig, EccDomain, EccScheme, Environment,
    FuzzConfig, JsonValue, LatencyDistribution, Level, PatternDistribution, PipelineConfig,
    RecoveryPolicy, ReliabilityModel, TechNode, TelemetryLevel, TrackingConfig,
};

/// A job-level failure with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// HTTP status code (400 for bad parameters, 500 for execution
    /// failures).
    pub status: u16,
    /// Human-readable description.
    pub message: String,
}

impl JobError {
    fn bad(message: impl Into<String>) -> JobError {
        JobError {
            status: 400,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> JobError {
        JobError {
            status: 500,
            message: message.into(),
        }
    }
}

/// FNV-1a 64-bit hash of the canonical job string; the `X-Job-Key`
/// display form (the cache itself is keyed by the full canonical string).
pub fn job_key_hash(canonical: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which campaign flavour a [`CampaignJob`] resolved to; mirrors the
/// CLI's dispatch inside `cmd_campaign`/`cmd_inject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CampaignFlavor {
    /// Fixed-budget single-bit campaign (the CLI `inject` path).
    Plain,
    /// Detection-latency + recovery campaign (the CLI
    /// `campaign --detect-latency/--recovery` path).
    Recovery,
    /// Multi-bit spatial campaign under an ECC domain (the CLI
    /// `campaign --ecc/--pattern-model` path).
    Ecc,
}

/// A validated `campaign` job.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    workload: String,
    flavor: CampaignFlavor,
    injections: u32,
    seed: u64,
    detection: DetectionModel,
    model_label: &'static str,
    detect_latency: Option<LatencyDistribution>,
    recovery: RecoveryPolicy,
    ecc: Option<EccScheme>,
    spatial: Option<bool>,
    node: Option<TechNode>,
    env: Option<Environment>,
    prune: bool,
    threads: usize,
    level: TelemetryLevel,
}

/// A validated `suite` job.
#[derive(Debug, Clone)]
pub struct SuiteJob {
    squash: Option<Level>,
    throttle: Option<Level>,
    threads: usize,
    level: TelemetryLevel,
}

/// A validated `ecc-grid` job.
#[derive(Debug, Clone)]
pub struct EccGridJob {
    workloads: Vec<String>,
    probes: u32,
    seed: u64,
    level: TelemetryLevel,
}

/// A validated `fuzz` job.
#[derive(Debug, Clone)]
pub struct FuzzJob {
    seed: u64,
    iters: u64,
    inject_every: u64,
    shrink: bool,
    mem_heavy: bool,
    level: TelemetryLevel,
}

/// A parsed, validated job ready to canonicalise and execute.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Fault-injection campaign (plain, recovery, or ECC flavour).
    Campaign(CampaignJob),
    /// Full 26-workload suite sweep.
    Suite(SuiteJob),
    /// Analytic node x environment x scheme residual grid.
    EccGrid(EccGridJob),
    /// Differential fuzz run.
    Fuzz(FuzzJob),
}

fn level_label(level: Level) -> &'static str {
    match level {
        Level::L0 => "l0",
        Level::L1 => "l1",
        Level::L2 => "l2",
        Level::Memory => "memory",
    }
}

/// Field extraction helpers over a JSON object body; every getter removes
/// the key from `fields`, so leftovers at the end are unknown keys.
struct Body {
    fields: Vec<(String, JsonValue)>,
}

impl Body {
    fn new(doc: &JsonValue) -> Result<Body, JobError> {
        match doc {
            JsonValue::Object(fields) => {
                let mut seen = Vec::new();
                for (k, _) in fields {
                    if seen.contains(k) {
                        return Err(JobError::bad(format!("duplicate field '{k}'")));
                    }
                    seen.push(k.clone());
                }
                Ok(Body {
                    fields: fields.clone(),
                })
            }
            _ => Err(JobError::bad("request body must be a JSON object")),
        }
    }

    fn take(&mut self, key: &str) -> Option<JsonValue> {
        let idx = self.fields.iter().position(|(k, _)| k == key)?;
        Some(self.fields.remove(idx).1)
    }

    fn string(&mut self, key: &str) -> Result<Option<String>, JobError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(other) => Err(JobError::bad(format!(
                "field '{key}' must be a string, got {other:?}"
            ))),
        }
    }

    fn u64(&mut self, key: &str) -> Result<Option<u64>, JobError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::U64(n)) => Ok(Some(n)),
            Some(other) => Err(JobError::bad(format!(
                "field '{key}' must be a non-negative integer, got {other:?}"
            ))),
        }
    }

    fn u32(&mut self, key: &str) -> Result<Option<u32>, JobError> {
        match self.u64(key)? {
            None => Ok(None),
            Some(n) => u32::try_from(n)
                .map(Some)
                .map_err(|_| JobError::bad(format!("field '{key}' exceeds u32"))),
        }
    }

    fn bool(&mut self, key: &str) -> Result<Option<bool>, JobError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Bool(b)) => Ok(Some(b)),
            Some(other) => Err(JobError::bad(format!(
                "field '{key}' must be a boolean, got {other:?}"
            ))),
        }
    }

    fn string_array(&mut self, key: &str) -> Result<Option<Vec<String>>, JobError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        JsonValue::Str(s) => out.push(s),
                        other => {
                            return Err(JobError::bad(format!(
                                "field '{key}' must be an array of strings, got element {other:?}"
                            )))
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(other) => Err(JobError::bad(format!(
                "field '{key}' must be an array of strings, got {other:?}"
            ))),
        }
    }

    fn finish(self) -> Result<(), JobError> {
        if let Some((k, _)) = self.fields.first() {
            return Err(JobError::bad(format!("unknown field '{k}'")));
        }
        Ok(())
    }
}

fn parse_level_field(body: &mut Body) -> Result<TelemetryLevel, JobError> {
    let level = match body.string("level")? {
        None => TelemetryLevel::Summary,
        Some(s) => TelemetryLevel::parse(&s).map_err(JobError::bad)?,
    };
    if level == TelemetryLevel::Off {
        return Err(JobError::bad(
            "telemetry level 'off' produces no artifact; use summary or full",
        ));
    }
    Ok(level)
}

fn parse_threads_field(body: &mut Body) -> Result<usize, JobError> {
    match body.u64("threads")? {
        None => Ok(0),
        Some(n) if n <= 256 => Ok(n as usize),
        Some(n) => Err(JobError::bad(format!("threads {n} exceeds limit of 256"))),
    }
}

fn parse_detection(s: &str) -> Result<(DetectionModel, &'static str), JobError> {
    match s {
        "none" => Ok((DetectionModel::None, "none")),
        "parity" => Ok((DetectionModel::Parity { tracking: None }, "parity")),
        "tracking" => Ok((
            DetectionModel::Parity {
                tracking: Some(TrackingConfig::paper_combined()),
            },
            "tracking",
        )),
        other => Err(JobError::bad(format!(
            "unknown model '{other}' (use none/parity/tracking)"
        ))),
    }
}

fn parse_cache_level(s: &str) -> Result<Level, JobError> {
    match s {
        "l0" | "L0" => Ok(Level::L0),
        "l1" | "L1" => Ok(Level::L1),
        "l2" | "L2" => Ok(Level::L2),
        other => Err(JobError::bad(format!(
            "unknown cache level '{other}' (use l0/l1/l2)"
        ))),
    }
}

fn known_workload(name: &str) -> Result<(), JobError> {
    if spec_by_name(name).is_none() {
        return Err(JobError::bad(format!("unknown benchmark '{name}'")));
    }
    Ok(())
}

impl JobSpec {
    /// Parses a job from `kind` (the route tail, e.g. `campaign`) and a
    /// JSON `body`. All fields are validated here; unknown fields,
    /// duplicate fields and type mismatches are 400s.
    pub fn parse(kind: &str, body: &JsonValue) -> Result<JobSpec, JobError> {
        let mut body = Body::new(body)?;
        let spec = match kind {
            "campaign" => JobSpec::Campaign(CampaignJob::parse(&mut body)?),
            "suite" => JobSpec::Suite(SuiteJob::parse(&mut body)?),
            "ecc-grid" => JobSpec::EccGrid(EccGridJob::parse(&mut body)?),
            "fuzz" => JobSpec::Fuzz(FuzzJob::parse(&mut body)?),
            other => {
                return Err(JobError {
                    status: 404,
                    message: format!(
                        "unknown job kind '{other}' (use campaign/suite/ecc-grid/fuzz)"
                    ),
                })
            }
        };
        body.finish()?;
        Ok(spec)
    }

    /// The canonical form: all defaults resolved, deterministic field
    /// order, worker-thread count excluded (it never changes bytes).
    /// This string is the result-cache key.
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::Campaign(j) => {
                let latency = j
                    .detect_latency
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |d| d.to_string());
                format!(
                    "v1/campaign workload={} injections={} seed={} model={} latency={} recovery={} ecc={} pattern={} node={} env={} prune={} level={}",
                    j.workload,
                    j.injections,
                    j.seed,
                    j.model_label,
                    latency,
                    j.recovery.label(),
                    j.ecc.map_or("-", EccScheme::label),
                    match j.spatial {
                        None => "-",
                        Some(true) => "spatial",
                        Some(false) => "single",
                    },
                    j.node.map_or("-", TechNode::label),
                    j.env.map_or("-", Environment::label),
                    j.prune,
                    j.level.label(),
                )
            }
            JobSpec::Suite(j) => format!(
                "v1/suite squash={} throttle={} level={}",
                j.squash.map_or("-", level_label),
                j.throttle.map_or("-", level_label),
                j.level.label(),
            ),
            JobSpec::EccGrid(j) => format!(
                "v1/ecc-grid workloads={} probes={} seed={} level={}",
                j.workloads.join(","),
                j.probes,
                j.seed,
                j.level.label(),
            ),
            JobSpec::Fuzz(j) => format!(
                "v1/fuzz seed={} iters={} inject_every={} shrink={} mem_heavy={} level={}",
                j.seed, j.iters, j.inject_every, j.shrink, j.mem_heavy,
                j.level.label(),
            ),
        }
    }

    /// The telemetry level the artifact is rendered at.
    pub fn level(&self) -> TelemetryLevel {
        match self {
            JobSpec::Campaign(j) => j.level,
            JobSpec::Suite(j) => j.level,
            JobSpec::EccGrid(j) => j.level,
            JobSpec::Fuzz(j) => j.level,
        }
    }

    /// Whether the result is deterministic and safe to cache: summary
    /// artifacts only (full-level artifacts may carry wall-clock
    /// counters, so they bypass the cache).
    pub fn cacheable(&self) -> bool {
        self.level() == TelemetryLevel::Summary
    }

    /// Executes the job and renders the artifact — the exact bytes the
    /// CLI writes with `--json` for the same configuration.
    pub fn execute(&self, shared: &SharedRuns) -> Result<String, JobError> {
        let doc = match self {
            JobSpec::Campaign(j) => j.execute(shared)?,
            JobSpec::Suite(j) => j.execute()?,
            JobSpec::EccGrid(j) => j.execute()?,
            JobSpec::Fuzz(j) => j.execute(),
        };
        Ok(doc.render())
    }
}

impl CampaignJob {
    fn parse(body: &mut Body) -> Result<CampaignJob, JobError> {
        let workload = body
            .string("workload")?
            .ok_or_else(|| JobError::bad("campaign job needs a 'workload' field"))?;
        known_workload(&workload)?;
        let injections = body.u32("injections")?;
        let seed = body.u64("seed")?.unwrap_or(2026);
        let model = body.string("model")?;
        let detect_latency = body
            .string("detect_latency")?
            .map(|s| s.parse::<LatencyDistribution>().map_err(JobError::bad))
            .transpose()?;
        let recovery = body
            .string("recovery")?
            .map_or(Ok(RecoveryPolicy::MachineCheck), |s| {
                s.parse::<RecoveryPolicy>().map_err(JobError::bad)
            })?;
        let ecc = body
            .string("ecc")?
            .map(|s| EccScheme::parse(&s).map_err(JobError::bad))
            .transpose()?;
        let spatial = match body.string("pattern_model")?.as_deref() {
            None => None,
            Some("single") => Some(false),
            Some("spatial") => Some(true),
            Some(other) => {
                return Err(JobError::bad(format!(
                    "unknown pattern model '{other}' (use single/spatial)"
                )))
            }
        };
        let node = body
            .string("node")?
            .map(|s| TechNode::parse(&s).map_err(JobError::bad))
            .transpose()?;
        let env = body
            .string("env")?
            .map(|s| Environment::parse(&s).map_err(JobError::bad))
            .transpose()?;
        let prune = body.bool("prune")?.unwrap_or(false);
        let threads = parse_threads_field(body)?;
        let level = parse_level_field(body)?;

        // Flavour dispatch mirrors `cmd_campaign`: latency/recovery
        // selects the recovery campaign (detection defaults to parity),
        // ecc/pattern selects the multi-bit campaign (detection defaults
        // to none), anything else is the fixed-budget `inject` path.
        let (flavor, default_injections, default_model) =
            if recovery == RecoveryPolicy::Idempotent || detect_latency.is_some() {
                if ecc.is_some() || spatial.is_some() {
                    return Err(JobError::bad(
                        "detect_latency/recovery combine with neither ecc nor pattern_model",
                    ));
                }
                (CampaignFlavor::Recovery, 500, "parity")
            } else if ecc.is_some() || spatial.is_some() {
                (CampaignFlavor::Ecc, 1000, "none")
            } else {
                (CampaignFlavor::Plain, 300, "parity")
            };
        if flavor != CampaignFlavor::Ecc && (node.is_some() || env.is_some()) {
            return Err(JobError::bad(
                "node/env apply only to ecc/pattern_model campaigns",
            ));
        }
        let (detection, model_label) = match model.as_deref() {
            Some(s) => parse_detection(s)?,
            None => parse_detection(default_model)?,
        };
        let injections = injections.unwrap_or(default_injections);
        if injections > 100_000 {
            return Err(JobError::bad(format!(
                "injections {injections} exceeds serving limit of 100000"
            )));
        }

        Ok(CampaignJob {
            workload,
            flavor,
            injections,
            seed,
            detection,
            model_label,
            detect_latency,
            recovery,
            ecc,
            spatial,
            node,
            env,
            prune,
            threads,
            level,
        })
    }

    /// The canonical form of the *prepared* state this job needs: the
    /// golden run + snapshots (and, for detailed runs, the injection
    /// sweep inputs). Jobs differing only in telemetry level share it.
    fn prep_canonical(&self) -> String {
        let config = self.campaign_config();
        let latency = config
            .detect_latency
            .as_ref()
            .map_or_else(|| "-".to_string(), |d| d.to_string());
        format!(
            "prep workload={} injections={} seed={} model={} latency={} recovery={} prune={}",
            self.workload,
            config.injections,
            config.seed,
            self.model_label,
            latency,
            config.recovery.label(),
            config.prune,
        )
    }

    /// The `CampaignConfig` each flavour prepares with — field-for-field
    /// what the CLI builds.
    fn campaign_config(&self) -> CampaignConfig {
        match self.flavor {
            CampaignFlavor::Plain => CampaignConfig {
                injections: self.injections,
                seed: self.seed,
                detection: self.detection,
                threads: self.threads,
                prune: self.prune,
                ..CampaignConfig::default()
            },
            CampaignFlavor::Recovery => CampaignConfig {
                injections: self.injections,
                seed: self.seed,
                detection: self.detection,
                detect_latency: self.detect_latency.clone(),
                recovery: self.recovery,
                threads: self.threads,
                prune: self.prune,
                ..CampaignConfig::default()
            },
            // The ECC flavour runs through `run_ecc_campaign`, which takes
            // its budget from `EccCampaignConfig`; the prepared campaign
            // only contributes the golden run (CLI leaves `injections` at
            // its default there too).
            CampaignFlavor::Ecc => CampaignConfig {
                seed: self.seed,
                detection: self.detection,
                threads: self.threads,
                prune: self.prune,
                ..CampaignConfig::default()
            },
        }
    }

    fn execute(&self, shared: &SharedRuns) -> Result<JsonValue, JobError> {
        let spec = spec_by_name(&self.workload)
            .ok_or_else(|| JobError::bad(format!("unknown benchmark '{}'", self.workload)))?;
        let slot = shared.prepared(&self.prep_canonical(), || {
            Campaign::prepare(&spec, self.campaign_config())
                .map_err(|e| JobError::internal(e.to_string()))
        })?;
        // Detailed runs mutate shared recovery/perf counters (delta
        // accounting), so runs on one prepared campaign are serialised;
        // distinct campaigns still run fully in parallel.
        let _run = slot.run_lock.lock().unwrap();
        let campaign = &slot.campaign;
        match self.flavor {
            CampaignFlavor::Plain | CampaignFlavor::Recovery => {
                let iq_entries = self.campaign_config().pipeline.iq_entries;
                let detailed = campaign.run_detailed();
                Ok(artifact::campaign_artifact(
                    &self.workload,
                    &detailed,
                    iq_entries,
                    self.level,
                ))
            }
            CampaignFlavor::Ecc => {
                let model = if self.node.is_some() || self.env.is_some() {
                    ReliabilityModel::for_scenario(
                        self.node.unwrap_or(TechNode::N28),
                        self.env.unwrap_or(Environment::Consumer),
                    )
                } else {
                    ReliabilityModel::default()
                };
                let cfg = EccCampaignConfig {
                    injections: self.injections,
                    seed: self.seed,
                    distribution: if self.spatial == Some(false) {
                        PatternDistribution::single_only()
                    } else {
                        PatternDistribution::default()
                    },
                    domain: EccDomain::new(self.ecc.unwrap_or(EccScheme::None)),
                };
                let report = run_ecc_campaign(campaign, &cfg);
                Ok(artifact::ecc_campaign_artifact(
                    &self.workload,
                    &cfg,
                    &report,
                    campaign.baseline_ipc(),
                    &model,
                    self.level,
                ))
            }
        }
    }
}

impl SuiteJob {
    fn parse(body: &mut Body) -> Result<SuiteJob, JobError> {
        let squash = body
            .string("squash")?
            .map(|s| parse_cache_level(&s))
            .transpose()?;
        let throttle = body
            .string("throttle")?
            .map(|s| parse_cache_level(&s))
            .transpose()?;
        let threads = parse_threads_field(body)?;
        let level = parse_level_field(body)?;
        Ok(SuiteJob {
            squash,
            throttle,
            threads,
            level,
        })
    }

    fn execute(&self) -> Result<JsonValue, JobError> {
        let mut cfg = PipelineConfig::default();
        if let Some(l) = self.squash {
            cfg = cfg.with_squash(l);
        }
        if let Some(l) = self.throttle {
            cfg = cfg.with_throttle(l);
        }
        // Same projection split as `cmd_suite`: full-level artifacts need
        // the per-workload AVF decomposition from the complete run.
        let (rows, details): (Vec<_>, Vec<_>) = if self.level == TelemetryLevel::Full {
            run_suite_with(&cfg, self.threads, |_, run| {
                (run.summary(), artifact::workload_detail(&run))
            })
            .map_err(|e| JobError::internal(e.to_string()))?
            .into_iter()
            .unzip()
        } else {
            (
                run_suite_with(&cfg, self.threads, |_, run| run.summary())
                    .map_err(|e| JobError::internal(e.to_string()))?,
                Vec::new(),
            )
        };
        Ok(artifact::suite_artifact(&cfg, &rows, &details, self.level))
    }
}

impl EccGridJob {
    fn parse(body: &mut Body) -> Result<EccGridJob, JobError> {
        let workloads = body
            .string_array("workloads")?
            .ok_or_else(|| JobError::bad("ecc-grid job needs a 'workloads' array"))?;
        if workloads.is_empty() {
            return Err(JobError::bad("ecc-grid needs at least one benchmark name"));
        }
        if workloads.len() > 32 {
            return Err(JobError::bad("ecc-grid accepts at most 32 workloads"));
        }
        for name in &workloads {
            known_workload(name)?;
        }
        let probes = body.u32("probes")?.unwrap_or(400);
        if probes > 100_000 {
            return Err(JobError::bad(format!(
                "probes {probes} exceeds serving limit of 100000"
            )));
        }
        let seed = body.u64("seed")?.unwrap_or(0xECC);
        let level = parse_level_field(body)?;
        Ok(EccGridJob {
            workloads,
            probes,
            seed,
            level,
        })
    }

    fn execute(&self) -> Result<JsonValue, JobError> {
        let distribution = PatternDistribution::default();
        let mut workloads = Vec::new();
        for name in &self.workloads {
            let spec = spec_by_name(name)
                .ok_or_else(|| JobError::bad(format!("unknown benchmark '{name}'")))?;
            let campaign = Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 0,
                    seed: self.seed,
                    detection: DetectionModel::None,
                    ..CampaignConfig::default()
                },
            )
            .map_err(|e| JobError::internal(e.to_string()))?;
            let p_read = read_probability(&campaign, self.probes, self.seed);
            workloads.push((name.clone(), campaign.baseline_ipc(), p_read, self.probes));
        }
        Ok(artifact::ecc_grid_artifact(
            &distribution,
            &workloads,
            self.level,
        ))
    }
}

impl FuzzJob {
    fn parse(body: &mut Body) -> Result<FuzzJob, JobError> {
        let defaults = FuzzConfig::default();
        let seed = body.u64("seed")?.unwrap_or(defaults.seed);
        let iters = body.u64("iters")?.unwrap_or(defaults.iters);
        if iters > 10_000 {
            return Err(JobError::bad(format!(
                "iters {iters} exceeds serving limit of 10000"
            )));
        }
        let inject_every = body
            .u64("inject_every")?
            .unwrap_or(defaults.injection_every);
        let shrink = body.bool("shrink")?.unwrap_or(defaults.shrink);
        let mem_heavy = match body.string("mutate")?.as_deref() {
            None => false,
            Some("regions") => true,
            Some(other) => {
                return Err(JobError::bad(format!(
                    "unknown mutation mode '{other}' (use regions)"
                )))
            }
        };
        let level = parse_level_field(body)?;
        Ok(FuzzJob {
            seed,
            iters,
            inject_every,
            shrink,
            mem_heavy,
            level,
        })
    }

    fn execute(&self) -> JsonValue {
        let mut cfg = FuzzConfig {
            seed: self.seed,
            iters: self.iters,
            shrink: self.shrink,
            injection_every: self.inject_every,
            ..FuzzConfig::default()
        };
        if self.mem_heavy {
            cfg.program_spec = ses_workloads::FuzzProgramSpec::mem_heavy();
        }
        let report = run_fuzz(&cfg);
        // Field-for-field the `cmd_fuzz` artifact (failures are counted,
        // not written to disk — reproducers are a CLI affordance).
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "fuzz")
            .set("telemetry", self.level.label())
            .set("seed", cfg.seed)
            .set("iterations", report.iterations)
            .set("injection_checks", report.injection_checks)
            .set("total_committed", report.total_committed)
            .set("failures", report.failures.len() as u64);
        doc
    }
}

/// A prepared campaign plus the lock that serialises detailed runs on it.
pub struct CampaignSlot {
    run_lock: Mutex<()>,
    campaign: Campaign,
}

struct PrepEntry {
    slot: Arc<CampaignSlot>,
    stamp: u64,
}

/// Bounded cache of prepared campaigns (golden run + snapshots), shared
/// across jobs so concurrent queries against one workload/config pay the
/// golden emulation once.
pub struct SharedRuns {
    preps: Mutex<(HashMap<String, PrepEntry>, u64)>,
    capacity: usize,
}

impl Default for SharedRuns {
    fn default() -> Self {
        SharedRuns::new(16)
    }
}

impl SharedRuns {
    /// A cache holding at most `capacity` prepared campaigns.
    pub fn new(capacity: usize) -> SharedRuns {
        SharedRuns {
            preps: Mutex::new((HashMap::new(), 0)),
            capacity: capacity.max(1),
        }
    }

    /// Number of prepared campaigns currently held.
    pub fn len(&self) -> usize {
        self.preps.lock().unwrap().0.len()
    }

    /// Whether no campaign is currently held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn prepared(
        &self,
        key: &str,
        prepare: impl FnOnce() -> Result<Campaign, JobError>,
    ) -> Result<Arc<CampaignSlot>, JobError> {
        {
            let mut guard = self.preps.lock().unwrap();
            let (map, stamp) = &mut *guard;
            *stamp += 1;
            if let Some(entry) = map.get_mut(key) {
                entry.stamp = *stamp;
                return Ok(Arc::clone(&entry.slot));
            }
        }
        // Prepare outside the lock: golden emulation can take a while and
        // unrelated jobs must not stall behind it. A racing duplicate
        // prepare is deterministic, so last-write-wins is harmless.
        let campaign = prepare()?;
        let slot = Arc::new(CampaignSlot {
            run_lock: Mutex::new(()),
            campaign,
        });
        let mut guard = self.preps.lock().unwrap();
        let (map, stamp) = &mut *guard;
        *stamp += 1;
        while map.len() >= self.capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                }
                None => break,
            }
        }
        map.insert(
            key.to_string(),
            PrepEntry {
                slot: Arc::clone(&slot),
                stamp: *stamp,
            },
        );
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_job(kind: &str, body: &str) -> Result<JobSpec, JobError> {
        let doc = JsonValue::parse(body).map_err(|e| JobError::bad(e.to_string()))?;
        JobSpec::parse(kind, &doc)
    }

    #[test]
    fn campaign_defaults_mirror_inject() {
        let job = parse_job("campaign", r#"{"workload": "crafty"}"#).unwrap();
        assert_eq!(
            job.canonical(),
            "v1/campaign workload=crafty injections=300 seed=2026 model=parity latency=- \
             recovery=machine-check ecc=- pattern=- node=- env=- prune=false level=summary"
        );
        assert!(job.cacheable());
    }

    #[test]
    fn prune_flag_changes_the_cache_key() {
        let job = parse_job("campaign", r#"{"workload": "crafty", "prune": true}"#).unwrap();
        assert_eq!(
            job.canonical(),
            "v1/campaign workload=crafty injections=300 seed=2026 model=parity latency=- \
             recovery=machine-check ecc=- pattern=- node=- env=- prune=true level=summary"
        );
        let off = parse_job("campaign", r#"{"workload": "crafty"}"#).unwrap();
        assert_ne!(job.canonical(), off.canonical());
        // The prepared state differs too: pruning records fingerprints.
        let (JobSpec::Campaign(on), JobSpec::Campaign(off)) = (&job, &off) else {
            panic!("campaign jobs expected");
        };
        assert_ne!(on.prep_canonical(), off.prep_canonical());
    }

    #[test]
    fn recovery_flavour_defaults_mirror_campaign_cli() {
        let job = parse_job(
            "campaign",
            r#"{"workload": "crafty", "detect_latency": "fixed:8", "recovery": "idempotent"}"#,
        )
        .unwrap();
        assert_eq!(
            job.canonical(),
            "v1/campaign workload=crafty injections=500 seed=2026 model=parity \
             latency=fixed:8 recovery=idempotent ecc=- pattern=- node=- env=- prune=false \
             level=summary"
        );
    }

    #[test]
    fn ecc_flavour_defaults_mirror_campaign_cli() {
        let job = parse_job("campaign", r#"{"workload": "crafty", "ecc": "sec-ded"}"#).unwrap();
        assert_eq!(
            job.canonical(),
            "v1/campaign workload=crafty injections=1000 seed=2026 model=none latency=- \
             recovery=machine-check ecc=sec-ded pattern=- node=- env=- prune=false \
             level=summary"
        );
    }

    #[test]
    fn unknown_field_rejected() {
        let err = parse_job("campaign", r#"{"workload": "crafty", "bogus": 1}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn unknown_workload_rejected() {
        let err = parse_job("campaign", r#"{"workload": "not-a-bench"}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("not-a-bench"));
    }

    #[test]
    fn conflicting_flavours_rejected() {
        let err = parse_job(
            "campaign",
            r#"{"workload": "crafty", "recovery": "idempotent", "ecc": "sec"}"#,
        )
        .unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let a = parse_job("campaign", r#"{"workload": "crafty"}"#).unwrap();
        let b = parse_job("campaign", r#"{"workload": "crafty", "seed": 7}"#).unwrap();
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(job_key_hash(&a.canonical()), job_key_hash(&b.canonical()));
    }

    #[test]
    fn threads_excluded_from_canonical() {
        let a = parse_job("campaign", r#"{"workload": "crafty", "threads": 1}"#).unwrap();
        let b = parse_job("campaign", r#"{"workload": "crafty", "threads": 8}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn suite_and_grid_and_fuzz_canonicals() {
        let s = parse_job("suite", r#"{"squash": "l1"}"#).unwrap();
        assert_eq!(s.canonical(), "v1/suite squash=l1 throttle=- level=summary");
        let g = parse_job("ecc-grid", r#"{"workloads": ["crafty", "mcf"]}"#).unwrap();
        assert_eq!(
            g.canonical(),
            "v1/ecc-grid workloads=crafty,mcf probes=400 seed=3788 level=summary"
        );
        let f = parse_job("fuzz", r#"{"iters": 40}"#).unwrap();
        assert_eq!(
            f.canonical(),
            "v1/fuzz seed=1 iters=40 inject_every=16 shrink=true mem_heavy=false level=summary"
        );
    }

    #[test]
    fn full_level_is_not_cacheable() {
        let job = parse_job("campaign", r#"{"workload": "crafty", "level": "full"}"#).unwrap();
        assert!(!job.cacheable());
    }

    #[test]
    fn off_level_rejected() {
        let err = parse_job("campaign", r#"{"workload": "crafty", "level": "off"}"#).unwrap_err();
        assert_eq!(err.status, 400);
    }
}
