//! Differential oracle and program fuzzer.
//!
//! The repository carries two independent models of the SES-64 machine:
//! the functional emulator in `ses-arch` (architectural truth) and the
//! trace-driven timing engine in `ses-pipeline` (what the AVF and
//! fault-injection layers actually observe). Every result in the paper
//! reproduction rests on those two agreeing instruction-by-instruction,
//! yet nothing in the seed enforced that beyond aggregate counts.
//!
//! This crate closes the gap with a three-part harness:
//!
//! * [`check_program`] — the lockstep differential oracle. It runs one
//!   program through both models and diffs the committed architectural
//!   stream (instruction identity, predication outcome, trace coverage,
//!   commit count), cross-checks every committed record against the ISA
//!   metadata, and then verifies the AVF layer's own conservation laws
//!   (exact bit-cycle partition, DUE = SDC + false DUE, state fractions
//!   summing to one). Optionally it runs a small statistical
//!   fault-injection campaign and requires the estimate to agree with the
//!   analytic AVF within a binomial confidence interval.
//! * [`shrink`] — delta-debugging of failing programs down to minimal
//!   reproducers, preserving the divergence kind so a shrink can never
//!   wander onto an unrelated failure.
//! * [`run_fuzz`] — the seeded driver: generates random programs with
//!   [`ses_workloads::fuzz_program_with`], checks each one, and shrinks
//!   whatever fails. Fully deterministic for a given seed.
//!
//! The [`Mutation`] hook exists so tests can *prove* the oracle catches
//! real divergences: it corrupts the pipeline-side commit stream after
//! the fact, simulating a retirement bug without touching the engine.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod check;
mod driver;
mod shrink;

pub use check::{
    check_program, check_program_mutated, Divergence, DivergenceKind, InjectionCheck, Mutation,
    OracleConfig, OracleStats,
};
pub use driver::{run_fuzz, splitmix64, FuzzConfig, FuzzFailure, FuzzReport};
pub use shrink::{shrink, ShrinkOutcome};
