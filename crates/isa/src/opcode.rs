//! Opcode definitions and static properties.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The SES-64 opcodes.
///
/// The set is deliberately close to the instruction mix the paper's analysis
/// cares about: ordinary ALU work, compares that write predicates, loads and
/// stores, branches / calls / returns (wrong-path sources), the three
/// *neutral* instruction types (no-op, prefetch, branch hint), and `Out`,
/// the I/O commit point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// `dest = src1 + src2`
    Add = 0,
    /// `dest = src1 - src2`
    Sub = 1,
    /// `dest = src1 * src2` (wrapping)
    Mul = 2,
    /// `dest = src1 & src2`
    And = 3,
    /// `dest = src1 | src2`
    Or = 4,
    /// `dest = src1 ^ src2`
    Xor = 5,
    /// `dest = src1 << (src2 & 63)`
    Shl = 6,
    /// `dest = src1 >> (src2 & 63)` (logical)
    Shr = 7,
    /// `dest = src1 + imm`
    AddI = 8,
    /// `dest = imm` (sign-extended)
    MovI = 9,
    /// `pdest = (src1 == src2)`
    CmpEq = 10,
    /// `pdest = (src1 < src2)` (signed)
    CmpLt = 11,
    /// `dest = mem[src1 + imm]`
    Ld = 12,
    /// `mem[src1 + imm] = src2`
    St = 13,
    /// Software prefetch of `mem[src1 + imm]`; never faults, no dest.
    Prefetch = 14,
    /// Conditional branch: taken iff the qualifying predicate is true.
    /// Target is `pc + imm` (in bytes).
    Br = 15,
    /// Unconditional direct jump to `pc + imm`.
    Jmp = 16,
    /// Call: `dest = return address`, jump to `pc + imm`.
    Call = 17,
    /// Return: jump to the address in `src1`.
    Ret = 18,
    /// No operation.
    Nop = 19,
    /// Branch-prediction hint; architecturally a no-op.
    Hint = 20,
    /// Write `src1`'s value to the program's output stream (I/O commit).
    Out = 21,
    /// Stop the program.
    Halt = 22,
}

/// Coarse classification of an opcode, used by the issue logic, the ACE
/// analysis, and the workload synthesiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpcodeClass {
    /// Integer ALU operations (including immediate forms and compares).
    Alu,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Control transfer (branch, jump, call, return).
    Control,
    /// Neutral instructions: no-ops, prefetches, hints (paper §4.1).
    Neutral,
    /// I/O output.
    Io,
    /// Program termination.
    Halt,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 23] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::AddI,
        Opcode::MovI,
        Opcode::CmpEq,
        Opcode::CmpLt,
        Opcode::Ld,
        Opcode::St,
        Opcode::Prefetch,
        Opcode::Br,
        Opcode::Jmp,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Nop,
        Opcode::Hint,
        Opcode::Out,
        Opcode::Halt,
    ];

    /// The opcode's 6-bit encoding value.
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 6-bit opcode value.
    pub fn from_code(code: u8) -> Option<Opcode> {
        Self::ALL.get(code as usize).copied()
    }

    /// The coarse class this opcode belongs to.
    pub const fn class(self) -> OpcodeClass {
        use Opcode::*;
        match self {
            Add | Sub | Mul | And | Or | Xor | Shl | Shr | AddI | MovI | CmpEq | CmpLt => {
                OpcodeClass::Alu
            }
            Ld => OpcodeClass::Load,
            St => OpcodeClass::Store,
            Br | Jmp | Call | Ret => OpcodeClass::Control,
            Nop | Prefetch | Hint => OpcodeClass::Neutral,
            Out => OpcodeClass::Io,
            Halt => OpcodeClass::Halt,
        }
    }

    /// Whether this opcode is one of the paper's *neutral* instruction types
    /// (no-op, prefetch, branch hint): instructions whose non-opcode bits can
    /// never affect program outcome, targeted by the anti-π bit (§4.3.2).
    pub const fn is_neutral(self) -> bool {
        matches!(self.class(), OpcodeClass::Neutral)
    }

    /// Whether this opcode writes a general-purpose destination register.
    pub const fn writes_reg(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | Sub | Mul | And | Or | Xor | Shl | Shr | AddI | MovI | Ld | Call
        )
    }

    /// Whether this opcode writes a predicate register.
    pub const fn writes_pred(self) -> bool {
        matches!(self, Opcode::CmpEq | Opcode::CmpLt)
    }

    /// Whether this opcode reads `src1`.
    pub const fn reads_src1(self) -> bool {
        use Opcode::*;
        !matches!(self, MovI | Jmp | Call | Nop | Hint | Halt | Br)
    }

    /// Whether this opcode reads `src2`.
    pub const fn reads_src2(self) -> bool {
        use Opcode::*;
        matches!(self, Add | Sub | Mul | And | Or | Xor | Shl | Shr | CmpEq | CmpLt | St)
    }

    /// Whether this opcode uses the immediate field.
    pub const fn uses_imm(self) -> bool {
        use Opcode::*;
        matches!(self, AddI | MovI | Ld | St | Prefetch | Br | Jmp | Call)
    }

    /// Whether this opcode accesses data memory (loads, stores, prefetches).
    pub const fn touches_memory(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::St | Opcode::Prefetch)
    }

    /// Whether this opcode transfers control.
    pub const fn is_control(self) -> bool {
        matches!(self.class(), OpcodeClass::Control)
    }

    /// Whether this is a *conditional* control transfer (prediction matters).
    pub const fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Br)
    }

    /// The assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            AddI => "addi",
            MovI => "movi",
            CmpEq => "cmp.eq",
            CmpLt => "cmp.lt",
            Ld => "ld8",
            St => "st8",
            Prefetch => "lfetch",
            Br => "br",
            Jmp => "jmp",
            Call => "call",
            Ret => "ret",
            Nop => "nop",
            Hint => "hint",
            Out => "out",
            Halt => "halt",
        }
    }

    /// Nominal execute latency in cycles, excluding memory hierarchy time.
    ///
    /// Loads add the cache access latency on top of this issue-to-ready
    /// base; these values are in line with the Itanium®2-class core the
    /// paper models.
    pub const fn base_latency(self) -> u64 {
        use Opcode::*;
        match self {
            Mul => 4,
            Ld => 0, // memory latency dominates; added by the cache model
            _ => 1,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_all() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op), "{op:?}");
        }
        assert_eq!(Opcode::from_code(23), None);
        assert_eq!(Opcode::from_code(63), None);
    }

    #[test]
    fn codes_are_dense_and_unique() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.code() as usize, i);
        }
    }

    #[test]
    fn neutral_set_matches_paper() {
        // Paper §4.1: "No-ops, prefetches, and branch prediction hint
        // instructions ... do not affect correctness."
        let neutral: Vec<_> = Opcode::ALL.iter().filter(|o| o.is_neutral()).collect();
        assert_eq!(
            neutral,
            vec![&Opcode::Prefetch, &Opcode::Nop, &Opcode::Hint]
        );
    }

    #[test]
    fn register_write_properties() {
        assert!(Opcode::Add.writes_reg());
        assert!(Opcode::Ld.writes_reg());
        assert!(Opcode::Call.writes_reg(), "call writes the return address");
        assert!(!Opcode::St.writes_reg());
        assert!(!Opcode::CmpEq.writes_reg());
        assert!(Opcode::CmpEq.writes_pred());
        assert!(!Opcode::Add.writes_pred());
    }

    #[test]
    fn source_read_properties() {
        assert!(Opcode::St.reads_src1(), "store reads its base register");
        assert!(Opcode::St.reads_src2(), "store reads its data register");
        assert!(Opcode::Ret.reads_src1(), "ret reads the link register");
        assert!(!Opcode::MovI.reads_src1());
        assert!(!Opcode::Br.reads_src1(), "br is guarded by qp only");
        assert!(Opcode::Out.reads_src1());
        assert!(!Opcode::Out.reads_src2());
    }

    #[test]
    fn memory_and_control_properties() {
        assert!(Opcode::Ld.touches_memory());
        assert!(Opcode::Prefetch.touches_memory());
        assert!(!Opcode::Out.touches_memory());
        assert!(Opcode::Br.is_control() && Opcode::Br.is_conditional_branch());
        assert!(Opcode::Jmp.is_control() && !Opcode::Jmp.is_conditional_branch());
        assert!(Opcode::Ret.is_control());
    }

    #[test]
    fn latency_sanity() {
        assert_eq!(Opcode::Add.base_latency(), 1);
        assert_eq!(Opcode::Mul.base_latency(), 4);
        assert_eq!(Opcode::Ld.base_latency(), 0);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }
}
