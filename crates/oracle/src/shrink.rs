//! Delta-debugging of failing programs to minimal reproducers.
//!
//! The shrinker works on the static instruction list. Candidates are
//! accepted only when they still fail with the *same*
//! [`DivergenceKind`] as the original — a candidate whose broken branch
//! offsets crash the emulator, or that stops halting, fails with a
//! different kind and is rejected, so shrinking can never drift onto an
//! unrelated bug.

use ses_isa::{Instruction, Opcode, Program};

use crate::check::{check_program_mutated, DivergenceKind, Mutation, OracleConfig};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest reproducing program found.
    pub program: Program,
    /// Static instructions in the original.
    pub original_len: usize,
    /// Oracle evaluations spent.
    pub attempts: usize,
}

/// Caps the number of oracle evaluations one shrink may spend. Each
/// evaluation is a full emulate + timing run of a candidate, so this
/// bounds worst-case shrink time on pathological programs.
const MAX_ATTEMPTS: usize = 3000;

struct Shrinker<'a> {
    config: &'a OracleConfig,
    mutation: Option<Mutation>,
    kind: DivergenceKind,
    data: Vec<ses_isa::DataSegment>,
    attempts: usize,
}

impl Shrinker<'_> {
    fn rebuild(&self, code: Vec<Instruction>) -> Program {
        let mut p = Program::new(code);
        for seg in &self.data {
            p = p.with_data(seg.clone());
        }
        p
    }

    fn reproduces(&mut self, code: &[Instruction]) -> bool {
        if code.is_empty() || self.attempts >= MAX_ATTEMPTS {
            return false;
        }
        self.attempts += 1;
        let candidate = self.rebuild(code.to_vec());
        matches!(
            check_program_mutated(&candidate, self.config, self.mutation),
            Err(d) if d.kind == self.kind
        )
    }
}

/// Shrinks `program` to a minimal form that still fails the oracle with
/// divergence kind `kind` under the given configuration and mutation.
///
/// Three passes run to fixpoint: tail truncation (cut the suffix,
/// sealing the program with `halt`), delta-debugging chunk removal at
/// halving granularity, and `nop` substitution of the survivors. The
/// original program is returned unchanged if no smaller reproduction is
/// found (including when `program` itself no longer reproduces).
pub fn shrink(
    program: &Program,
    config: &OracleConfig,
    mutation: Option<Mutation>,
    kind: DivergenceKind,
) -> ShrinkOutcome {
    let mut sh = Shrinker {
        config,
        mutation,
        kind,
        data: program.data().to_vec(),
        attempts: 0,
    };
    let mut code: Vec<Instruction> = program.code().to_vec();
    let original_len = code.len();

    loop {
        let before = code.clone();
        truncate_pass(&mut sh, &mut code);
        removal_pass(&mut sh, &mut code);
        nop_pass(&mut sh, &mut code);
        if code == before || sh.attempts >= MAX_ATTEMPTS {
            break;
        }
    }

    ShrinkOutcome {
        program: sh.rebuild(code),
        original_len,
        attempts: sh.attempts,
    }
}

/// Keep only a prefix, sealed with `halt`. Tries aggressively short
/// prefixes first.
fn truncate_pass(sh: &mut Shrinker<'_>, code: &mut Vec<Instruction>) {
    let mut keep = 1usize;
    while keep < code.len() {
        let mut candidate: Vec<Instruction> = code[..keep].to_vec();
        if candidate.last().map(|i| i.op) != Some(Opcode::Halt) {
            candidate.push(Instruction::halt());
        }
        if candidate.len() < code.len() && sh.reproduces(&candidate) {
            *code = candidate;
            return;
        }
        keep = keep.saturating_mul(2);
    }
}

/// Classic ddmin-style chunk removal: delete windows of halving size
/// wherever the result still reproduces.
fn removal_pass(sh: &mut Shrinker<'_>, code: &mut Vec<Instruction>) {
    let mut chunk = (code.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < code.len() && code.len() > 1 {
            let end = (i + chunk).min(code.len());
            let mut candidate = code.clone();
            candidate.drain(i..end);
            if sh.reproduces(&candidate) {
                *code = candidate;
                // Re-test the same position: the next chunk slid into it.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
}

/// Replace surviving instructions with `nop` where the failure persists,
/// normalising the reproducer so only load-bearing instructions remain
/// distinctive.
fn nop_pass(sh: &mut Shrinker<'_>, code: &mut [Instruction]) {
    for i in 0..code.len() {
        let op = code[i].op;
        if op == Opcode::Nop || op == Opcode::Halt {
            continue;
        }
        let saved = code[i];
        code[i] = Instruction::nop();
        if !sh.reproduces(code) {
            code[i] = saved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_program_mutated, Mutation, OracleConfig};
    use ses_workloads::fuzz_program;

    #[test]
    fn shrinks_a_dropped_commit_to_a_handful_of_instructions() {
        let program = fuzz_program(2);
        let config = OracleConfig::default();
        let mutation = Some(Mutation::DropCommit(3));
        let original = check_program_mutated(&program, &config, mutation)
            .expect_err("mutation must fail the oracle");
        let out = shrink(&program, &config, mutation, original.kind);
        assert!(out.program.len() <= 20, "shrunk to {}", out.program.len());
        assert!(out.program.len() < out.original_len);
        // The shrunk program still reproduces the same kind.
        let d = check_program_mutated(&out.program, &config, mutation).unwrap_err();
        assert_eq!(d.kind, original.kind);
    }

    #[test]
    fn shrinks_a_region_live_in_clobber_to_a_handful_of_instructions() {
        use ses_avf::RegionFault;
        use ses_types::Reg;
        // Seed the live-in tracking bug: ignoring the accumulator merges
        // its self-increment clobber boundaries, so some region re-executes
        // a committed overwrite and the fixed-point check fails.
        let config = OracleConfig {
            region_fault: Some(RegionFault::IgnoreReg(Reg::new(2))),
            ..OracleConfig::default()
        };
        let program = fuzz_program(2);
        let original = check_program_mutated(&program, &config, None)
            .expect_err("the seeded region fault must fail the oracle");
        assert_eq!(original.kind, DivergenceKind::RecoveryDivergence);
        let out = shrink(&program, &config, None, original.kind);
        assert!(out.program.len() <= 20, "shrunk to {}", out.program.len());
        assert!(out.program.len() < out.original_len);
        let d = check_program_mutated(&out.program, &config, None).unwrap_err();
        assert_eq!(d.kind, DivergenceKind::RecoveryDivergence);
    }

    #[test]
    fn shrink_is_a_no_op_for_passing_programs() {
        let program = fuzz_program(5);
        let config = OracleConfig::default();
        let out = shrink(&program, &config, None, DivergenceKind::CommitCount);
        assert_eq!(out.program.len(), program.len());
    }
}
