; fuzz corpus entry 10: campaign seed 1, program seed 0x50f5647d2380309d
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 19    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 371    ; +0x0020
(p0) movi r11 = 1989    ; +0x0028
(p0) movi r12 = 563    ; +0x0030
(p0) movi r13 = 1884    ; +0x0038
(p0) movi r14 = 195    ; +0x0040
(p0) movi r15 = 75    ; +0x0048
(p0) movi r16 = 1625    ; +0x0050
(p0) movi r17 = 569    ; +0x0058
(p0) movi r18 = 1177    ; +0x0060
(p0) movi r19 = 797    ; +0x0068
(p0) st8 [r3 + 0] = r18    ; +0x0070
(p0) st8 [r3 + 8] = r10    ; +0x0078
(p0) st8 [r3 + 16] = r11    ; +0x0080
(p0) st8 [r3 + 24] = r14    ; +0x0088
(p0) movi r17 = 1486    ; +0x0090
(p0) ld8 r17 = [r3 + 8]    ; +0x0098
(p0) addi r6 = r16, -1843    ; +0x00a0
(p0) cmp.lt p2 = r6, r0    ; +0x00a8
(p2) br +16    ; +0x00b0
(p0) add r10 = r13, r4    ; +0x00b8
(p0) st8 [r3 + 1120] = r18    ; +0x00c0
(p0) movi r16 = -1210    ; +0x00c8
(p0) addi r10 = r16, -10    ; +0x00d0
(p0) addi r14 = r17, -26    ; +0x00d8
(p0) and r14 = r17, r18    ; +0x00e0
(p0) add r2 = r2, r17    ; +0x00e8
(p0) addi r1 = r1, -1    ; +0x00f0
(p0) cmp.lt p1 = r0, r1    ; +0x00f8
(p1) br -112    ; +0x0100
(p0) out r2    ; +0x0108
(p0) halt    ; +0x0110
(p0) movi r40 = 3    ; +0x0118
(p0) movi r41 = 4    ; +0x0120
(p0) movi r42 = 5    ; +0x0128
(p0) movi r43 = 6    ; +0x0130
(p0) add r2 = r2, r4    ; +0x0138
(p0) ret r31    ; +0x0140
