//! Campaign orchestration: random strikes, timing-model replay, functional
//! outcome classification.
//!
//! The injection loop is checkpointed: [`Campaign::prepare`] runs the
//! golden timing simulation once, capturing pipeline [`Snapshot`]s every
//! `checkpoint_interval` cycles, and each injection then resumes from the
//! latest snapshot at or before its strike cycle instead of re-simulating
//! from cycle 0.
//!
//! With [`CampaignConfig::prune`] the executor goes further: prepare also
//! records a golden fingerprint stream (a rolling hash of architectural
//! plus microarchitectural state per cycle), injections are grouped by
//! checkpoint window and forked off a single restored snapshot per window,
//! each faulted replay stops the moment its fingerprint rejoins the golden
//! stream at the same cycle, strikes on provably idle coordinates resolve
//! without simulating at all, and timing verdicts are memoized per
//! residency equivalence class (`(slot, allocation, phase, mask, ecc)`) in
//! a sharded map shared across worker threads. Verdicts are identical
//! either way — debug builds assert every pruned verdict against a full
//! legacy replay.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_arch::{Emulator, ExecutionTrace, RunOutcome};
use ses_isa::{bit_kind, encode, BitKind, Program};
use ses_pipeline::{
    DetectionModel, EccReadOutcome, FaultOutcome, FaultSpec, Occupant, Pipeline, PipelineConfig,
    PipelineResult, PrunedWindow, Snapshot, SuppressReason,
};
use ses_types::{Cycle, SesError};
use ses_workloads::{synthesize, WorkloadSpec};

use crate::outcome::Outcome;
use crate::recovery::{
    LatencyDistribution, RecoveryCounters, RecoveryDecision, RecoveryPolicy, RecoveryReport,
};
use crate::report::{CampaignPerf, CampaignReport, PruneReport};

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of single-bit faults to inject.
    pub injections: u32,
    /// Seed for strike-coordinate sampling.
    pub seed: u64,
    /// Detection model under test.
    pub detection: DetectionModel,
    /// Inject adjacent double-bit faults instead of single-bit ones
    /// (models one particle upsetting two neighbouring cells, the paper's
    /// §2 multi-bit caveat; physical interleaving defends against it).
    pub double_bit: bool,
    /// With `double_bit`, land the second strike this many cycles after
    /// the first (two independent particles accumulating in one entry —
    /// the failure mode periodic scrubbing defends against). `0` keeps the
    /// strikes simultaneous.
    pub temporal_gap: u64,
    /// Spacing in cycles between the pipeline snapshots captured during
    /// [`Campaign::prepare`]. Each injection resumes from the latest
    /// snapshot at or before its strike cycle, skipping the fault-free
    /// prefix of the run.
    ///
    /// * `None` (default) — automatic: `baseline_cycles / 64`, at least 1
    ///   (about 64 checkpoints over the run).
    /// * `Some(0)` — disable checkpointing; every injection simulates
    ///   from cycle 0.
    /// * `Some(k)` — capture a snapshot every `k` cycles.
    pub checkpoint_interval: Option<u64>,
    /// Timing-model configuration.
    pub pipeline: PipelineConfig,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Detection-signal latency model. `None` (default) keeps the paper's
    /// instantaneous machine check; with a distribution, each detected
    /// fault's signal is deferred by a deterministically sampled latency.
    pub detect_latency: Option<LatencyDistribution>,
    /// What a detected fault becomes: the legacy machine-check DUE, or an
    /// idempotent-region re-execution when the deferred signal still lands
    /// inside the fault's region.
    pub recovery: RecoveryPolicy,
    /// Enable the convergence-pruned, window-batched injection executor:
    /// prepare records a per-cycle golden fingerprint stream, injections
    /// are grouped by checkpoint window and forked off one restored
    /// snapshot per window, and each faulted replay stops as soon as its
    /// state fingerprint rejoins the golden stream. Off by default.
    /// Verdicts are identical either way (asserted per injection in debug
    /// builds); only wall-clock and the pruning telemetry stanza change.
    pub prune: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 1000,
            seed: 0xFAu64,
            detection: DetectionModel::None,
            double_bit: false,
            temporal_gap: 0,
            checkpoint_interval: None,
            pipeline: PipelineConfig::default(),
            threads: 0,
            detect_latency: None,
            recovery: RecoveryPolicy::MachineCheck,
            prune: false,
        }
    }
}

/// How a corrupted functional replay compared against the golden output.
/// A corrupted word equal to the golden word short-circuits to
/// `Identical` without emulating (the fast path); everything else runs
/// the functional emulator. The former `(trace position, corrupted
/// word)` replay cache is gone: first strikes always differ from the
/// golden word by construction, so its hit rate was exactly zero — the
/// pruned executor's [`VerdictMemo`] is the memoization layer that
/// actually hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Replay {
    Identical,
    Different,
    Crashed,
    Hang,
}

const MEMO_SHARDS: usize = 16;

/// Memoization key of one pruned-executor timing verdict. A fault's
/// timing outcome is fully determined by the residency it lands in
/// (`(slot, alloc)` is unique per golden run), the lifetime phase of its
/// strike cycle, its flip mask, and the precomputed ECC-domain verdict:
/// entries issue exactly once, so every strike cycle within one phase of
/// one residency presents the identical corrupted word at the identical
/// read point, and the `(outcome, end cycle)` pair is constant across
/// the whole equivalence class.
type MemoKey = (usize, u64, ses_avf::StrikePhase, u64, u8);

/// A memoized timing verdict: `(outcome, end cycle, fingerprint-pruned)`.
type MemoValue = (FaultOutcome, u64, bool);

/// Concurrent verdict memoization for the pruned executor, sharded to
/// keep lock contention off the injection workers' hot path.
struct VerdictMemo {
    shards: [Mutex<HashMap<MemoKey, MemoValue>>; MEMO_SHARDS],
}

impl VerdictMemo {
    fn new() -> Self {
        VerdictMemo {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, key: &MemoKey) -> &Mutex<HashMap<MemoKey, MemoValue>> {
        let phase = matches!(key.2, ses_avf::StrikePhase::Tail) as u64;
        let h = ((key.0 as u64)
            ^ key.1.rotate_left(17)
            ^ phase.rotate_left(33)
            ^ key.3.rotate_left(47)
            ^ u64::from(key.4))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize % MEMO_SHARDS]
    }

    fn get(&self, key: &MemoKey) -> Option<MemoValue> {
        self.shard(key).lock().expect("memo shard").get(key).copied()
    }

    fn insert(&self, key: MemoKey, value: MemoValue) {
        self.shard(&key).lock().expect("memo shard").insert(key, value);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard").len())
            .sum()
    }
}

/// How the pruned executor resolved one injection; folded in
/// injection-index order into the deterministic [`PruneReport`], so the
/// accounting is independent of thread scheduling.
#[derive(Debug, Clone, Copy)]
struct PruneMeta {
    /// Cycle the fault's checkpoint window starts at.
    window_start: u64,
    kind: PruneKind,
}

#[derive(Debug, Clone, Copy)]
enum PruneKind {
    /// The struck coordinate holds no residency: verdict without any
    /// simulation.
    Idle,
    /// Memo-eligible fault. Hits and misses record the identical shape
    /// (the memoized value is deterministic), so which thread computed an
    /// entry first never shows in the artifacts; the fold counts a hit
    /// for every occurrence of a key beyond the first in index order.
    Memo { key: MemoKey, end: u64, pruned: bool },
    /// The replay stopped early at the fingerprint convergence gate.
    Pruned { end: u64 },
    /// The replay ran to its natural end.
    Full { end: u64 },
}

/// Monotonic work counters shared by the injection workers.
#[derive(Default)]
struct PerfCounters {
    cycles_simulated: AtomicU64,
    cycles_skipped: AtomicU64,
    replays: AtomicU64,
    replay_fast_path: AtomicU64,
}

struct CounterValues {
    cycles_simulated: u64,
    cycles_skipped: u64,
    replays: u64,
    replay_fast_path: u64,
}

impl PerfCounters {
    fn values(&self) -> CounterValues {
        CounterValues {
            cycles_simulated: self.cycles_simulated.load(Ordering::Relaxed),
            cycles_skipped: self.cycles_skipped.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            replay_fast_path: self.replay_fast_path.load(Ordering::Relaxed),
        }
    }
}

/// A prepared fault-injection campaign over one workload.
pub struct Campaign {
    program: Program,
    golden: ExecutionTrace,
    /// Encoded golden instruction word per dynamic-trace index, for the
    /// replay fast path (corrupted word == golden word is trivially
    /// identical).
    golden_words: Vec<u64>,
    baseline_cycles: u64,
    /// Per-slot lifetime spans of the golden timing run (`ses-avf`'s
    /// canonical interval representation), kept for the adaptive
    /// sampler's lifetime and occupancy stratification.
    lifetime_spans: Vec<ses_avf::LifetimeSpan>,
    pipeline: Pipeline,
    snapshots: Vec<Snapshot>,
    checkpoint_interval: u64,
    replay_budget: u64,
    prepare_wall: Duration,
    /// Golden per-cycle fingerprint stream for the convergence gate;
    /// empty unless [`CampaignConfig::prune`] is enabled.
    golden_fps: Vec<u64>,
    /// Per-slot residency interval index for the pruned executor's idle
    /// shortcut and memo keying; built only when pruning is enabled.
    strike_index: Option<ses_avf::StrikeIndex>,
    memo: VerdictMemo,
    counters: PerfCounters,
    /// Idempotent-region partition of the golden trace, computed only when
    /// the recovery policy is [`RecoveryPolicy::Idempotent`].
    regions: Option<ses_avf::RegionMap>,
    recovery_counters: RecoveryCounters,
    config: CampaignConfig,
}

impl Campaign {
    /// Synthesises the workload, produces the golden trace, measures the
    /// fault-free cycle count (the strike-cycle sampling range), and
    /// captures the pipeline checkpoints injections resume from.
    ///
    /// # Errors
    ///
    /// Propagates functional-emulation failures of the golden run.
    pub fn prepare(spec: &WorkloadSpec, config: CampaignConfig) -> Result<Self, SesError> {
        Self::prepare_program(synthesize(spec), spec.target_dynamic * 4, config)
    }

    /// Prepares a campaign over an arbitrary program (the differential
    /// oracle injects into fuzz-generated programs this way). `max_instrs`
    /// bounds the golden functional run.
    ///
    /// # Errors
    ///
    /// Propagates functional-emulation failures of the golden run, and
    /// reports a budget error if the program does not halt in time.
    pub fn prepare_program(
        program: Program,
        max_instrs: u64,
        config: CampaignConfig,
    ) -> Result<Self, SesError> {
        let start = Instant::now();
        let golden = Emulator::new(&program).run(max_instrs)?;
        if !golden.halted() {
            return Err(SesError::BudgetExceeded {
                resource: "instructions",
                limit: max_instrs,
            });
        }
        let golden_words = golden.entries().iter().map(|d| encode(&d.instr)).collect();
        let pipeline = Pipeline::new(config.pipeline.clone());
        // Snapshots are captured under the campaign's detection model:
        // detection state (PET buffer, π-bit tracker) evolves even before
        // a strike, and a resumed run must carry the same pre-strike
        // detector state a from-scratch run would have.
        let (baseline, snapshots, checkpoint_interval, golden_fps) = if config.prune {
            // The pruned executor also needs the golden fingerprint
            // stream; fingerprints are pure observations, so the
            // fingerprinted golden run is otherwise identical to the
            // plain (or snapshotting) run.
            match config.checkpoint_interval {
                Some(0) => {
                    let (result, snaps, fps) = pipeline.run_golden_fingerprinted(
                        &program,
                        &golden,
                        DetectionModel::None,
                        0,
                    );
                    (result, snaps, 0, fps)
                }
                Some(k) => {
                    let (result, snaps, fps) =
                        pipeline.run_golden_fingerprinted(&program, &golden, config.detection, k);
                    (result, snaps, k, fps)
                }
                None => {
                    let plain = pipeline.run(&program, &golden);
                    let k = (plain.cycles / 64).max(1);
                    let (result, snaps, fps) =
                        pipeline.run_golden_fingerprinted(&program, &golden, config.detection, k);
                    (result, snaps, k, fps)
                }
            }
        } else {
            match config.checkpoint_interval {
                Some(0) => (pipeline.run(&program, &golden), Vec::new(), 0, Vec::new()),
                Some(k) => {
                    let (result, snaps) =
                        pipeline.run_with_snapshots(&program, &golden, config.detection, k);
                    (result, snaps, k, Vec::new())
                }
                None => {
                    let plain = pipeline.run(&program, &golden);
                    let k = (plain.cycles / 64).max(1);
                    let (result, snaps) =
                        pipeline.run_with_snapshots(&program, &golden, config.detection, k);
                    (result, snaps, k, Vec::new())
                }
            }
        };
        let replay_budget = (golden.len() as u64).saturating_mul(4).max(10_000);
        let regions = match config.recovery {
            RecoveryPolicy::Idempotent => Some(ses_avf::RegionMap::analyze(&golden)),
            RecoveryPolicy::MachineCheck => None,
        };
        let lifetime_spans = ses_avf::lifetime_spans(&baseline);
        let strike_index = config
            .prune
            .then(|| ses_avf::StrikeIndex::build(&lifetime_spans, config.pipeline.iq_entries));
        Ok(Campaign {
            baseline_cycles: baseline.cycles,
            lifetime_spans,
            program,
            golden,
            golden_words,
            pipeline,
            snapshots,
            checkpoint_interval,
            replay_budget,
            prepare_wall: start.elapsed(),
            golden_fps,
            strike_index,
            memo: VerdictMemo::new(),
            counters: PerfCounters::default(),
            regions,
            recovery_counters: RecoveryCounters::default(),
            config,
        })
    }

    /// The golden (fault-free) trace.
    pub fn golden(&self) -> &ExecutionTrace {
        &self.golden
    }

    /// Fault-free cycle count of the timing run.
    pub fn baseline_cycles(&self) -> u64 {
        self.baseline_cycles
    }

    /// Resolved snapshot spacing in cycles (0 when checkpointing is
    /// disabled).
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Number of pipeline checkpoints captured during prepare.
    pub fn checkpoints(&self) -> usize {
        self.snapshots.len()
    }

    /// Runs the campaign, parallelised across worker threads. Outcomes
    /// are aggregated in injection-index order regardless of thread
    /// scheduling, and the report carries [`CampaignPerf`] accounting.
    pub fn run(&self) -> CampaignReport {
        let (outcomes, perf, _, _) = self.timed_run(|_, o| o);
        let mut report = CampaignReport::from_outcomes(outcomes);
        report.set_perf(perf);
        report
    }

    /// Runs the campaign recording each fault's coordinates alongside its
    /// outcome, for positional analyses (which bits and which queue slots
    /// carry the vulnerability). Parallelised like [`Campaign::run`],
    /// with samples in deterministic injection-index order.
    pub fn run_detailed(&self) -> DetailedReport {
        let (samples, perf, recovery, prune) = self.timed_run(|i, o| (self.fault_for(i), o));
        DetailedReport {
            samples,
            perf,
            recovery,
            prune,
        }
    }

    /// Times the injection phase of a campaign execution and attributes
    /// the counter deltas it produced (performance always, recovery
    /// accounting when the recovery policy is active, pruning accounting
    /// when the pruned executor ran). `wrap` turns each injection's
    /// classified outcome into the caller's sample type.
    fn timed_run<T: Send>(
        &self,
        wrap: impl Fn(u32, Outcome) -> T + Sync,
    ) -> (Vec<T>, CampaignPerf, Option<RecoveryReport>, Option<PruneReport>) {
        let before = self.counters.values();
        let rec_before = self.recovery_counters.values();
        let start = Instant::now();
        let n = self.config.injections;
        let (results, prune) = if self.config.prune {
            let (results, report) = self.windowed_run(n, &wrap);
            (results, Some(report))
        } else {
            (self.parallel_map(n, |i| wrap(i, self.inject_one(i))), None)
        };
        let inject_wall = start.elapsed();
        let after = self.counters.values();
        let recovery = self.regions.as_ref().map(|regions| {
            let rec_after = self.recovery_counters.values();
            RecoveryReport {
                recovered: rec_after.recovered - rec_before.recovered,
                fallback_due: rec_after.fallback_due - rec_before.fallback_due,
                reexec_instructions: rec_after.reexec_instructions
                    - rec_before.reexec_instructions,
                latency_cycles: rec_after.latency_cycles - rec_before.latency_cycles,
                regions: regions.len() as u32,
                mean_region_len: regions.mean_len(),
            }
        });
        let perf = CampaignPerf {
            prepare_wall: self.prepare_wall,
            inject_wall,
            injections: self.config.injections,
            checkpoints: self.snapshots.len(),
            checkpoint_interval: self.checkpoint_interval,
            cycles_simulated: after.cycles_simulated - before.cycles_simulated,
            cycles_skipped: after.cycles_skipped - before.cycles_skipped,
            replays: after.replays - before.replays,
            replay_fast_path: after.replay_fast_path - before.replay_fast_path,
        };
        (results, perf, recovery, prune)
    }

    /// Worker-thread count for a job of `n` independent units.
    fn thread_count(&self, n: usize) -> usize {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        threads.min(n).max(1)
    }

    /// Maps `f` over `0..n` on the configured worker threads, returning
    /// results in index order.
    pub(crate) fn parallel_map<T, F>(&self, n: u32, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u32) -> T + Sync,
    {
        let threads = self.thread_count(n as usize);
        if threads == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicU32::new(0);
        let mut indexed: Vec<(u32, T)> = Vec::with_capacity(n as usize);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                }));
            }
            for h in handles {
                indexed.extend(h.join().expect("injection worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, v)| v).collect()
    }

    /// The window-batched pruned executor: group injections by checkpoint
    /// window, restore each window's snapshot at most once, fork the
    /// restored base per fault, and stop each replay at the fingerprint
    /// convergence gate. Results come back in injection-index order and
    /// the accounting fold runs in that order, so reports and artifacts
    /// are byte-identical across thread counts.
    fn windowed_run<T: Send>(
        &self,
        n: u32,
        wrap: &(impl Fn(u32, Outcome) -> T + Sync),
    ) -> (Vec<T>, PruneReport) {
        let faults: Vec<FaultSpec> = (0..n).map(|i| self.fault_for(i)).collect();
        // Window id = number of snapshots at or before the strike; id 0 is
        // the from-scratch window (no snapshot precedes the strike).
        let mut windows: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (i, f) in faults.iter().enumerate() {
            let w = self.snapshots.partition_point(|s| s.cycle() <= f.cycle);
            windows.entry(w).or_default().push(i as u32);
        }
        let threads = self.thread_count(n as usize);
        // Split oversized windows so a campaign with few checkpoints (or
        // none) still parallelises; chunking never affects results — each
        // chunk restores its own base, per-fault charges are pure, and the
        // fold below runs in injection-index order.
        let chunk = ((n as usize) / (threads * 4)).max(1);
        let groups: Vec<(Option<&Snapshot>, Vec<u32>)> = windows
            .into_iter()
            .flat_map(|(w, idxs)| {
                let snap = w.checked_sub(1).map(|j| &self.snapshots[j]);
                idxs.chunks(chunk)
                    .map(|c| (snap, c.to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let run_group = |(snap, idxs): &(Option<&Snapshot>, Vec<u32>),
                         sink: &mut Vec<(u32, T, PruneMeta)>| {
            // The window base is built lazily: a chunk whose faults all
            // resolve idle or from the memo never restores its snapshot.
            let mut window = None;
            for &i in idxs {
                let fault = faults[i as usize];
                let (fo, meta) = self.window_fault(*snap, &mut window, fault);
                sink.push((i, wrap(i, self.classify(&fault, fo)), meta));
            }
        };
        let mut indexed: Vec<(u32, T, PruneMeta)> = Vec::with_capacity(n as usize);
        let threads = threads.min(groups.len()).max(1);
        if threads == 1 {
            for g in &groups {
                run_group(g, &mut indexed);
            }
        } else {
            let next = AtomicU32::new(0);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    let next = &next;
                    let groups = &groups;
                    let run_group = &run_group;
                    handles.push(scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed) as usize;
                            if g >= groups.len() {
                                break;
                            }
                            run_group(&groups[g], &mut local);
                        }
                        local
                    }));
                }
                for h in handles {
                    indexed.extend(h.join().expect("injection worker panicked"));
                }
            });
        }
        indexed.sort_unstable_by_key(|&(i, _, _)| i);
        let report = self.fold_prune(n, indexed.iter().map(|(_, _, m)| *m));
        (indexed.into_iter().map(|(_, t, _)| t).collect(), report)
    }

    /// Resolves one fault inside its checkpoint window on the pruned
    /// path: idle shortcut, memo lookup, then a forked fingerprint-pruned
    /// replay. Counter charges are a pure function of the fault — memo
    /// hits and misses charge identically — so [`CampaignPerf`] stays
    /// schedule-independent.
    fn window_fault<'a>(
        &'a self,
        snap: Option<&'a Snapshot>,
        window: &mut Option<PrunedWindow<'a>>,
        fault: FaultSpec,
    ) -> (FaultOutcome, PruneMeta) {
        let window_start = snap.map_or(0, |s| s.cycle().as_u64());
        let index = self
            .strike_index
            .as_ref()
            .expect("pruned executor requires the strike index");
        let Some(span) = index.span_at(fault.slot, fault.cycle.as_u64()) else {
            // Nothing occupies the struck coordinate at the strike cycle:
            // the replay would simulate to the strike only to observe
            // SlotIdle and stop.
            self.counters
                .cycles_skipped
                .fetch_add(fault.cycle.as_u64() + 1, Ordering::Relaxed);
            self.cross_check(fault, FaultOutcome::SlotIdle);
            return (
                FaultOutcome::SlotIdle,
                PruneMeta {
                    window_start,
                    kind: PruneKind::Idle,
                },
            );
        };
        let key = self.memo_key(&fault, span);
        let (outcome, end, pruned) = match key.and_then(|k| self.memo.get(&k)) {
            Some(value) => value,
            None => {
                let w = window.get_or_insert_with(|| {
                    self.pipeline.pruned_window(
                        &self.program,
                        &self.golden,
                        snap,
                        self.config.detection,
                    )
                });
                let run = w.run_fault(fault, &self.golden_fps);
                if let Some(k) = key {
                    self.memo.insert(k, (run.outcome, run.end_cycle, run.pruned));
                }
                (run.outcome, run.end_cycle, run.pruned)
            }
        };
        self.counters
            .cycles_simulated
            .fetch_add(end.saturating_sub(window_start), Ordering::Relaxed);
        let skipped = if key.is_none() && pruned {
            window_start + self.baseline_cycles.saturating_sub(end)
        } else {
            window_start
        };
        self.counters.cycles_skipped.fetch_add(skipped, Ordering::Relaxed);
        self.cross_check(fault, outcome);
        let kind = match key {
            Some(k) => PruneKind::Memo {
                key: k,
                end,
                pruned,
            },
            None if pruned => PruneKind::Pruned { end },
            None => PruneKind::Full { end },
        };
        (outcome, PruneMeta { window_start, kind })
    }

    /// The memo equivalence class of `fault` within `span`, or `None`
    /// when memoization is unsound for it: scrubbing rewrites struck
    /// words mid-residency and temporal double strikes depend on the
    /// absolute strike cycle, so both always replay live.
    fn memo_key(&self, fault: &FaultSpec, span: &ses_avf::LifetimeSpan) -> Option<MemoKey> {
        if self.config.pipeline.scrub_period != 0 || fault.second_cycle.is_some() {
            return None;
        }
        let ecc = match fault.ecc {
            None => 0u8,
            Some(EccReadOutcome::Signal) => 1,
            Some(EccReadOutcome::Silent) => 2,
        };
        Some((
            fault.slot,
            span.alloc,
            span.phase_at(fault.cycle.as_u64()),
            fault.mask(),
            ecc,
        ))
    }

    /// Debug-build oracle for the pruned executor: every pruned verdict
    /// is checked against a full legacy replay of the same fault.
    /// Deliberately counter-free (it drives the pipeline directly instead
    /// of going through the counting resume path) so verification never
    /// perturbs the deterministic perf accounting.
    fn cross_check(&self, fault: FaultSpec, got: FaultOutcome) {
        if !cfg!(debug_assertions) {
            return;
        }
        let full = match self.snapshot_for(fault.cycle) {
            Some(snap) => self.pipeline.resume(&self.program, &self.golden, snap, Some(fault)),
            None => self.run_from_scratch(fault),
        };
        let want = full.fault.expect("fault run resolves an outcome");
        assert_eq!(
            want, got,
            "pruned verdict diverged from the full replay for {fault:?}"
        );
    }

    /// Folds per-injection pruning metadata (already in injection-index
    /// order) into the deterministic [`PruneReport`].
    fn fold_prune(&self, injections: u32, metas: impl Iterator<Item = PruneMeta>) -> PruneReport {
        let mut seen: HashSet<MemoKey> = HashSet::new();
        let mut report = PruneReport {
            injections,
            ..PruneReport::default()
        };
        for meta in metas {
            match meta.kind {
                PruneKind::Idle => {
                    report.idle_skips += 1;
                    report.cycles_saved +=
                        self.baseline_cycles.saturating_sub(meta.window_start);
                }
                PruneKind::Memo { key, end, pruned } => {
                    report.memo_eligible += 1;
                    if pruned {
                        report.fp_stops += 1;
                        report.cycles_saved += self.baseline_cycles.saturating_sub(end);
                    }
                    if seen.insert(key) {
                        report.replay_cycles += end.saturating_sub(meta.window_start);
                    } else {
                        report.memo_hits += 1;
                        report.cycles_saved += end.saturating_sub(meta.window_start);
                    }
                }
                PruneKind::Pruned { end } => {
                    report.fp_stops += 1;
                    report.replay_cycles += end.saturating_sub(meta.window_start);
                    report.cycles_saved += self.baseline_cycles.saturating_sub(end);
                }
                PruneKind::Full { end } => {
                    report.replay_cycles += end.saturating_sub(meta.window_start);
                }
            }
        }
        report
    }

    /// The deterministic fault coordinates for injection `i`.
    pub fn fault_for(&self, i: u32) -> FaultSpec {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (i as u64).wrapping_mul(0x9E37));
        let cycle = Cycle::new(rng.gen_range(0..self.baseline_cycles.max(1)));
        let slot = rng.gen_range(0..self.config.pipeline.iq_entries);
        let bit = rng.gen_range(0..64);
        if self.config.double_bit {
            FaultSpec::adjacent_double(cycle, slot, bit)
        } else {
            FaultSpec::single(cycle, slot, bit)
        }
    }

    /// Injects the `i`-th fault (deterministic in `seed` and `i`).
    pub fn inject_one(&self, i: u32) -> Outcome {
        let fault = self.fault_for(i);
        // In debug/test builds, periodically cross-check a resumed run
        // against a from-scratch run (the checkpoint determinism guard).
        let verify = cfg!(debug_assertions) && i.is_multiple_of(8);
        self.classify(&fault, self.fault_outcome(fault, verify))
    }

    /// Injects a caller-chosen fault instead of the seeded sequence,
    /// classified exactly like [`Campaign::inject_one`].
    pub fn inject_spec(&self, fault: FaultSpec) -> Outcome {
        self.classify(&fault, self.fault_outcome(fault, cfg!(debug_assertions)))
    }

    /// Like [`Campaign::inject_spec`] but without the debug-build
    /// resume-vs-scratch cross-check, for high-volume callers (the
    /// adaptive scheduler's exhaustive strata, property tests) that
    /// verify a deterministic subsample themselves.
    pub fn inject_spec_quiet(&self, fault: FaultSpec) -> Outcome {
        self.classify(&fault, self.fault_outcome(fault, false))
    }

    /// Fault-free IPC of the golden timing run (committed instructions
    /// over baseline cycles), the IPC the reliability model pairs with a
    /// campaign-estimated AVF.
    pub fn baseline_ipc(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            self.golden.len() as f64 / self.baseline_cycles as f64
        }
    }

    /// The idempotent-region partition of the golden trace, present when
    /// the recovery policy is [`RecoveryPolicy::Idempotent`].
    pub fn regions(&self) -> Option<&ses_avf::RegionMap> {
        self.regions.as_ref()
    }

    /// Cumulative recovery accounting since prepare, present when the
    /// recovery policy is active. [`DetailedReport::recovery`] carries the
    /// per-execution delta instead.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        let regions = self.regions.as_ref()?;
        let v = self.recovery_counters.values();
        Some(RecoveryReport {
            recovered: v.recovered,
            fallback_due: v.fallback_due,
            reexec_instructions: v.reexec_instructions,
            latency_cycles: v.latency_cycles,
            regions: regions.len() as u32,
            mean_region_len: regions.mean_len(),
        })
    }

    /// The detection latency (in cycles) the configured distribution
    /// assigns to `fault`, a pure function of the campaign seed and the
    /// fault coordinates so results are schedule-independent. Zero when no
    /// latency model is configured (the paper's instantaneous detector).
    pub fn latency_for(&self, fault: &FaultSpec) -> u64 {
        match &self.config.detect_latency {
            None => 0,
            Some(dist) => dist.sample(latency_seed(self.config.seed, fault)),
        }
    }

    /// How the recovery policy resolves a *detected* fault on `occupant`,
    /// or `None` when the policy is [`RecoveryPolicy::MachineCheck`].
    ///
    /// The deferred detection signal lands `latency` cycles after the
    /// corrupted word is read, i.e. `ceil(latency × IPC)` committed
    /// instructions downstream. If that signal position is still inside
    /// the idempotent region containing the fault, the machine rewinds to
    /// the region entry and re-executes the committed prefix (`signal −
    /// region start` instructions, the charged IPC loss); the trailing
    /// live-in clobber that closes a region sits at `end − 1` and has not
    /// committed while the signal is in-region, so the replayed window
    /// never includes it. A signal that escapes the region — or outlives
    /// the trace — falls back to the machine-check DUE. Wrong-path
    /// corruptions recover by the flush that discards them; their charge
    /// is the latency's worth of committed work.
    pub fn recovery_decision(
        &self,
        fault: &FaultSpec,
        occupant: Occupant,
    ) -> Option<RecoveryDecision> {
        let regions = self.regions.as_ref()?;
        let latency_cycles = self.latency_for(fault);
        let delay_instructions = (latency_cycles as f64 * self.baseline_ipc()).ceil() as u64;
        match occupant {
            Occupant::WrongPath => Some(RecoveryDecision {
                latency_cycles,
                delay_instructions,
                fault_index: None,
                region: None,
                recovered: true,
                reexec_instructions: delay_instructions,
            }),
            Occupant::CorrectPath { trace_idx } => {
                let signal = trace_idx + delay_instructions;
                let at_fault = regions.region_of(trace_idx);
                let at_signal = regions.region_of(signal);
                let region = at_fault.map(|i| {
                    let r = &regions.regions()[i];
                    (r.start, r.end)
                });
                let recovered = at_fault.is_some() && at_fault == at_signal;
                let reexec_instructions = if recovered {
                    signal - region.expect("recovered fault has a region").0
                } else {
                    0
                };
                Some(RecoveryDecision {
                    latency_cycles,
                    delay_instructions,
                    fault_index: Some(trace_idx),
                    region,
                    recovered,
                    reexec_instructions,
                })
            }
        }
    }

    /// The golden run's queue-occupancy intervals (`(alloc, dealloc)`
    /// half-open cycle ranges), the lifetime data occupancy
    /// stratification buckets cycle windows by.
    pub fn residency_intervals(&self) -> Vec<(u64, u64)> {
        self.lifetime_spans.iter().map(|s| s.occupancy()).collect()
    }

    /// The golden run's per-slot lifetime spans — the data the adaptive
    /// sampler splits into live and Ex-ACE-tail strata and uses to mask
    /// idle coordinates.
    pub fn lifetime_spans(&self) -> &[ses_avf::LifetimeSpan] {
        &self.lifetime_spans
    }

    /// The queue capacity of the configured machine.
    pub fn iq_entries(&self) -> usize {
        self.config.pipeline.iq_entries
    }

    /// Runs seeded uniform injections in deterministic batches until the
    /// 95 % CI of the chosen metric is at or below `target_halfwidth`
    /// (evaluated at batch boundaries, after at least `min` trials) or
    /// `max` injections have been spent. Returns the measured
    /// [`UniformRun`]; the trials-to-target comparison against the
    /// adaptive scheduler reads its `trials`.
    pub fn run_uniform_to_target(
        &self,
        target_halfwidth: f64,
        metric: crate::adaptive::MetricKind,
        min: u32,
        max: u32,
    ) -> UniformRun {
        let mut n = 0u32;
        let mut events = 0u64;
        while n < max {
            let batch = 256.min(max - n);
            let start = n;
            let outcomes = self.parallel_map(batch, |i| self.inject_one(start + i));
            events += outcomes.iter().filter(|&&o| metric.is_event(o)).count() as u64;
            n += batch;
            let p = f64::from(events as u32) / f64::from(n);
            if n >= min && ses_metrics::binomial_ci95(p, u64::from(n)) <= target_halfwidth {
                break;
            }
        }
        let proportion = if n == 0 { 0.0 } else { events as f64 / f64::from(n) };
        UniformRun {
            trials: n,
            events,
            proportion,
            halfwidth: ses_metrics::binomial_ci95(proportion, u64::from(n)),
        }
    }

    /// Runs the timing model for one fault, resuming from the latest
    /// checkpoint at or before the strike when one exists. With
    /// [`CampaignConfig::prune`], single faults from spec-driven callers
    /// (the adaptive scheduler, the oracles) take the pruned path too,
    /// each building its own one-fault window; the batch executor uses
    /// [`Campaign::windowed_run`] instead.
    fn fault_outcome(&self, fault: FaultSpec, verify: bool) -> FaultOutcome {
        if self.config.prune {
            // The pruned path cross-checks every injection in debug
            // builds, subsuming `verify`'s sampled resume-vs-scratch
            // guard.
            let mut window = None;
            return self
                .window_fault(self.snapshot_for(fault.cycle), &mut window, fault)
                .0;
        }
        let result = match self.snapshot_for(fault.cycle) {
            Some(snap) => {
                let resumed = self.pipeline.resume(&self.program, &self.golden, snap, Some(fault));
                self.counters
                    .cycles_skipped
                    .fetch_add(snap.cycle().as_u64(), Ordering::Relaxed);
                self.counters.cycles_simulated.fetch_add(
                    resumed.cycles.saturating_sub(snap.cycle().as_u64()),
                    Ordering::Relaxed,
                );
                if verify {
                    let scratch = self.run_from_scratch(fault);
                    assert_eq!(
                        resumed, scratch,
                        "checkpoint resume diverged from a from-scratch run for {fault:?}"
                    );
                }
                resumed
            }
            None => {
                let result = self.run_from_scratch(fault);
                self.counters
                    .cycles_simulated
                    .fetch_add(result.cycles, Ordering::Relaxed);
                result
            }
        };
        result.fault.expect("fault run resolves an outcome")
    }

    fn run_from_scratch(&self, fault: FaultSpec) -> PipelineResult {
        self.pipeline
            .run_with_fault(&self.program, &self.golden, Some(fault), self.config.detection)
    }

    /// The latest snapshot taken at or before `strike`, if any.
    fn snapshot_for(&self, strike: Cycle) -> Option<&Snapshot> {
        let idx = self.snapshots.partition_point(|s| s.cycle() <= strike);
        idx.checked_sub(1).map(|i| &self.snapshots[i])
    }

    fn classify(&self, fault: &FaultSpec, outcome: FaultOutcome) -> Outcome {
        match outcome {
            FaultOutcome::SlotIdle | FaultOutcome::NeverRead { .. } => Outcome::Benign,
            FaultOutcome::CorruptIssued { corruption } => match corruption.occupant {
                Occupant::WrongPath => Outcome::Benign,
                Occupant::CorrectPath { trace_idx } => {
                    match self.replay(trace_idx, corruption.corrupted_word) {
                        Replay::Identical => Outcome::Benign,
                        Replay::Different | Replay::Crashed => Outcome::Sdc,
                        Replay::Hang => Outcome::Hang,
                    }
                }
            },
            FaultOutcome::Signalled { corruption, .. } => {
                if let Some(decision) = self.recovery_decision(fault, corruption.occupant) {
                    self.recovery_counters.record(&decision);
                    if decision.recovered {
                        return Outcome::Recovered;
                    }
                    // The deferred signal escaped the fault's region:
                    // fall back to the machine-check DUE below.
                }
                match corruption.occupant {
                    // A wrong-path corruption can never affect output.
                    Occupant::WrongPath => Outcome::FalseDue,
                    Occupant::CorrectPath { trace_idx } => {
                        match self.replay(trace_idx, corruption.corrupted_word) {
                            Replay::Identical => Outcome::FalseDue,
                            Replay::Different | Replay::Crashed | Replay::Hang => Outcome::TrueDue,
                        }
                    }
                }
            }
            FaultOutcome::Suppressed { reason, corruption } => match (reason, corruption.occupant)
            {
                // Discarded before commit: architecturally clean.
                (SuppressReason::WrongPath, _) | (SuppressReason::Squashed, _) => {
                    Outcome::SuppressedSafe
                }
                (_, Occupant::WrongPath) => Outcome::SuppressedSafe,
                (_, Occupant::CorrectPath { trace_idx }) => {
                    match self.replay(trace_idx, corruption.corrupted_word) {
                        Replay::Identical => Outcome::SuppressedSafe,
                        Replay::Different | Replay::Crashed | Replay::Hang => {
                            Outcome::SuppressedSdc
                        }
                    }
                }
            },
        }
    }

    /// Re-runs the functional emulator with the corrupted word substituted
    /// at the given dynamic position and compares outputs. A corrupted
    /// word equal to the golden word short-circuits to `Identical`
    /// without emulating at all.
    fn replay(&self, trace_idx: u64, corrupted_word: u64) -> Replay {
        self.counters.replays.fetch_add(1, Ordering::Relaxed);
        if self.golden_words.get(trace_idx as usize) == Some(&corrupted_word) {
            self.counters.replay_fast_path.fetch_add(1, Ordering::Relaxed);
            return Replay::Identical;
        }
        match Emulator::new(&self.program).run_with_override(
            trace_idx,
            corrupted_word,
            self.replay_budget,
        ) {
            RunOutcome::Completed { output } => {
                if output == self.golden.output() {
                    Replay::Identical
                } else {
                    Replay::Different
                }
            }
            RunOutcome::Crashed { .. } => Replay::Crashed,
            RunOutcome::TimedOut => Replay::Hang,
        }
    }
}

/// Mixes the campaign seed with one fault's strike coordinates into the
/// latency-sampling seed (a splitmix64-style finalizer, so neighbouring
/// coordinates get decorrelated latencies).
fn latency_seed(seed: u64, fault: &FaultSpec) -> u64 {
    let mut x = seed
        ^ fault.cycle.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (fault.slot as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ u64::from(fault.bit).wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Result of a uniform run-to-target-CI campaign
/// ([`Campaign::run_uniform_to_target`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRun {
    /// Injections spent.
    pub trials: u32,
    /// Injections that observed the metric's event.
    pub events: u64,
    /// Observed event proportion.
    pub proportion: f64,
    /// Achieved 95 % half-width.
    pub halfwidth: f64,
}

/// Campaign results with per-sample fault coordinates.
#[derive(Debug, Clone)]
pub struct DetailedReport {
    samples: Vec<(FaultSpec, Outcome)>,
    perf: CampaignPerf,
    recovery: Option<RecoveryReport>,
    prune: Option<PruneReport>,
}

impl DetailedReport {
    /// All `(fault, outcome)` samples.
    pub fn samples(&self) -> &[(FaultSpec, Outcome)] {
        &self.samples
    }

    /// Performance accounting for the run that produced these samples.
    pub fn perf(&self) -> CampaignPerf {
        self.perf
    }

    /// Recovery accounting for this execution, present only when the
    /// campaign ran with [`RecoveryPolicy::Idempotent`].
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Convergence-pruning accounting for this execution, present only
    /// when the campaign ran with [`CampaignConfig::prune`] enabled.
    pub fn prune(&self) -> Option<&PruneReport> {
        self.prune.as_ref()
    }

    /// Collapses into a plain [`CampaignReport`].
    pub fn summary(&self) -> CampaignReport {
        let mut report = CampaignReport::from_outcomes(self.samples.iter().map(|(_, o)| *o));
        report.set_perf(self.perf);
        report
    }

    /// Empirical failure probability per instruction-word field kind: for
    /// each [`BitKind`], the fraction of strikes on bits of that kind that
    /// produced a failure ([`Outcome::is_failure`]). Under
    /// [`DetectionModel::None`] this is the statistical counterpart of
    /// `AvfAnalysis::avf_by_bit_kind`.
    pub fn failure_rate_by_bit_kind(&self) -> Vec<(BitKind, f64, u32)> {
        BitKind::ALL
            .iter()
            .map(|&kind| {
                let mut total = 0u32;
                let mut failures = 0u32;
                for (f, o) in &self.samples {
                    if bit_kind(f.bit as usize) == kind {
                        total += 1;
                        if o.is_failure() {
                            failures += 1;
                        }
                    }
                }
                let rate = if total == 0 {
                    0.0
                } else {
                    failures as f64 / total as f64
                };
                (kind, rate, total)
            })
            .collect()
    }

    /// Empirical failure probability by queue-slot quarter (0 = slots
    /// 0–15, … for a 64-entry queue): do low slots (filled first) carry
    /// more risk?
    pub fn failure_rate_by_slot_quarter(&self, iq_entries: usize) -> [f64; 4] {
        let mut totals = [0u32; 4];
        let mut fails = [0u32; 4];
        let quarter = (iq_entries / 4).max(1);
        for (f, o) in &self.samples {
            let q = (f.slot / quarter).min(3);
            totals[q] += 1;
            if o.is_failure() {
                fails[q] += 1;
            }
        }
        let mut out = [0.0; 4];
        for q in 0..4 {
            if totals[q] > 0 {
                out[q] = fails[q] as f64 / totals[q] as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_pipeline::{PiScope, TrackingConfig};

    fn quick_campaign(detection: DetectionModel, injections: u32) -> CampaignReport {
        let spec = WorkloadSpec::quick("campaign-test", 21);
        let config = CampaignConfig {
            injections,
            seed: 99,
            detection,
            threads: 2,
            ..CampaignConfig::default()
        };
        Campaign::prepare(&spec, config).unwrap().run()
    }

    #[test]
    fn unprotected_campaign_yields_benign_and_sdc_only() {
        let report = quick_campaign(DetectionModel::None, 60);
        assert_eq!(report.total(), 60);
        assert_eq!(report.count(Outcome::FalseDue), 0, "nothing to detect");
        assert_eq!(report.count(Outcome::TrueDue), 0);
        assert!(report.count(Outcome::Benign) > 0);
    }

    #[test]
    fn parity_campaign_yields_due_not_sdc() {
        let report = quick_campaign(DetectionModel::Parity { tracking: None }, 60);
        assert_eq!(
            report.count(Outcome::Sdc),
            0,
            "parity converts SDC into DUE"
        );
        assert!(
            report.count(Outcome::FalseDue) + report.count(Outcome::TrueDue) > 0,
            "some strikes must be detected"
        );
    }

    #[test]
    fn tracking_campaign_suppresses_some_errors() {
        let tracking = TrackingConfig {
            scope: PiScope::StoreCommit,
            anti_pi: true,
            pet_entries: None,
            mem_granule: 8,
        };
        let with = quick_campaign(
            DetectionModel::Parity {
                tracking: Some(tracking),
            },
            80,
        );
        let without = quick_campaign(DetectionModel::Parity { tracking: None }, 80);
        let due_with = with.count(Outcome::FalseDue) + with.count(Outcome::TrueDue);
        let due_without = without.count(Outcome::FalseDue) + without.count(Outcome::TrueDue);
        assert!(
            due_with < due_without,
            "tracking must reduce DUE events: {due_with} vs {due_without}"
        );
        assert!(with.count(Outcome::SuppressedSafe) > 0);
    }

    #[test]
    fn double_bit_faults_defeat_single_parity_but_not_interleaving() {
        let spec = WorkloadSpec::quick("multibit", 31);
        let run = |detection, double_bit| {
            Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 80,
                    seed: 5,
                    detection,
                    double_bit,
                    threads: 2,
                    ..CampaignConfig::default()
                },
            )
            .unwrap()
            .run()
        };
        // Single-bit faults: parity converts everything detected to DUE.
        let single = run(DetectionModel::Parity { tracking: None }, false);
        assert_eq!(single.count(Outcome::Sdc), 0);
        // Adjacent double-bit faults: plain parity is blind to them, so
        // silent corruption reappears...
        let double = run(DetectionModel::Parity { tracking: None }, true);
        assert!(
            double.count(Outcome::Sdc) > 0,
            "even flips must escape one parity bit"
        );
        assert_eq!(
            double.count(Outcome::FalseDue) + double.count(Outcome::TrueDue),
            0
        );
        // ...and two interleaved parity domains catch them again (the
        // paper's physical-interleaving defence).
        let interleaved = run(
            DetectionModel::InterleavedParity {
                domains: 2,
                tracking: None,
            },
            true,
        );
        assert_eq!(interleaved.count(Outcome::Sdc), 0);
        assert!(
            interleaved.count(Outcome::FalseDue) + interleaved.count(Outcome::TrueDue) > 0
        );
    }

    #[test]
    fn scrubbing_restores_fail_stop_under_temporal_doubles() {
        let spec = WorkloadSpec::quick("scrub", 77);
        let run = |scrub_period: u64| {
            let pipeline = PipelineConfig {
                scrub_period,
                ..PipelineConfig::default()
            };
            Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 80,
                    seed: 9,
                    detection: DetectionModel::Parity { tracking: None },
                    double_bit: true,
                    temporal_gap: 30,
                    threads: 2,
                    pipeline,
                    ..CampaignConfig::default()
                },
            )
            .unwrap()
            .run()
        };
        let unscrubbed = run(0);
        let scrubbed = run(8);
        // Without scrubbing some accumulated doubles slip through parity;
        // with an 8-cycle scrub the window is too small.
        assert!(
            scrubbed.count(Outcome::Sdc) + scrubbed.count(Outcome::Hang)
                <= unscrubbed.count(Outcome::Sdc) + unscrubbed.count(Outcome::Hang),
            "scrubbing must not increase silent corruption"
        );
        assert!(
            scrubbed.due_avf_estimate() >= unscrubbed.due_avf_estimate(),
            "scrubbing converts escapes into detected errors"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let spec = WorkloadSpec::quick("det-test", 5);
        let config = CampaignConfig {
            injections: 10,
            seed: 7,
            detection: DetectionModel::None,
            threads: 1,
            ..CampaignConfig::default()
        };
        let c = Campaign::prepare(&spec, config).unwrap();
        let a: Vec<Outcome> = (0..10).map(|i| c.inject_one(i)).collect();
        let b: Vec<Outcome> = (0..10).map(|i| c.inject_one(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpointing_does_not_change_outcomes() {
        let spec = WorkloadSpec::quick("ckpt-unit", 13);
        let base = CampaignConfig {
            injections: 30,
            seed: 11,
            detection: DetectionModel::Parity { tracking: None },
            threads: 2,
            ..CampaignConfig::default()
        };
        let scratch = Campaign::prepare(
            &spec,
            CampaignConfig {
                checkpoint_interval: Some(0),
                ..base.clone()
            },
        )
        .unwrap();
        let ckpt = Campaign::prepare(&spec, base).unwrap();
        assert_eq!(ckpt.checkpoint_interval(), (ckpt.baseline_cycles() / 64).max(1));
        assert!(ckpt.checkpoints() > 0);
        assert_eq!(scratch.checkpoints(), 0);
        let scratch_report = scratch.run();
        let ckpt_report = ckpt.run();
        assert_eq!(scratch_report, ckpt_report);
        assert_eq!(scratch_report.perf().cycles_skipped, 0);
        assert!(ckpt_report.perf().cycles_skipped > 0);
    }

    #[test]
    fn zero_latency_recovery_converts_every_due() {
        let spec = WorkloadSpec::quick("recovery-zero", 17);
        let base = CampaignConfig {
            injections: 120,
            seed: 23,
            detection: DetectionModel::Parity { tracking: None },
            threads: 2,
            ..CampaignConfig::default()
        };
        let legacy = Campaign::prepare(&spec, base.clone()).unwrap().run();
        let recovering = Campaign::prepare(
            &spec,
            CampaignConfig {
                detect_latency: Some(LatencyDistribution::Fixed(0)),
                recovery: RecoveryPolicy::Idempotent,
                ..base
            },
        )
        .unwrap();
        let detailed = recovering.run_detailed();
        let report = detailed.summary();
        let baseline_due = legacy.count(Outcome::FalseDue) + legacy.count(Outcome::TrueDue);
        assert!(baseline_due > 0, "campaign must detect something");
        assert_eq!(
            report.count(Outcome::Recovered),
            baseline_due,
            "a zero-latency signal always lands in the fault's own region"
        );
        assert_eq!(report.count(Outcome::FalseDue), 0);
        assert_eq!(report.count(Outcome::TrueDue), 0);
        let rec = detailed.recovery().expect("recovery stanza present");
        assert_eq!(rec.recovered, baseline_due);
        assert_eq!(rec.fallback_due, 0);
        assert!(rec.regions > 0);
        assert!(rec.mean_region_len > 0.0);
    }

    #[test]
    fn recovered_plus_fallback_equals_baseline_due_at_any_latency() {
        let spec = WorkloadSpec::quick("recovery-consv", 41);
        let base = CampaignConfig {
            injections: 150,
            seed: 31,
            detection: DetectionModel::Parity { tracking: None },
            threads: 2,
            ..CampaignConfig::default()
        };
        let legacy = Campaign::prepare(&spec, base.clone()).unwrap().run();
        let baseline_due = legacy.count(Outcome::FalseDue) + legacy.count(Outcome::TrueDue);
        for latency in [LatencyDistribution::Fixed(40), LatencyDistribution::Geometric { mean: 25.0 }] {
            let detailed = Campaign::prepare(
                &spec,
                CampaignConfig {
                    detect_latency: Some(latency),
                    recovery: RecoveryPolicy::Idempotent,
                    ..base.clone()
                },
            )
            .unwrap()
            .run_detailed();
            let report = detailed.summary();
            let due = report.count(Outcome::FalseDue) + report.count(Outcome::TrueDue);
            assert_eq!(
                report.count(Outcome::Recovered) + due,
                baseline_due,
                "recovery only reroutes detected faults, it never invents or loses them"
            );
            let rec = detailed.recovery().unwrap();
            assert_eq!(rec.recovered, report.count(Outcome::Recovered));
            assert_eq!(rec.fallback_due, due);
        }
    }

    #[test]
    fn recovery_decisions_are_monotone_in_fixed_latency() {
        let spec = WorkloadSpec::quick("recovery-mono", 9);
        let prepare = |latency: u64| {
            Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 60,
                    seed: 13,
                    detection: DetectionModel::Parity { tracking: None },
                    detect_latency: Some(LatencyDistribution::Fixed(latency)),
                    recovery: RecoveryPolicy::Idempotent,
                    threads: 1,
                    ..CampaignConfig::default()
                },
            )
            .unwrap()
        };
        let ladder: Vec<Campaign> = [0u64, 10, 40, 160].iter().map(|&l| prepare(l)).collect();
        let mut saw_recovered = false;
        let mut saw_transition = false;
        for idx in 0..4096u64 {
            // Walk the golden trace positions as synthetic correct-path
            // detections at an arbitrary strike coordinate.
            if idx >= ladder[0].golden().len() as u64 {
                break;
            }
            let fault = ladder[0].fault_for((idx % 60) as u32);
            let occupant = Occupant::CorrectPath { trace_idx: idx };
            let mut prev_recovered = true;
            let mut prev_charge = 0u64;
            for c in &ladder {
                let d = c.recovery_decision(&fault, occupant).unwrap();
                if d.recovered {
                    assert!(
                        prev_recovered,
                        "once the signal escapes the region, longer latencies cannot re-enter it"
                    );
                    assert!(
                        d.reexec_instructions >= prev_charge,
                        "re-execution charge grows with latency"
                    );
                    prev_charge = d.reexec_instructions;
                    saw_recovered = true;
                } else if prev_recovered {
                    saw_transition = true;
                }
                prev_recovered = d.recovered;
            }
        }
        assert!(saw_recovered, "some positions must recover");
        assert!(saw_transition, "some positions must fall back at high latency");
    }

    #[test]
    fn pruned_campaign_matches_legacy_verdicts() {
        let spec = WorkloadSpec::quick("prune-eq", 21);
        let tracking = TrackingConfig {
            scope: PiScope::StoreCommit,
            anti_pi: true,
            pet_entries: None,
            mem_granule: 8,
        };
        let base = CampaignConfig {
            injections: 60,
            seed: 99,
            detection: DetectionModel::Parity {
                tracking: Some(tracking),
            },
            threads: 2,
            ..CampaignConfig::default()
        };
        let legacy = Campaign::prepare(&spec, base.clone()).unwrap().run_detailed();
        let pruned = Campaign::prepare(
            &spec,
            CampaignConfig {
                prune: true,
                ..base
            },
        )
        .unwrap()
        .run_detailed();
        assert_eq!(legacy.samples(), pruned.samples(), "verdicts must be identical");
        assert!(legacy.prune().is_none(), "no pruning stanza without --prune");
        let report = pruned.prune().expect("pruned run reports accounting");
        assert_eq!(report.injections, 60);
        assert!(report.idle_skips > 0, "random strikes hit idle coordinates");
        assert!(
            report.stop_fraction() > 0.0,
            "some replays must stop before their natural end"
        );
    }

    #[test]
    fn pruned_executor_memoizes_same_residency_faults() {
        let spec = WorkloadSpec::quick("prune-memo", 21);
        let config = CampaignConfig {
            injections: 10,
            seed: 3,
            detection: DetectionModel::Parity { tracking: None },
            threads: 1,
            prune: true,
            ..CampaignConfig::default()
        };
        let c = Campaign::prepare(&spec, config).unwrap();
        // A residency whose live phase covers at least two cycles gives
        // two distinct strike coordinates in one equivalence class.
        let span = c
            .lifetime_spans()
            .iter()
            .find(|s| s.boundary() >= s.alloc + 2)
            .copied()
            .expect("some residency is live for at least two cycles");
        let a = FaultSpec::single(Cycle::new(span.alloc), span.slot, 7);
        let b = FaultSpec::single(Cycle::new(span.alloc + 1), span.slot, 7);
        let before = c.memo.len();
        let oa = c.inject_spec_quiet(a);
        let ob = c.inject_spec_quiet(b);
        assert_eq!(oa, ob, "one equivalence class, one verdict");
        assert_eq!(
            c.memo.len(),
            before + 1,
            "both faults must share a single memo entry"
        );
    }

    #[test]
    fn pruned_run_matches_across_checkpoint_geometries() {
        let spec = WorkloadSpec::quick("prune-ckpt", 13);
        let base = CampaignConfig {
            injections: 30,
            seed: 11,
            detection: DetectionModel::Parity { tracking: None },
            threads: 2,
            prune: true,
            ..CampaignConfig::default()
        };
        let scratch = Campaign::prepare(
            &spec,
            CampaignConfig {
                checkpoint_interval: Some(0),
                ..base.clone()
            },
        )
        .unwrap()
        .run();
        let ckpt = Campaign::prepare(&spec, base).unwrap().run();
        assert_eq!(scratch, ckpt);
    }

    #[test]
    fn detailed_run_is_parallel_yet_ordered() {
        let spec = WorkloadSpec::quick("ordered", 3);
        let config = CampaignConfig {
            injections: 24,
            seed: 4,
            detection: DetectionModel::None,
            threads: 4,
            ..CampaignConfig::default()
        };
        let c = Campaign::prepare(&spec, config).unwrap();
        let detailed = c.run_detailed();
        let faults: Vec<FaultSpec> = detailed.samples().iter().map(|(f, _)| *f).collect();
        let expected: Vec<FaultSpec> = (0..24).map(|i| c.fault_for(i)).collect();
        assert_eq!(faults, expected, "samples must be in injection order");
        assert_eq!(detailed.summary(), c.run());
    }
}
