//! Property-based integration tests: randomly parameterised workloads must
//! flow through the entire stack without violating structural invariants.

use proptest::prelude::*;
use ses_arch::Emulator;
use ses_core::{run_workload, AvfAnalysis, DeadMap, PipelineConfig, WorkloadSpec};
use ses_pipeline::Pipeline;
use ses_workloads::{synthesize, BlockMix, Category};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        (
            any::<u64>(),
            prop_oneof![Just(Category::Integer), Just(Category::FloatingPoint)],
            1u8..5,  // arith
            0u8..3,  // load_live
            0u8..2,  // load_far
            0u8..2,  // load_deep
        ),
        (
            0u8..2,    // store_live
            0u8..2,    // dead_chain
            0u8..8,    // neutral
            0u8..2,    // branchy
            0u8..3,    // call
            10u64..16, // log2 working set
            prop_oneof![Just(8u64), Just(64), Just(256)],
        ),
    )
        .prop_map(
            |((seed, category, arith, ll, lf, ld), (sl, dc, neutral, br, call, ws_log2, stride))| {
                WorkloadSpec {
                    name: format!("prop-{seed:x}"),
                    category,
                    seed,
                    target_dynamic: 8_000,
                    mix: BlockMix {
                        arith,
                        load_live: ll,
                        load_far: lf,
                        load_deep: ld,
                        load_dead: 1,
                        store_live: sl,
                        store_dead: 1,
                        dead_chain: dc,
                        dead_slow: 1,
                        neutral,
                        predicated: 1,
                        branchy: br,
                        call,
                    },
                    working_set_bytes: 1 << ws_log2,
                    stride_bytes: stride,
                    far_gate_mask: 1,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_spec_synthesises_runs_and_halts(spec in arb_spec()) {
        let program = synthesize(&spec);
        let trace = Emulator::new(&program).run(spec.target_dynamic * 6).unwrap();
        prop_assert!(trace.halted(), "program must halt");
        prop_assert!(!trace.output().is_empty(), "program must emit output");
    }

    #[test]
    fn timing_commits_exactly_the_trace(spec in arb_spec()) {
        let program = synthesize(&spec);
        let trace = Emulator::new(&program).run(spec.target_dynamic * 6).unwrap();
        let result = Pipeline::new(PipelineConfig::default()).run(&program, &trace);
        prop_assert_eq!(result.committed, trace.len() as u64);
        prop_assert!(!result.budget_exhausted);
        // Retirement can never beat the 6-wide width bound.
        prop_assert!(result.cycles * 6 >= result.committed);
    }

    #[test]
    fn avf_invariants_hold_for_any_spec(spec in arb_spec()) {
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let s = run.avf.state_fractions();
        prop_assert!((s.idle + s.unread + s.unace + s.ace - 1.0).abs() < 1e-9);
        prop_assert!(run.avf.due_avf().fraction() >= run.avf.sdc_avf().fraction());
        prop_assert!(run.avf.due_avf().fraction() <= 1.0);
        // Dead fraction is a fraction.
        let df = run.dead.dead_fraction();
        prop_assert!((0.0..=1.0).contains(&df));
    }

    #[test]
    fn dead_analysis_kill_distances_are_sane(spec in arb_spec()) {
        let program = synthesize(&spec);
        let trace = Emulator::new(&program).run(spec.target_dynamic * 6).unwrap();
        let dead = DeadMap::analyze(&trace);
        for (idx, info) in dead.iter().enumerate() {
            if let Some(kd) = info.kill_distance {
                prop_assert!(kd > 0, "kill distance must be positive");
                prop_assert!(
                    idx as u64 + kd <= trace.len() as u64,
                    "kill must land inside the trace"
                );
            }
        }
        // PET coverage is monotone in capacity.
        let caps = [16u64, 64, 256, 1024, 4096, 16384];
        let mut last = 0.0;
        for c in caps {
            let cov = dead.pet_coverage_fdd_reg(c, true);
            prop_assert!(cov + 1e-12 >= last);
            last = cov;
        }
    }

    #[test]
    fn bit_cycles_partition_exactly(spec in arb_spec()) {
        // Conservation: every simulated (bit x cycle) lands in exactly one
        // class, as integers -- no float slop allowed.
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let d = run.avf.decomposition();
        prop_assert_eq!(d.ace + d.unace_total() + d.unread + d.idle, d.total);
        prop_assert_eq!(d.ace_by_kind.iter().sum::<u64>(), d.ace);
        prop_assert_eq!(d.total, run.avf.total_bit_cycles());
    }

    #[test]
    fn due_avf_is_sdc_plus_false_due(spec in arb_spec()) {
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let sdc = run.avf.sdc_avf().fraction();
        let false_due = run.avf.false_due_avf().fraction();
        let due = run.avf.due_avf().fraction();
        prop_assert!((sdc + false_due - due).abs() < 1e-12,
            "DUE {} must be SDC {} + false DUE {}", due, sdc, false_due);
    }

    #[test]
    fn pet_coverage_never_exceeds_register_pi(spec in arb_spec()) {
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let pet = run.avf.covered_by(ses_core::Technique::Pet(512), &run.dead);
        let reg = run.avf.covered_by(ses_core::Technique::PiRegister, &run.dead);
        let store = run.avf.covered_by(ses_core::Technique::PiStoreCommit, &run.dead);
        let mem = run.avf.covered_by(ses_core::Technique::PiMemory, &run.dead);
        prop_assert!(pet <= reg && reg <= store && store <= mem);
        prop_assert!(mem <= run.avf.false_due_avf().fraction().mul_add(run.avf.total_bit_cycles() as f64, 1.0) as u64);
        let _ = AvfAnalysis::new(&run.result, &run.dead); // reconstructible
    }
}

// --- idempotent-region recovery invariants -------------------------------

/// Satellite: structural and conservation properties of the
/// detection-latency + idempotent-region recovery model.
mod recovery {
    use super::*;
    use ses_core::{
        Campaign, CampaignConfig, DetailedReport, DetectionModel, LatencyDistribution, Outcome,
        RecoveryPolicy, RegionMap,
    };
    use ses_workloads::{fuzz_program_with, FuzzProgramSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The region analysis partitions every trace — no gaps, no
        /// overlaps, exact coverage — and every boundary is justified by
        /// an actual store, output, call, or live-in overwrite at that
        /// trace index. Checked over both fuzz-program families (plain
        /// and store-dense) so alias-heavy traces are in the net.
        #[test]
        fn regions_partition_every_fuzz_trace(seed in any::<u64>(), mem_heavy in any::<bool>()) {
            let spec = if mem_heavy {
                FuzzProgramSpec::mem_heavy()
            } else {
                FuzzProgramSpec::default()
            };
            let program = fuzz_program_with(ses_core::splitmix64(seed), &spec);
            let trace = Emulator::new(&program).run(500_000).unwrap();
            prop_assert!(trace.halted());
            let regions = RegionMap::analyze(&trace);
            prop_assert!(!regions.is_empty());
            if let Err(e) = regions.check_partition() {
                prop_assert!(false, "partition violated: {e}");
            }
            if let Err(e) = regions.check_boundaries(&trace) {
                prop_assert!(false, "unjustified boundary: {e}");
            }
        }
    }

    fn run_recovery(
        spec: &WorkloadSpec,
        latency: Option<LatencyDistribution>,
        seed: u64,
    ) -> DetailedReport {
        let config = CampaignConfig {
            injections: 200,
            seed,
            detection: DetectionModel::Parity { tracking: None },
            recovery: if latency.is_some() {
                RecoveryPolicy::Idempotent
            } else {
                RecoveryPolicy::MachineCheck
            },
            detect_latency: latency,
            ..CampaignConfig::default()
        };
        Campaign::prepare(spec, config).expect("campaign prepares").run_detailed()
    }

    /// With zero detection latency every would-be DUE lands inside the
    /// faulting region and recovers; DUE + SDC mass is conserved exactly
    /// against the legacy campaign, per fault, and the SDC samples are
    /// untouched — recovery converts detections, it never manufactures
    /// or hides corruption.
    #[test]
    fn zero_latency_recovery_conserves_due_plus_sdc_per_fault() {
        let spec = WorkloadSpec::quick("recovery-conserve", 17);
        let legacy = run_recovery(&spec, None, 7);
        let recovered = run_recovery(&spec, Some(LatencyDistribution::Fixed(0)), 7);

        assert_eq!(legacy.samples().len(), recovered.samples().len());
        for ((fa, a), (fb, b)) in legacy.samples().iter().zip(recovered.samples()) {
            assert_eq!(fa, fb, "both campaigns must draw the same fault sequence");
            match a {
                Outcome::FalseDue | Outcome::TrueDue => {
                    assert_eq!(*b, Outcome::Recovered, "zero-latency DUE must recover");
                }
                other => assert_eq!(b, other, "non-DUE outcomes must be untouched"),
            }
        }

        let (l, r) = (legacy.summary(), recovered.summary());
        assert_eq!(
            r.count(Outcome::Recovered),
            l.count(Outcome::FalseDue) + l.count(Outcome::TrueDue),
            "recovered mass must equal the legacy DUE mass"
        );
        assert_eq!(r.due_avf_estimate(), 0.0);
        assert_eq!(r.sdc_avf_estimate(), l.sdc_avf_estimate());
        let stanza = recovered.recovery().expect("recovery stanza present");
        assert_eq!(stanza.fallback_due, 0);
        assert_eq!(stanza.recovered, r.count(Outcome::Recovered));
    }

    /// Recovery cost is monotone in detection latency: the detected set
    /// is latency-independent, the recovered subset can only shrink as
    /// signals escape their regions, and the per-recovery re-execution
    /// charge can only grow.
    #[test]
    fn recovery_cost_is_monotone_in_detection_latency() {
        let spec = WorkloadSpec::quick("recovery-monotone", 29);
        let ladder = [0u64, 4, 16, 64, 256];
        let reports: Vec<_> = ladder
            .iter()
            .map(|&l| {
                run_recovery(&spec, Some(LatencyDistribution::Fixed(l)), 13)
                    .recovery()
                    .copied()
                    .expect("recovery stanza present")
            })
            .collect();

        let detected = reports[0].detected();
        assert!(detected > 0, "the ladder needs detections to be meaningful");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(
                r.detected(),
                detected,
                "latency {} must not change the detected set",
                ladder[i]
            );
        }
        for pair in reports.windows(2) {
            assert!(
                pair[1].recovered <= pair[0].recovered,
                "recovered count must not rise with latency ({} -> {})",
                pair[0].recovered,
                pair[1].recovered
            );
        }
        // Mean re-execution charge grows with latency while anything
        // still recovers: the signal lands deeper into the region.
        let charged: Vec<_> = reports.iter().filter(|r| r.recovered > 0).collect();
        for pair in charged.windows(2) {
            assert!(
                pair[1].mean_reexec_instructions() >= pair[0].mean_reexec_instructions(),
                "per-recovery charge must not shrink with latency"
            );
        }
        assert!(
            reports.last().unwrap().recovered < reports[0].recovered,
            "a 256-cycle latency must push some signals past their region"
        );
    }
}

// --- pi-bit tracker state invariants -------------------------------------

use ses_arch::DynInstr;
use ses_isa::Instruction;
use ses_pipeline::{PiScope, PiTracker};
use ses_types::{Addr, Reg};

/// One register-file op for the tracker: 0 = add d,s1,s2; 1 = movi d.
fn reg_op((kind, d, s1, s2): (u8, u8, u8, u8), idx: u64) -> DynInstr {
    let instr = match kind % 2 {
        0 => Instruction::add(Reg::new(d % 8 + 1), Reg::new(s1 % 8 + 1), Reg::new(s2 % 8 + 1)),
        _ => Instruction::movi(Reg::new(d % 8 + 1), i32::from(s1)),
    };
    DynInstr {
        index: idx,
        pc: Addr::new(0x1_0000 + idx * 8),
        instr,
        executed: true,
        reg_written: instr.reg_write().filter(|r| !r.is_zero()),
        pred_written: instr.pred_write(),
        mem_read: None,
        mem_written: None,
        taken: None,
        next_pc: Addr::new(0x1_0000 + (idx + 1) * 8),
        call_depth: 0,
        emitted: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commit_scope_holds_no_poison(ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..40)) {
        // Commit scope signals or suppresses at the commit point itself:
        // after every commit-scope clearing the tracker must carry zero
        // pi bits, even when the corrupted instruction itself commits.
        let mut t = PiTracker::new(PiScope::Commit, 8);
        for (i, op) in ops.iter().enumerate() {
            let self_pi = op.0 & 4 != 0;
            let _ = t.on_commit(&reg_op(*op, i as u64), self_pi);
            prop_assert_eq!(t.poison_count(), 0);
            prop_assert!(!t.poison_pending());
        }
    }

    #[test]
    fn register_scope_poison_is_monotone_without_new_faults(ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..40)) {
        // Seed exactly one poisoned register, then commit only clean
        // register ops: the pi population can shrink (overwrite) or be
        // consumed (signal), but never grow, and once it reaches zero it
        // must stay there (no resurrection).
        let mut t = PiTracker::new(PiScope::Register, 8);
        let seed = reg_op((0, 0, 4, 5), 0); // add r1, r5, r6
        let _ = t.on_commit(&seed, true);
        let mut last = t.poison_count();
        for (i, op) in ops.iter().enumerate() {
            let _ = t.on_commit(&reg_op(*op, i as u64 + 1), false);
            let now = t.poison_count();
            prop_assert!(now <= last, "pi count grew {last} -> {now} without a new fault");
            if last == 0 {
                prop_assert_eq!(now, 0, "pi poison resurrected after reaching zero");
            }
            last = now;
        }
    }
}

/// The adaptive stratified estimator: its algebra must reproduce the
/// uniform estimator exactly at the census limit and in expectation
/// under sampling, and its pooled interval must always sit inside the
/// per-stratum union bound.
mod adaptive_estimator {
    use super::*;
    use ses_core::{
        splitmix64, AdaptiveConfig, AdaptiveScheduler, FaultCoord, OccupancyProfile, Strata,
    };

    fn toy_strata(cycles: u64, iq: usize) -> Strata {
        // Queue busy in the middle half, so the occupancy axis is real.
        let intervals: Vec<(u64, u64)> = (0..iq).map(|_| (cycles / 4, 3 * cycles / 4)).collect();
        let profile = OccupancyProfile::from_intervals(cycles, iq, intervals, 8);
        Strata::build(cycles, iq, &profile)
    }

    /// A deterministic pseudo-random outcome field over coordinates with
    /// bit-dependent density, so strata genuinely differ in proportion.
    fn synthetic_outcome(seed: u64, c: &FaultCoord) -> bool {
        let h = splitmix64(
            seed ^ (c.cycle << 20) ^ ((c.slot as u64) << 8) ^ u64::from(c.bit),
        );
        h % 1000 < 60 + 500 * u64::from(c.bit < 12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// At the census limit (every stratum enumerated) the
        /// post-stratified estimate IS the uniform population mean, with
        /// a zero-width interval.
        #[test]
        fn exhaustive_stratified_estimate_equals_population_mean(
            seed in any::<u64>(),
            cycles in 24u64..72,
            iq in 2usize..6,
        ) {
            let strata = toy_strata(cycles, iq);
            let cfg = AdaptiveConfig {
                exhaust_threshold: u64::MAX,
                ..AdaptiveConfig::default()
            };
            let mut sched = AdaptiveScheduler::new(strata.clone(), cfg);
            sched.run_to_completion(|c| synthetic_outcome(seed, c));
            let est = sched.estimate();

            let mut events = 0u64;
            for cycle in 0..cycles {
                for slot in 0..iq {
                    for bit in 0..64 {
                        let c = FaultCoord { cycle, slot, bit };
                        prop_assert!(strata.stratum_of(&c).is_some());
                        events += u64::from(synthetic_outcome(seed, &c));
                    }
                }
            }
            let mean = events as f64 / strata.total_size() as f64;
            prop_assert!((est.estimate - mean).abs() < 1e-9,
                "census estimate {} != population mean {}", est.estimate, mean);
            prop_assert_eq!(est.halfwidth, 0.0);
        }

        /// Under sampling, the pooled interval must sit inside the
        /// weighted union bound (quadrature <= linear combination), the
        /// estimate must stay a convex combination, and the trajectory's
        /// cumulative trial count must be monotone.
        #[test]
        fn sampled_estimate_pooled_interval_within_union_bound(
            seed in any::<u64>(),
            sched_seed in any::<u64>(),
        ) {
            let strata = toy_strata(48, 4);
            let cfg = AdaptiveConfig {
                target_halfwidth: 0.05,
                round_budget: 256,
                seed: sched_seed,
                ..AdaptiveConfig::default()
            };
            let mut sched = AdaptiveScheduler::new(strata, cfg);
            sched.run_to_completion(|c| synthetic_outcome(seed, c));
            let est = sched.estimate();
            prop_assert!((0.0..=1.0).contains(&est.estimate));
            let (plo, phi) = est.interval();
            let (ulo, uhi) = est.union_bound();
            prop_assert!(plo >= ulo - 1e-12 && phi <= uhi + 1e-12,
                "pooled [{plo}, {phi}] escapes union [{ulo}, {uhi}]");
            let mut last = 0u64;
            for r in sched.trajectory() {
                prop_assert!(r.cumulative_trials >= last);
                last = r.cumulative_trials;
            }
        }
    }

    /// Averaged over many scheduler seeds, the sampled post-stratified
    /// estimate agrees with the uniform population mean: the estimator
    /// is unbiased in expectation. Deterministic given the fixed seed
    /// list, so this cannot flap.
    #[test]
    fn sampled_estimate_is_unbiased_in_expectation() {
        let strata = toy_strata(40, 4);
        let outcome_seed = 0xFEED;
        let mut events = 0u64;
        for cycle in 0..40 {
            for slot in 0..4usize {
                for bit in 0..64 {
                    let c = FaultCoord { cycle, slot, bit };
                    events += u64::from(synthetic_outcome(outcome_seed, &c));
                }
            }
        }
        let mean = events as f64 / strata.total_size() as f64;

        let runs = 32;
        let avg: f64 = (0..runs)
            .map(|s| {
                let cfg = AdaptiveConfig {
                    target_halfwidth: 0.06,
                    round_budget: 192,
                    seed: 0x1000 + s,
                    ..AdaptiveConfig::default()
                };
                let mut sched = AdaptiveScheduler::new(strata.clone(), cfg);
                sched.run_to_completion(|c| synthetic_outcome(outcome_seed, c));
                sched.estimate().estimate
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            (avg - mean).abs() < 0.02,
            "mean of {runs} adaptive estimates {avg:.4} drifted from population mean {mean:.4}"
        );
    }
}

/// Pooled-versus-union consistency of the uniform campaign's own
/// intervals: for any grouping of outcome classes, the CI of the pooled
/// proportion must sit inside the sum of the member CIs (sqrt
/// subadditivity), so reports can always quote the tighter pooled
/// number.
#[test]
fn campaign_report_pooled_ci_within_union_of_member_cis() {
    use ses_core::{Campaign, CampaignConfig, Outcome};
    let spec = WorkloadSpec::quick("pooled-ci", 23);
    let config = CampaignConfig {
        injections: 400,
        seed: 9,
        detection: ses_core::DetectionModel::Parity { tracking: None },
        ..CampaignConfig::default()
    };
    let report = Campaign::prepare(&spec, config).unwrap().run();
    let groups: [&[Outcome]; 2] = [
        &[Outcome::FalseDue, Outcome::TrueDue],
        &[Outcome::Sdc, Outcome::SuppressedSdc, Outcome::Hang],
    ];
    for group in groups {
        let pooled_p: f64 = group.iter().map(|&o| report.fraction(o)).sum();
        let pooled_ci = report.ci95(pooled_p);
        let union_ci: f64 = group.iter().map(|&o| report.ci95(report.fraction(o))).sum();
        assert!(
            pooled_ci <= union_ci + 1e-12,
            "pooled CI {pooled_ci} exceeds union {union_ci} for {group:?}"
        );
    }
}

/// Satellite: fixed-seed adaptive campaign on a small program, run at the
/// exhaustive limit, must agree *exactly* with a brute-force census of the
/// whole injection space — the estimator's weights, masked-idle handling
/// and phase partition introduce no bias at all, not just asymptotically.
#[test]
fn adaptive_exhaustive_agrees_with_census_on_small_program() {
    use ses_core::{
        build_strata, AdaptiveCampaignConfig, AdaptiveConfig, AdaptiveSession, Campaign,
        CampaignConfig, DetectionModel, FaultSpec, MetricKind, PipelineConfig,
    };
    use ses_isa::Program;
    // Hand-built so the injection space is small enough to enumerate
    // twice: dependent adds (live reads), an overwritten-without-read
    // value (a dead tail for the Tail phase), and an output to make
    // corruption architecturally visible.
    let mut code = vec![Instruction::movi(Reg::new(1), 3)];
    for i in 0..24u8 {
        code.push(Instruction::add(
            Reg::new(2 + i % 4),
            Reg::new(1),
            Reg::new(if i % 3 == 0 { 1 } else { 2 + (i + 1) % 4 }),
        ));
        if i % 6 == 0 {
            // Dead write: clobbered by the next iteration before any read.
            code.push(Instruction::movi(Reg::new(7), i32::from(i)));
        }
    }
    code.push(Instruction::out(Reg::new(2)));
    code.push(Instruction::out(Reg::new(5)));
    code.push(Instruction::halt());
    let config = CampaignConfig {
        seed: 5,
        detection: DetectionModel::None,
        threads: 1,
        pipeline: PipelineConfig {
            iq_entries: 4,
            ..PipelineConfig::default()
        },
        ..CampaignConfig::default()
    };
    let campaign = Campaign::prepare_program(Program::new(code), 1000, config).unwrap();
    let metric = MetricKind::SdcAvf;
    let mut session = AdaptiveSession::new(
        &campaign,
        AdaptiveCampaignConfig {
            adaptive: AdaptiveConfig {
                exhaust_threshold: u64::MAX,
                ..AdaptiveConfig::default()
            },
            metric,
            pattern: None,
        },
    );
    let report = session.run();

    // Brute-force census over every stratified coordinate; masked (idle)
    // coordinates are benign by construction and contribute zero events.
    let strata = build_strata(&campaign);
    let mut events = 0u64;
    for s in strata.strata() {
        for rank in 0..s.size() {
            let c = s.coord(rank);
            let outcome = campaign.inject_spec_quiet(FaultSpec::single(ses_types::Cycle::new(c.cycle), c.slot, c.bit));
            events += u64::from(metric.is_event(outcome));
        }
    }
    let census = events as f64 / strata.total_size() as f64;
    assert_eq!(report.total_trials, strata.sampled_size());
    assert!(
        (report.estimate.estimate - census).abs() < 1e-12,
        "exhaustive adaptive {} != census {census}",
        report.estimate.estimate
    );
    assert_eq!(report.estimate.halfwidth, 0.0);
}

/// The shared quick campaign for the spatial-strike properties below:
/// prepared once, injected many times.
fn ecc_prop_campaign() -> &'static ses_core::Campaign {
    use std::sync::OnceLock;
    use ses_core::{Campaign, CampaignConfig, DetectionModel};
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        Campaign::prepare(
            &WorkloadSpec::quick("ecc-prop", 31),
            CampaignConfig {
                injections: 0,
                seed: 3,
                detection: DetectionModel::None,
                pipeline: ses_core::PipelineConfig {
                    iq_entries: 8,
                    ..ses_core::PipelineConfig::default()
                },
                ..CampaignConfig::default()
            },
        )
        .expect("ecc property campaign prepares")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: two spatial-strike invariants, end to end.
    ///
    /// *Permutation invariance* — a strike is a **set** of flipped bits:
    /// folding the same bits into a mask in any of the 3! orders must
    /// produce the same mask, the same domain verdict, and the same
    /// injected pipeline outcome.
    ///
    /// *Weight monotonicity* — growing a strike never strengthens the
    /// decoder's grip: along the subset chain single ⊂ adjacent-double ⊂
    /// adjacent-triple (wrapping mod 64 like the generator), a superset
    /// is never Corrected while its subset left a residual, and a
    /// superset can only yield strictly fewer DUE+SDC events than its
    /// subset by going Silent (a signalling decoder fires at the same
    /// read regardless of which residual pattern tripped it).
    #[test]
    fn strike_outcome_is_permutation_invariant_and_weight_monotone(
        anchor in 0u32..64,
        perm in 0usize..6,
        scheme_idx in 0usize..6,
        interleave in prop_oneof![Just(1u32), Just(2), Just(4)],
        coord_seed in any::<u64>(),
    ) {
        use ses_core::{splitmix64, EccDomain, EccScheme, Outcome, WordVerdict};
        use ses_pipeline::{EccReadOutcome, FaultSpec};
        use ses_types::Cycle;

        let campaign = ecc_prop_campaign();
        let domain = EccDomain::interleaved(EccScheme::ALL[scheme_idx], interleave);
        let cycle = Cycle::new(splitmix64(coord_seed) % campaign.baseline_cycles().max(1));
        let slot = (splitmix64(coord_seed ^ 1) % campaign.iq_entries() as u64) as usize;

        // Classify through the domain and run the resulting verdict
        // through the pipeline, exactly like the campaign layer does.
        let outcome_of = |mask: u64| -> (WordVerdict, Outcome) {
            let verdict = domain.classify_word(mask);
            let outcome = match verdict {
                WordVerdict::Corrected => Outcome::Benign,
                WordVerdict::Signalled => campaign.inject_spec_quiet(FaultSpec::with_pattern(
                    cycle,
                    slot,
                    mask,
                    Some(EccReadOutcome::Signal),
                )),
                WordVerdict::Silent { effective } => {
                    campaign.inject_spec_quiet(FaultSpec::with_pattern(
                        cycle,
                        slot,
                        effective,
                        Some(EccReadOutcome::Silent),
                    ))
                }
            };
            (verdict, outcome)
        };

        // Permutation invariance over the adjacent triple's bits.
        let bits = [anchor, (anchor + 1) % 64, (anchor + 2) % 64];
        let orders = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let sorted_mask = bits.iter().fold(0u64, |m, &b| m | 1 << b);
        let permuted_mask = orders[perm].iter().fold(0u64, |m, &i| m ^ (1u64 << bits[i]));
        prop_assert_eq!(sorted_mask, permuted_mask, "a strike is a set of bits");
        prop_assert_eq!(outcome_of(sorted_mask), outcome_of(permuted_mask));

        // Weight monotonicity along the anchored subset chain.
        let chain = [
            1u64 << anchor,
            1 << anchor | 1 << ((anchor + 1) % 64),
            sorted_mask,
        ];
        let results: Vec<(WordVerdict, Outcome)> =
            chain.iter().map(|&m| outcome_of(m)).collect();
        for pair in results.windows(2) {
            let (sub_verdict, sub_outcome) = pair[0];
            let (sup_verdict, sup_outcome) = pair[1];
            prop_assert!(
                !(sub_verdict != WordVerdict::Corrected && sup_verdict == WordVerdict::Corrected),
                "superset absorbed while subset left a residual: {:?} -> {:?}",
                sub_verdict,
                sup_verdict
            );
            if sub_outcome.is_failure() && !sup_outcome.is_failure() {
                prop_assert!(
                    matches!(sup_verdict, WordVerdict::Silent { .. }),
                    "superset dropped a {:?} event without going silent ({:?})",
                    sub_outcome,
                    sup_verdict
                );
            }
        }
    }
}
