//! Measures the injection-throughput gain of the checkpointed campaign
//! engine against from-scratch simulation of every fault.
//!
//! Both campaigns inject the *same* deterministic fault sequence, so the
//! outcome reports must be identical — the only difference is whether
//! each injection re-simulates the fault-free prefix (cycle 0 up to the
//! strike) or resumes from the nearest pipeline snapshot. The measured
//! speedup and the engine's internal accounting are written to
//! `BENCH_campaign.json` at the repository root.
//!
//! Run with `cargo bench -p ses-bench --bench campaign_speed`.

use std::time::Instant;

use ses_core::{Campaign, CampaignConfig, DetectionModel, WorkloadSpec};
use ses_pipeline::{DetectionModel as PipelineDetection, Pipeline, PipelineConfig};

const INJECTIONS: u32 = 1000;

/// Best-of-N wall time of `f` (min damps scheduler noise).
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the cost of the per-stage telemetry collectors relative to an
/// uninstrumented timing run. The collectors are branch-on-None when off
/// and a handful of counter adds per cycle when on, so the ratio must stay
/// within the 5 % budget.
fn telemetry_overhead() -> (f64, f64, f64) {
    let spec = WorkloadSpec::quick("telemetry-overhead", 7);
    let program = ses_core::synthesize(&spec);
    let trace = ses_arch::Emulator::new(&program)
        .run(spec.target_dynamic * 4)
        .expect("golden trace");
    let pipeline = Pipeline::new(PipelineConfig::default());
    // Warm up both paths once before timing.
    let base_result = pipeline.run(&program, &trace);
    let (instr_result, _) =
        pipeline.run_instrumented(&program, &trace, PipelineDetection::None, 1024);
    assert_eq!(
        base_result.cycles, instr_result.cycles,
        "instrumentation must not change timing behaviour"
    );
    let off = best_of(7, || pipeline.run(&program, &trace));
    let on = best_of(7, || {
        pipeline.run_instrumented(&program, &trace, PipelineDetection::None, 1024)
    });
    (off, on, on / off.max(1e-12))
}

fn prepare(checkpoint_interval: Option<u64>) -> Campaign {
    let spec = WorkloadSpec::quick("campaign-speed", 7);
    let config = CampaignConfig {
        injections: INJECTIONS,
        seed: 0xBE,
        detection: DetectionModel::Parity { tracking: None },
        checkpoint_interval,
        ..CampaignConfig::default()
    };
    Campaign::prepare(&spec, config).expect("campaign prepare")
}

fn main() {
    println!("\n=== Campaign speed: checkpointed vs from-scratch injection ===");
    println!("({INJECTIONS} injections, parity detection, identical fault sequence)\n");

    let t = Instant::now();
    let scratch = prepare(Some(0));
    let scratch_prepare = t.elapsed();
    let t = Instant::now();
    let scratch_report = scratch.run();
    let scratch_wall = t.elapsed();

    let t = Instant::now();
    let ckpt = prepare(None);
    let ckpt_prepare = t.elapsed();
    let t = Instant::now();
    let ckpt_report = ckpt.run();
    let ckpt_wall = t.elapsed();

    assert_eq!(
        scratch_report, ckpt_report,
        "checkpointed campaign must classify every fault identically"
    );

    let perf = ckpt_report.perf();
    let scratch_perf = scratch_report.perf();
    let speedup = scratch_wall.as_secs_f64() / ckpt_wall.as_secs_f64().max(1e-9);

    println!("baseline cycles:        {}", ckpt.baseline_cycles());
    println!(
        "checkpoints:            {} every {} cycles",
        ckpt.checkpoints(),
        ckpt.checkpoint_interval()
    );
    println!(
        "from-scratch:           prepare {:>8.3}s  inject {:>8.3}s  ({:>8.0} inj/s)",
        scratch_prepare.as_secs_f64(),
        scratch_wall.as_secs_f64(),
        scratch_perf.injections_per_sec()
    );
    println!(
        "checkpointed:           prepare {:>8.3}s  inject {:>8.3}s  ({:>8.0} inj/s)",
        ckpt_prepare.as_secs_f64(),
        ckpt_wall.as_secs_f64(),
        perf.injections_per_sec()
    );
    println!(
        "cycles simulated:       {} (vs {} from scratch, {:.1}% skipped)",
        perf.cycles_simulated,
        scratch_perf.cycles_simulated,
        perf.skip_fraction() * 100.0
    );
    println!(
        "replays:                {} ({:.1}% memoized/fast-path)",
        perf.replays,
        perf.replay_hit_rate() * 100.0
    );
    println!("injection speedup:      {speedup:.2}x");

    let (telemetry_off, telemetry_on, telemetry_ratio) = telemetry_overhead();
    println!(
        "telemetry overhead:     off {:.4}s  full {:.4}s  ratio {:.3}x",
        telemetry_off, telemetry_on, telemetry_ratio
    );

    let json = format!(
        "{{\n  \"injections\": {},\n  \"baseline_cycles\": {},\n  \"checkpoints\": {},\n  \
         \"checkpoint_interval\": {},\n  \"scratch_inject_wall_s\": {:.6},\n  \
         \"checkpointed_inject_wall_s\": {:.6},\n  \"speedup\": {:.3},\n  \
         \"cycles_simulated_scratch\": {},\n  \"cycles_simulated_checkpointed\": {},\n  \
         \"cycles_skip_fraction\": {:.4},\n  \"replay_hit_rate\": {:.4},\n  \
         \"telemetry_off_wall_s\": {:.6},\n  \"telemetry_full_wall_s\": {:.6},\n  \
         \"telemetry_overhead_ratio\": {:.4}\n}}\n",
        INJECTIONS,
        ckpt.baseline_cycles(),
        ckpt.checkpoints(),
        ckpt.checkpoint_interval(),
        scratch_wall.as_secs_f64(),
        ckpt_wall.as_secs_f64(),
        speedup,
        scratch_perf.cycles_simulated,
        perf.cycles_simulated,
        perf.skip_fraction(),
        perf.replay_hit_rate(),
        telemetry_off,
        telemetry_on,
        telemetry_ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, &json).expect("write BENCH_campaign.json");
    println!("\nwrote {path}");

    assert!(
        speedup >= 3.0,
        "checkpointed campaign must be at least 3x faster ({speedup:.2}x measured)"
    );
    println!("Speedup target (>= 3x) holds.");

    assert!(
        telemetry_ratio <= 1.05,
        "full telemetry must cost at most 5% ({:.1}% measured)",
        (telemetry_ratio - 1.0) * 100.0
    );
    println!("Telemetry overhead target (<= 5%) holds.");
}
