//! Scenario-level tests of the timing engine: hand-built programs whose
//! pipeline behaviour can be reasoned about exactly.

use ses_arch::Emulator;
use ses_isa::{Instruction, Program, ProgramBuilder};
use ses_mem::Level;
use ses_pipeline::{
    DetectionModel, FaultOutcome, FaultSpec, Occupant, Pipeline, PipelineConfig, Residency,
    ResidencyEnd, SignalPoint, SquashPolicy,
};
use ses_types::{Cycle, Pred, Reg};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

/// A pipeline with the synthetic front-end stall pattern disabled, so
/// cycle counts are exactly analysable.
fn quiet_config() -> PipelineConfig {
    PipelineConfig {
        ifetch_stall_period: 0,
        ..PipelineConfig::default()
    }
}

fn straightline(n: usize) -> Program {
    let mut code = Vec::new();
    code.push(Instruction::movi(r(1), 1));
    for i in 0..n {
        // Independent adds across distinct destinations.
        code.push(Instruction::add(r(2 + (i % 8) as u8), r(1), r(1)));
    }
    code.push(Instruction::out(r(2)));
    code.push(Instruction::halt());
    Program::new(code)
}

#[test]
fn straightline_code_fills_and_drains() {
    let p = straightline(100);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let result = Pipeline::new(quiet_config()).run(&p, &trace);
    assert_eq!(result.committed, trace.len() as u64);
    assert_eq!(result.squashes, 0);
    assert_eq!(result.mispredictions, 0, "no conditional branches");
    // Every retired residency must have been read before retiring.
    for res in result.residencies.iter().filter(|x| x.end == ResidencyEnd::Retired) {
        assert!(res.last_read.is_some(), "retired entries were issued");
        assert!(res.last_read.unwrap() >= res.alloc);
        assert!(res.dealloc >= res.last_read.unwrap());
    }
}

#[test]
fn residency_log_covers_every_commit_exactly_once_without_squash() {
    let p = straightline(50);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let result = Pipeline::new(quiet_config()).run(&p, &trace);
    let mut seen = vec![0u32; trace.len()];
    for res in &result.residencies {
        if let Occupant::CorrectPath { trace_idx } = res.occupant {
            if res.end == ResidencyEnd::Retired {
                seen[trace_idx as usize] += 1;
            }
        }
    }
    assert!(seen.iter().all(|&c| c == 1), "each instruction retires once");
}

/// A program with one load that always misses to memory, followed by a
/// long tail of independent work.
fn memory_miss_program(tail: usize) -> Program {
    let mut code = Vec::new();
    code.push(Instruction::movi(r(1), 0x40_0000)); // cold address
    code.push(Instruction::ld(r(3), r(1), 0));
    for i in 0..tail {
        code.push(Instruction::add(r(4 + (i % 4) as u8), r(1), r(1)));
    }
    code.push(Instruction::out(r(3)));
    code.push(Instruction::halt());
    Program::new(code)
}

#[test]
fn load_miss_stalls_inorder_issue() {
    let p = memory_miss_program(20);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config();
    cfg.warm_caches = false; // keep the miss cold
    let result = Pipeline::new(cfg).run(&p, &trace);
    assert!(
        result.cycles > 200,
        "the 200-cycle memory miss must stall the in-order machine, got {}",
        result.cycles
    );
}

#[test]
fn squash_removes_the_miss_shadow() {
    let p = memory_miss_program(60);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut base_cfg = quiet_config();
    base_cfg.warm_caches = false;
    let mut squash_cfg = base_cfg.clone().with_squash(Level::L1);
    squash_cfg.warm_caches = false;

    let base = Pipeline::new(base_cfg).run(&p, &trace);
    let squashed = Pipeline::new(squash_cfg).run(&p, &trace);
    assert!(squashed.squashes >= 1, "the cold miss must trigger a squash");
    assert!(squashed.squashed_instrs > 0);

    // Squashed run: the tail instructions' residencies start much later
    // (refetched near data-ready), so their total valid time shrinks.
    let exposure = |res: &[Residency]| -> u64 { res.iter().map(|x| x.valid_cycles()).sum() };
    assert!(
        exposure(&squashed.residencies) < exposure(&base.residencies),
        "squash must reduce total queue occupancy"
    );
    // And both runs commit identically.
    assert_eq!(base.committed, squashed.committed);
}

#[test]
fn squashed_instructions_refetch_and_retire() {
    let p = memory_miss_program(40);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config().with_squash(Level::L1);
    cfg.warm_caches = false;
    let result = Pipeline::new(cfg).run(&p, &trace);
    // Some trace indices appear twice: once squashed, once retired.
    let mut squashed_idx = None;
    for res in &result.residencies {
        if res.end == ResidencyEnd::Squashed {
            if let Occupant::CorrectPath { trace_idx } = res.occupant {
                squashed_idx = Some(trace_idx);
                break;
            }
        }
    }
    let idx = squashed_idx.expect("at least one squashed entry");
    let retired = result.residencies.iter().any(|res| {
        res.end == ResidencyEnd::Retired
            && matches!(res.occupant, Occupant::CorrectPath { trace_idx } if trace_idx == idx)
    });
    assert!(retired, "squashed instruction {idx} must refetch and retire");
}

/// A loop with a data-dependent (alternating) branch to exercise
/// misprediction recovery and wrong-path fetch.
fn branchy_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Instruction::movi(r(1), 200)); // counter
    b.push(Instruction::movi(r(2), 0)); // accumulator
    b.push(Instruction::movi(r(3), 1)); // constant
    let top = b.new_label();
    b.bind(top);
    // Alternate the branch on the counter's low bit.
    b.push(Instruction::alu(ses_isa::Opcode::And, r(4), r(1), r(3)));
    b.push(Instruction::cmp_eq(Pred::new(2), r(4), Reg::ZERO));
    let skip = b.new_label();
    b.branch(Pred::new(2), skip);
    b.push(Instruction::add(r(2), r(2), r(3)));
    b.push(Instruction::add(r(2), r(2), r(3)));
    b.bind(skip);
    b.push(Instruction::addi(r(1), r(1), -1));
    b.push(Instruction::cmp_lt(Pred::new(1), Reg::ZERO, r(1)));
    b.branch(Pred::new(1), top);
    b.push(Instruction::out(r(2)));
    b.push(Instruction::halt());
    b.build().unwrap()
}

#[test]
fn mispredictions_create_and_flush_wrong_path() {
    let p = branchy_program();
    let trace = Emulator::new(&p).run(10_000).unwrap();
    let result = Pipeline::new(quiet_config()).run(&p, &trace);
    assert!(result.mispredictions > 0, "fresh predictor must miss");
    assert!(result.wrong_path_fetched > 0);
    let flushed = result
        .residencies
        .iter()
        .filter(|x| x.end == ResidencyEnd::FlushedWrongPath)
        .count();
    assert!(flushed > 0, "wrong-path entries must be flushed");
    // No wrong-path entry may ever retire.
    assert!(result
        .residencies
        .iter()
        .filter(|x| x.is_wrong_path())
        .all(|x| x.end != ResidencyEnd::Retired));
    assert_eq!(result.committed, trace.len() as u64);
}

/// Nested calls deeper than the 8-entry return-address stack force
/// return mispredictions.
fn deep_recursion_program(depth: usize) -> Program {
    // A chain of functions f0 -> f1 -> ... -> f{depth-1}, each saving its
    // link register to memory and restoring it before returning.
    let mut b = ProgramBuilder::new();
    let funcs: Vec<_> = (0..depth).map(|_| b.new_label()).collect();
    let end = b.new_label();
    b.call(r(31), funcs[0]);
    b.jump(end);
    for (i, &label) in funcs.iter().enumerate() {
        b.bind(label);
        // Save the link register at a per-depth slot.
        b.push(Instruction::movi(r(1), 0x8000 + (i as i32) * 8));
        b.push(Instruction::st(r(1), r(31), 0));
        if i + 1 < depth {
            b.call(r(31), funcs[i + 1]);
        }
        // Restore and return.
        b.push(Instruction::movi(r(1), 0x8000 + (i as i32) * 8));
        b.push(Instruction::ld(r(31), r(1), 0));
        b.push(Instruction::ret(r(31)));
    }
    b.bind(end);
    b.push(Instruction::out(r(1)));
    b.push(Instruction::halt());
    b.build().unwrap()
}

#[test]
fn shallow_calls_predict_returns_perfectly() {
    let p = deep_recursion_program(3);
    let trace = Emulator::new(&p).run(10_000).unwrap();
    assert!(trace.halted());
    let result = Pipeline::new(quiet_config()).run(&p, &trace);
    assert_eq!(result.mispredictions, 0, "RAS depth 8 covers 3-deep calls");
    assert_eq!(result.committed, trace.len() as u64);
}

#[test]
fn deep_recursion_overflows_the_ras() {
    let p = deep_recursion_program(12);
    let trace = Emulator::new(&p).run(10_000).unwrap();
    assert!(trace.halted());
    let result = Pipeline::new(quiet_config()).run(&p, &trace);
    assert!(
        result.mispredictions > 0,
        "12-deep recursion must overflow the 8-entry RAS"
    );
    assert!(result.wrong_path_fetched > 0);
    assert_eq!(result.committed, trace.len() as u64, "recovery still exact");
}

#[test]
fn fault_on_idle_slot_is_benign() {
    let p = straightline(10);
    let trace = Emulator::new(&p).run(1000).unwrap();
    // Strike a high slot very early: nothing lives there yet.
    let fault = FaultSpec::single(Cycle::new(0), 63, 5);
    let result = Pipeline::new(quiet_config()).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::Parity { tracking: None },
    );
    assert_eq!(result.fault, Some(FaultOutcome::SlotIdle));
}

#[test]
fn fault_after_run_ends_is_idle() {
    let p = straightline(10);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let fault = FaultSpec::single(Cycle::new(1_000_000), 0, 0);
    let result = Pipeline::new(quiet_config()).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::None,
    );
    assert_eq!(result.fault, Some(FaultOutcome::SlotIdle));
}

#[test]
fn parity_fault_on_occupied_slot_signals_at_issue() {
    // Stall the machine on a memory miss so slots stay occupied, then
    // strike one mid-stall: the entry is read at issue and parity fires.
    let p = memory_miss_program(40);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config();
    cfg.warm_caches = false;
    // Mid-miss, deep in the stalled queue, an immediate bit.
    let fault = FaultSpec::single(Cycle::new(60), 20, 33);
    let result = Pipeline::new(cfg).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::Parity { tracking: None },
    );
    match result.fault {
        Some(FaultOutcome::Signalled { point, .. }) => {
            assert_eq!(point, SignalPoint::IssueParity)
        }
        other => panic!("expected a parity signal, got {other:?}"),
    }
}

#[test]
fn temporal_double_strike_escapes_parity_without_scrubbing() {
    // Two strikes 40 cycles apart accumulate in a stalled entry; by the
    // time the entry is read, the flip count is even and parity is blind.
    let p = memory_miss_program(40);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config();
    cfg.warm_caches = false;
    let fault = FaultSpec::temporal_double(Cycle::new(40), 20, 33, 40);
    let result = Pipeline::new(cfg).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::Parity { tracking: None },
    );
    assert!(
        matches!(result.fault, Some(FaultOutcome::CorruptIssued { .. })),
        "even accumulated flips must slip past parity, got {:?}",
        result.fault
    );
}

#[test]
fn scrubbing_detects_the_first_strike_before_the_second() {
    // With a scrub sweep every 16 cycles, the single-bit fault is caught
    // while it is still odd -- restoring fail-stop behaviour (§2's
    // scrubbing defence).
    let p = memory_miss_program(40);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config();
    cfg.warm_caches = false;
    cfg.scrub_period = 16;
    let fault = FaultSpec::temporal_double(Cycle::new(40), 20, 33, 40);
    let result = Pipeline::new(cfg).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::Parity { tracking: None },
    );
    assert!(
        matches!(
            result.fault,
            Some(FaultOutcome::Signalled {
                point: SignalPoint::IssueParity,
                ..
            })
        ),
        "the scrub sweep must detect the odd flip early, got {:?}",
        result.fault
    );
}

#[test]
fn second_strike_skipped_if_entry_left_the_queue() {
    // The second strike lands long after everything retired: only the
    // first (odd, detectable) flip ever exists.
    let p = memory_miss_program(10);
    let trace = Emulator::new(&p).run(1000).unwrap();
    let mut cfg = quiet_config();
    cfg.warm_caches = false;
    let fault = FaultSpec::temporal_double(Cycle::new(40), 20, 33, 100_000);
    let result = Pipeline::new(cfg).run_with_fault(
        &p,
        &trace,
        Some(fault),
        DetectionModel::Parity { tracking: None },
    );
    // Odd flip: either read (signalled) or never read (benign), but never
    // a silent corruption.
    assert!(
        !matches!(result.fault, Some(FaultOutcome::CorruptIssued { .. })),
        "a lone odd flip cannot escape parity, got {:?}",
        result.fault
    );
}

#[test]
fn squash_policy_none_by_default_and_configs_validate() {
    let cfg = PipelineConfig::default();
    assert_eq!(cfg.squash, SquashPolicy::None);
    assert!(cfg.validate().is_ok());
}
