//! The interval algebra behind the analytic-AVF engine.
//!
//! Every instruction-queue slot's ACE/un-ACE status is piecewise-constant
//! between events — allocation, the last issue read, and
//! retirement/squash are the only points at which a residency's
//! classification can change — so AVF accounting never needs to visit
//! individual (bit × cycle) coordinates. This module is the canonical
//! span representation:
//!
//! * [`LifetimeSpan`] — the `(slot, alloc, last_read, dealloc)` geometry
//!   of one residency, with the live/tail phase boundary drawn exactly
//!   once for every consumer (ACE classification, the adaptive sampler's
//!   strata, occupancy profiles);
//! * [`SpanClass`] — the ACE class of a segment, carrying a `const`
//!   bit-kind mask of the positions that stay ACE;
//! * [`Segment`] — a half-open cycle range tagged with its class and ACE
//!   mask;
//! * [`ResidencySpans`] — the (at most two) segments of one residency:
//!   `[alloc → last-issue-read)` exposed, `[last-read → retire/squash)`
//!   unread (a never-read residency is one unread segment);
//! * [`SpanSet`] — all residency spans of one timing run.
//!
//! Every aggregate — [`crate::BitCycleDecomposition`], state fractions,
//! per-kind AVFs, technique coverage, the exposure timeline — is a sum of
//! `width × span_length` terms over segments, where `width` is a popcount
//! of a constant mask: O(events), independent of trace length in cycles.
//! Squash and misprediction recovery *truncate* spans (the residency's
//! `dealloc` is the squash/flush cycle and its `end` tag reclassifies the
//! exposed segment), and false predication reclassifies without
//! truncating; neither adds segments.
//!
//! The per-bit-cycle accounting this replaces survives as a test-only
//! oracle in [`crate::exhaustive`]; the property suite proves the two
//! engines identical on fuzzed workloads, and the `avf_speed` bench
//! measures the span engine's throughput advantage.

use ses_isa::{field_mask, BitKind, BIT_COUNT};
use ses_pipeline::{Occupant, PipelineResult, Residency, ResidencyEnd};

use crate::ace::{FalseDueCause, ResidencyBits};
use crate::dead::{DeadKind, DeadMap};

/// Bits that stay ACE inside a dynamically dead instruction: the
/// destination general-register and predicate specifiers (§4.1).
pub const DEAD_ACE_MASK: u64 =
    field_mask(BitKind::DestSpec) | field_mask(BitKind::PredDestSpec);

/// Bits that stay ACE inside a neutral instruction: the opcode (§4.1).
pub const NEUTRAL_ACE_MASK: u64 = field_mask(BitKind::Opcode);

/// Per-kind field masks in [`BitKind::ALL`] order.
pub const KIND_MASKS: [u64; 7] = [
    field_mask(BitKind::Opcode),
    field_mask(BitKind::Guard),
    field_mask(BitKind::DestSpec),
    field_mask(BitKind::SrcSpec),
    field_mask(BitKind::PredDestSpec),
    field_mask(BitKind::Immediate),
    field_mask(BitKind::Reserved),
];

// The span masks and the classifier's const width helpers must agree:
// both fold from the same encoding at compile time.
const _: () = assert!(DEAD_ACE_MASK.count_ones() as u64 == crate::ace::dest_spec_bits());
const _: () = assert!(NEUTRAL_ACE_MASK.count_ones() as u64 == crate::ace::opcode_bits());

/// Per-kind field widths in [`BitKind::ALL`] order.
pub const KIND_WIDTHS: [u64; 7] = {
    let mut w = [0u64; 7];
    let mut i = 0;
    while i < 7 {
        w[i] = KIND_MASKS[i].count_ones() as u64;
        i += 1;
    }
    w
};

/// The canonical lifetime geometry of one residency: where in the run a
/// strike on the slot lands in a stored word, and where the live/tail
/// phase boundary falls.
///
/// The timing model retires before it injects within a cycle, so a
/// same-cycle strike sees the allocation but not the deallocation:
/// `[alloc, dealloc)` is exactly the strikeable span. A strike on the
/// last-read cycle lands *after* the read, so the live (exposed) phase is
/// `[alloc, last_read)` and the tail `[last_read, dealloc)`; never-read
/// residencies are all tail. The ACE classifier and the adaptive
/// sampler's strata both read these ranges from here, so they can never
/// disagree about lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeSpan {
    /// Queue slot index.
    pub slot: usize,
    /// Allocation cycle.
    pub alloc: u64,
    /// Last issue-read cycle (`None` if never issued).
    pub last_read: Option<u64>,
    /// Deallocation cycle.
    pub dealloc: u64,
}

impl LifetimeSpan {
    /// The lifetime geometry of one residency record.
    pub fn of(res: &Residency) -> LifetimeSpan {
        LifetimeSpan {
            slot: res.slot,
            alloc: res.alloc.as_u64(),
            last_read: res.last_read.map(|c| c.as_u64()),
            dealloc: res.dealloc.as_u64(),
        }
    }

    /// The live/tail phase boundary: the last issue read, clamped into
    /// the occupancy (a never-read residency's boundary is its alloc, so
    /// the whole occupancy is tail).
    pub fn boundary(&self) -> u64 {
        self.last_read.unwrap_or(self.alloc).clamp(self.alloc, self.dealloc)
    }

    /// The occupancy interval `[alloc, dealloc)`.
    pub fn occupancy(&self) -> (u64, u64) {
        (self.alloc, self.dealloc)
    }

    /// The live (exposed) phase `[alloc, boundary)`, if non-empty.
    pub fn live_range(&self) -> Option<(u64, u64)> {
        let b = self.boundary();
        (self.alloc < b).then_some((self.alloc, b))
    }

    /// The tail (Ex-ACE / never-read) phase `[boundary, dealloc)`, if
    /// non-empty.
    pub fn tail_range(&self) -> Option<(u64, u64)> {
        let b = self.boundary();
        (b < self.dealloc).then_some((b, self.dealloc))
    }

    /// Total cycles the entry was valid.
    pub fn valid_cycles(&self) -> u64 {
        self.dealloc - self.alloc
    }

    /// Cycles in the live (exposed) phase.
    pub fn exposed_cycles(&self) -> u64 {
        self.boundary() - self.alloc
    }
}

/// The per-slot lifetime spans of a timing run — the one derivation every
/// lifetime consumer (ACE classification, sampler strata, occupancy
/// profiles) shares.
pub fn lifetime_spans(result: &PipelineResult) -> Vec<LifetimeSpan> {
    result.residencies.iter().map(LifetimeSpan::of).collect()
}

/// Which phase of a residency a strike cycle lands in. Within one phase of
/// one residency, every strike cycle is timing-equivalent: a live-phase
/// strike is first observed at the entry's (single) issue read, a
/// tail-phase strike is never read again, and both observation points are
/// fixed absolute cycles of the golden schedule — so the fault's
/// `(outcome, end cycle)` pair is constant across the phase. This is the
/// span-consistent early-verdict property the campaign executor's verdict
/// memoization keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrikePhase {
    /// `[alloc, boundary)`: the strike precedes the entry's issue read.
    Live,
    /// `[boundary, dealloc)`: the strike lands after the last read (or the
    /// entry is never read at all).
    Tail,
}

impl LifetimeSpan {
    /// The phase a strike at `cycle` lands in. Meaningful only for cycles
    /// inside the occupancy `[alloc, dealloc)`.
    pub fn phase_at(&self, cycle: u64) -> StrikePhase {
        if cycle < self.boundary() {
            StrikePhase::Live
        } else {
            StrikePhase::Tail
        }
    }
}

/// A per-slot, binary-searchable index over a run's lifetime spans,
/// answering "which residency (if any) holds `slot` at `cycle`" in
/// O(log residencies-per-slot).
///
/// The timing model inserts before it injects and retires before it
/// injects within a cycle, so slot occupancy at the strike point is
/// exactly `alloc <= cycle < dealloc` — a strike outside every span hits
/// an empty slot and is [`SlotIdle`] by construction, with no simulation
/// needed (the campaign executor's idle shortcut).
///
/// [`SlotIdle`]: ses_pipeline::FaultOutcome::SlotIdle
#[derive(Debug, Clone)]
pub struct StrikeIndex {
    per_slot: Vec<Vec<LifetimeSpan>>,
}

impl StrikeIndex {
    /// Builds the index from a run's lifetime spans over `slots` queue
    /// slots.
    pub fn build(spans: &[LifetimeSpan], slots: usize) -> StrikeIndex {
        let mut per_slot: Vec<Vec<LifetimeSpan>> = vec![Vec::new(); slots];
        for &s in spans {
            if let Some(v) = per_slot.get_mut(s.slot) {
                v.push(s);
            }
        }
        for v in &mut per_slot {
            v.sort_unstable_by_key(|s| s.alloc);
        }
        StrikeIndex { per_slot }
    }

    /// The residency holding `slot` at `cycle`, if any.
    pub fn span_at(&self, slot: usize, cycle: u64) -> Option<&LifetimeSpan> {
        let spans = self.per_slot.get(slot)?;
        let idx = spans.partition_point(|s| s.alloc <= cycle);
        let cand = spans.get(idx.checked_sub(1)?)?;
        (cycle < cand.dealloc).then_some(cand)
    }
}

/// The queue-occupancy intervals of a timing run, as half-open
/// `(alloc, dealloc)` cycle ranges (the raw input of
/// [`OccupancyProfile`]-style bucketing).
///
/// [`OccupancyProfile`]: https://docs.rs/ses-sampler
pub fn occupancy_intervals(result: &PipelineResult) -> Vec<(u64, u64)> {
    result
        .residencies
        .iter()
        .map(|r| (r.alloc.as_u64(), r.dealloc.as_u64()))
        .collect()
}

/// The ACE class of one segment: how its 64 bit-columns split into ACE
/// and un-ACE for every cycle the segment covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanClass {
    /// All 64 bits ACE (live committed instruction while exposed).
    Ace,
    /// All 64 bits un-ACE with one cause (wrong path, false predication,
    /// squash discard).
    Unace(FalseDueCause),
    /// Opcode bits ACE; everything else un-ACE as
    /// [`FalseDueCause::Neutral`] (§4.1).
    NeutralSplit,
    /// Destination-specifier bits ACE; everything else un-ACE with the
    /// given dead cause (§4.1).
    DeadSplit(FalseDueCause),
    /// Valid but never read again: the Ex-ACE window and never-read
    /// residencies. Neither ACE nor detected.
    Unread,
}

impl SpanClass {
    /// Mask of the bit positions that are ACE throughout the segment.
    pub const fn ace_mask(self) -> u64 {
        match self {
            SpanClass::Ace => u64::MAX,
            SpanClass::Unace(_) | SpanClass::Unread => 0,
            SpanClass::NeutralSplit => NEUTRAL_ACE_MASK,
            SpanClass::DeadSplit(_) => DEAD_ACE_MASK,
        }
    }

    /// Number of ACE bits per cycle of the segment.
    pub const fn ace_width(self) -> u64 {
        self.ace_mask().count_ones() as u64
    }

    /// The false-DUE cause carried by the segment's exposed un-ACE bits,
    /// if any.
    pub const fn unace_cause(self) -> Option<FalseDueCause> {
        match self {
            SpanClass::Ace | SpanClass::Unread => None,
            SpanClass::Unace(c) | SpanClass::DeadSplit(c) => Some(c),
            SpanClass::NeutralSplit => Some(FalseDueCause::Neutral),
        }
    }
}

/// One piecewise-constant segment of one residency: a half-open cycle
/// range over which every bit keeps a single classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First cycle of the segment.
    pub start: u64,
    /// One past the last cycle.
    pub end: u64,
    /// The ACE class (and with it the ACE bit mask).
    pub class: SpanClass,
}

impl Segment {
    /// Segment length in cycles.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the segment covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The segments of one residency: the exposed window and the unread
/// tail, either of which may be absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencySpans {
    /// The lifetime geometry the segments tile.
    pub lifetime: LifetimeSpan,
    /// The exposed segment `[alloc, last_read)`, if the entry was ever
    /// read.
    pub exposed: Option<Segment>,
    /// The unread segment `[boundary, dealloc)` (Ex-ACE tail, or the
    /// whole occupancy for a never-read entry), if non-empty.
    pub tail: Option<Segment>,
}

impl ResidencySpans {
    /// Derives the segments of one residency: the phase boundary from the
    /// lifetime geometry, the exposed segment's ACE class from the
    /// occupant, how the residency ended, predication, and the dead map.
    pub fn derive(res: &Residency, dead: &DeadMap) -> ResidencySpans {
        let lifetime = LifetimeSpan::of(res);
        let exposed = lifetime.live_range().map(|(s, e)| Segment {
            start: s,
            end: e,
            class: exposed_class(res, dead),
        });
        let tail = lifetime.tail_range().map(|(s, e)| Segment {
            start: s,
            end: e,
            class: SpanClass::Unread,
        });
        ResidencySpans {
            lifetime,
            exposed,
            tail,
        }
    }

    /// The segments present, in cycle order.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.exposed.iter().chain(self.tail.iter())
    }

    /// The bit-cycle contributions of this residency, by span arithmetic:
    /// `popcount(mask) × len` per segment, never a per-cycle loop.
    pub fn bits(&self) -> ResidencyBits {
        let mut out = ResidencyBits::default();
        self.accumulate(&mut out);
        out
    }

    /// Adds this residency's contributions into an accumulator (the bulk
    /// path [`AvfAnalysis::from_spans`] uses).
    ///
    /// [`AvfAnalysis::from_spans`]: crate::AvfAnalysis::from_spans
    pub(crate) fn accumulate(&self, out: &mut ResidencyBits) {
        for seg in self.segments() {
            let len = seg.len();
            match seg.class {
                SpanClass::Unread => out.unread += len * BIT_COUNT as u64,
                class => {
                    let mask = class.ace_mask();
                    let width = mask.count_ones() as u64;
                    out.ace += width * len;
                    if mask != 0 {
                        for (i, km) in KIND_MASKS.iter().enumerate() {
                            let w = (mask & km).count_ones() as u64;
                            if w != 0 {
                                out.ace_by_kind[i] += w * len;
                            }
                        }
                    }
                    if let Some(cause) = class.unace_cause() {
                        out.add_cause(cause, (BIT_COUNT as u64 - width) * len);
                    }
                }
            }
        }
    }

    /// Checks the segment invariants: segments are within the lifetime,
    /// ordered, disjoint, and tile the valid window exactly.
    pub fn check(&self) -> Result<(), String> {
        let l = &self.lifetime;
        if l.alloc > l.dealloc {
            return Err(format!("lifetime alloc {} > dealloc {}", l.alloc, l.dealloc));
        }
        let mut covered = 0u64;
        let mut cursor = l.alloc;
        for seg in self.segments() {
            if seg.is_empty() {
                return Err(format!("empty segment at {}", seg.start));
            }
            if seg.start != cursor {
                return Err(format!(
                    "segment starts at {} but previous coverage ends at {cursor}",
                    seg.start
                ));
            }
            if seg.end > l.dealloc {
                return Err(format!(
                    "segment ends at {} past dealloc {}",
                    seg.end, l.dealloc
                ));
            }
            covered += seg.len();
            cursor = seg.end;
        }
        if covered != l.valid_cycles() {
            return Err(format!(
                "segments cover {covered} cycles of a {}-cycle lifetime",
                l.valid_cycles()
            ));
        }
        if let Some(seg) = &self.exposed {
            if seg.class == SpanClass::Unread {
                return Err("exposed segment tagged Unread".into());
            }
        }
        if let Some(seg) = &self.tail {
            if seg.class != SpanClass::Unread {
                return Err("tail segment not tagged Unread".into());
            }
        }
        Ok(())
    }
}

/// ACE class of a residency's exposed window (paper §4.1 rules; see
/// [`crate::ace`] for the bucket taxonomy).
fn exposed_class(res: &Residency, dead: &DeadMap) -> SpanClass {
    match res.occupant {
        Occupant::WrongPath => SpanClass::Unace(FalseDueCause::WrongPath),
        Occupant::CorrectPath { trace_idx } => {
            if res.end == ResidencyEnd::Squashed {
                SpanClass::Unace(FalseDueCause::Squashed)
            } else if res.falsely_predicated {
                SpanClass::Unace(FalseDueCause::FalselyPredicated)
            } else if res.instr.is_neutral() {
                SpanClass::NeutralSplit
            } else {
                match dead.get(trace_idx).kind {
                    DeadKind::Live => SpanClass::Ace,
                    DeadKind::FddReg => SpanClass::DeadSplit(FalseDueCause::DeadFddReg),
                    DeadKind::TddReg => SpanClass::DeadSplit(FalseDueCause::DeadTddReg),
                    DeadKind::FddMem => SpanClass::DeadSplit(FalseDueCause::DeadFddMem),
                    DeadKind::TddMem => SpanClass::DeadSplit(FalseDueCause::DeadTddMem),
                }
            }
        }
    }
}

/// All residency spans of one timing run: the canonical interval
/// representation the analytic engine, the suite runner, the injection
/// oracle, and (via [`LifetimeSpan`]) the adaptive sampler consume.
#[derive(Debug, Clone)]
pub struct SpanSet {
    cycles: u64,
    iq_capacity: u64,
    spans: Vec<ResidencySpans>,
}

impl SpanSet {
    /// Derives the span set of a timing run against the dead map of its
    /// trace. O(residencies); no loop iterates cycles.
    pub fn derive(result: &PipelineResult, dead: &DeadMap) -> SpanSet {
        SpanSet {
            cycles: result.cycles,
            iq_capacity: result.iq_capacity as u64,
            spans: result
                .residencies
                .iter()
                .map(|r| ResidencySpans::derive(r, dead))
                .collect(),
        }
    }

    /// The per-residency spans, in residency-log order.
    pub fn residencies(&self) -> &[ResidencySpans] {
        &self.spans
    }

    /// Cycles of the underlying run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Queue capacity of the underlying run.
    pub fn iq_capacity(&self) -> u64 {
        self.iq_capacity
    }

    /// Total bit-cycles of the run (cycles × entries × 64).
    pub fn total_bit_cycles(&self) -> u64 {
        self.cycles * self.iq_capacity * BIT_COUNT as u64
    }

    /// Checks every residency's segment invariants and that the valid
    /// mass fits into the run (the differential oracle gates on this).
    pub fn check(&self) -> Result<(), String> {
        let mut valid = 0u64;
        for (i, rs) in self.spans.iter().enumerate() {
            rs.check().map_err(|e| format!("residency {i}: {e}"))?;
            if rs.lifetime.dealloc > self.cycles {
                return Err(format!(
                    "residency {i} deallocates at {} past the {}-cycle run",
                    rs.lifetime.dealloc, self.cycles
                ));
            }
            valid += rs.lifetime.valid_cycles();
        }
        let capacity = self.cycles * self.iq_capacity;
        if valid > capacity {
            return Err(format!(
                "{valid} valid slot-cycles exceed the {capacity}-slot-cycle run"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::Instruction;
    use ses_types::{Cycle, Reg, SeqNo};

    fn residency(alloc: u64, read: Option<u64>, dealloc: u64) -> Residency {
        Residency {
            slot: 3,
            seq: SeqNo::new(0),
            occupant: Occupant::CorrectPath { trace_idx: 0 },
            instr: Instruction::movi(Reg::new(1), 5),
            alloc: Cycle::new(alloc),
            last_read: read.map(Cycle::new),
            dealloc: Cycle::new(dealloc),
            end: ResidencyEnd::Retired,
            falsely_predicated: false,
        }
    }

    #[test]
    fn masks_match_field_widths() {
        assert_eq!(DEAD_ACE_MASK.count_ones(), 9, "6 dest + 3 pdest bits");
        assert_eq!(NEUTRAL_ACE_MASK.count_ones(), 6, "6 opcode bits");
        assert_eq!(KIND_WIDTHS.iter().sum::<u64>(), 64);
        for (i, kind) in BitKind::ALL.iter().enumerate() {
            assert_eq!(KIND_MASKS[i], field_mask(*kind));
            assert_eq!(
                KIND_WIDTHS[i],
                ses_isa::bits_of_kind(*kind).count() as u64
            );
        }
    }

    #[test]
    fn lifetime_phase_boundary() {
        let s = LifetimeSpan::of(&residency(10, Some(25), 30));
        assert_eq!(s.boundary(), 25);
        assert_eq!(s.live_range(), Some((10, 25)));
        assert_eq!(s.tail_range(), Some((25, 30)));
        assert_eq!(s.occupancy(), (10, 30));
        assert_eq!(s.valid_cycles(), 20);
        assert_eq!(s.exposed_cycles(), 15);
    }

    #[test]
    fn never_read_is_all_tail() {
        let s = LifetimeSpan::of(&residency(10, None, 30));
        assert_eq!(s.live_range(), None);
        assert_eq!(s.tail_range(), Some((10, 30)));
        assert_eq!(s.exposed_cycles(), 0);
    }

    #[test]
    fn read_at_dealloc_has_no_tail() {
        let s = LifetimeSpan::of(&residency(10, Some(30), 30));
        assert_eq!(s.live_range(), Some((10, 30)));
        assert_eq!(s.tail_range(), None);
    }

    #[test]
    fn span_classes_partition_the_word() {
        for class in [
            SpanClass::Ace,
            SpanClass::Unace(FalseDueCause::WrongPath),
            SpanClass::NeutralSplit,
            SpanClass::DeadSplit(FalseDueCause::DeadFddReg),
        ] {
            let ace = class.ace_width();
            let unace = if class.unace_cause().is_some() {
                64 - ace
            } else {
                0
            };
            assert_eq!(
                ace + unace,
                if class == SpanClass::Ace { 64 } else { 64 },
                "exposed classes account for every bit"
            );
        }
        assert_eq!(SpanClass::Unread.ace_width(), 0);
        assert_eq!(SpanClass::Unread.unace_cause(), None);
    }

    #[test]
    fn segments_tile_the_lifetime() {
        let dead = DeadMap::analyze(
            &ses_arch::Emulator::new(&ses_isa::Program::new(vec![
                Instruction::movi(Reg::new(1), 5),
                Instruction::out(Reg::new(1)),
                Instruction::halt(),
            ]))
            .run(1000)
            .unwrap(),
        );
        let rs = ResidencySpans::derive(&residency(10, Some(25), 30), &dead);
        rs.check().unwrap();
        assert_eq!(rs.segments().count(), 2);
        let b = rs.bits();
        assert_eq!(b.valid_total(), 20 * 64);
        assert_eq!(b.unread, 5 * 64);
    }
}
