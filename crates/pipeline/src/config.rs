//! Pipeline configuration.

use serde::{Deserialize, Serialize};
use ses_mem::{HierarchyConfig, Level};
use ses_types::ConfigError;

/// Exposure-reduction action configuration (the paper's §3.1 "triggers and
/// actions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SquashPolicy {
    /// Never squash (the paper's baseline).
    #[default]
    None,
    /// Squash all instructions younger than a load that misses in the given
    /// level (the paper studies `L0` and `L1` triggers).
    OnLoadMiss(Level),
}

/// Front-end throttling: stall fetch while a load miss at the given level
/// is outstanding (the paper's second action; reported as adding little on
/// top of squashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ThrottlePolicy {
    /// Never throttle.
    #[default]
    None,
    /// Stall fetch while a load miss in the given level is outstanding.
    OnLoadMiss(Level),
}

/// Per-class issue-port limits (an Itanium®2-class machine issues at most
/// a few memory and branch operations per cycle even at full width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConfig {
    /// Memory operations (loads/stores/prefetches) per cycle.
    pub mem: usize,
    /// Control transfers per cycle.
    pub branch: usize,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig { mem: 2, branch: 1 }
    }
}

/// Issue discipline of the modelled back end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum IssueOrder {
    /// Strict in-order issue; an L0-missing load stalls everything younger
    /// (the paper's machine).
    #[default]
    InOrder,
    /// Out-of-order issue: any ready queue entry may issue, and only true
    /// dependants wait on a load miss. The paper predicts squashing is
    /// "not as pronounced" here; the ablation bench measures it.
    OutOfOrder,
}

/// Direction-predictor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PredictorKind {
    /// Gshare: PC xor global history indexes 2-bit counters.
    #[default]
    Gshare,
    /// Bimodal: PC-indexed 2-bit counters, no history.
    Bimodal,
    /// Statically predict taken (maximum wrong-path generation; useful for
    /// ablating wrong-path exposure).
    StaticTaken,
}

/// Branch-predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Predictor family.
    pub kind: PredictorKind,
    /// log2 of the pattern-history-table size.
    pub pht_bits: u32,
    /// Global-history length in branches (gshare only).
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            kind: PredictorKind::Gshare,
            pht_bits: 12,
            history_bits: 8,
        }
    }
}

/// Full configuration of the timing model.
///
/// Defaults model the paper's machine (§5): 6-wide in-order issue, a
/// 64-entry instruction queue, a deep (25-stage-class) pipeline represented
/// by an 8-cycle front end, and the default cache hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Fetch/issue/retire width in instructions per cycle.
    pub width: usize,
    /// Instruction-queue capacity (the structure under study).
    pub iq_entries: usize,
    /// Cycles from fetch to instruction-queue insertion; also the refill
    /// penalty after a squash or misprediction recovery.
    pub frontend_depth: u64,
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Issue discipline.
    pub issue_order: IssueOrder,
    /// Per-class issue-port limits.
    pub ports: PortConfig,
    /// Squash action.
    pub squash: SquashPolicy,
    /// Fetch-throttle action.
    pub throttle: ThrottlePolicy,
    /// Period of the synthetic front-end stall pattern in cycles (0
    /// disables it). Together with `ifetch_stall_cycles` this models the
    /// instruction-fetch hiccups (I-cache/ITLB misses, taken-branch
    /// bubbles) that give the paper's machine its ~30 % queue idle time;
    /// the loops our synthesiser emits are otherwise too front-end-friendly.
    pub ifetch_stall_period: u64,
    /// Length of each synthetic front-end stall in cycles.
    pub ifetch_stall_cycles: u64,
    /// Scrub the instruction queue every this many cycles (0 disables):
    /// a background parity sweep that detects latent single-bit faults
    /// before a second strike can accumulate into an undetectable even
    /// flip — the defence §2 attributes to scrubbing. Only meaningful in
    /// fault-injection runs.
    pub scrub_period: u64,
    /// Warm the cache hierarchy with the trace's *reused* blocks before
    /// timing begins. The paper measures 100M-instruction SimPoint slices
    /// where cold-start effects are negligible; priming reused blocks
    /// reproduces that steady state while leaving streaming (single-touch)
    /// blocks cold, so memory-bound workloads stay memory-bound.
    pub warm_caches: bool,
    /// Hard cycle budget (guards against pathological stalls).
    pub max_cycles: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            width: 6,
            iq_entries: 64,
            frontend_depth: 8,
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorConfig::default(),
            issue_order: IssueOrder::InOrder,
            ports: PortConfig::default(),
            squash: SquashPolicy::None,
            throttle: ThrottlePolicy::None,
            ifetch_stall_period: 80,
            ifetch_stall_cycles: 48,
            scrub_period: 0,
            warm_caches: true,
            max_cycles: 200_000_000,
        }
    }
}

impl PipelineConfig {
    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 {
            return Err(ConfigError::new("width must be at least 1"));
        }
        if self.ports.mem == 0 || self.ports.branch == 0 {
            return Err(ConfigError::new("issue ports must be at least 1 each"));
        }
        if self.iq_entries == 0 {
            return Err(ConfigError::new("instruction queue needs at least 1 entry"));
        }
        if self.frontend_depth == 0 {
            return Err(ConfigError::new("front end must be at least 1 cycle deep"));
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::new("cycle budget must be positive"));
        }
        Ok(())
    }

    /// Convenience: this config with a squash trigger installed.
    pub fn with_squash(mut self, level: Level) -> Self {
        self.squash = SquashPolicy::OnLoadMiss(level);
        self
    }

    /// Convenience: this config with fetch throttling installed.
    pub fn with_throttle(mut self, level: Level) -> Self {
        self.throttle = ThrottlePolicy::OnLoadMiss(level);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_matches_paper() {
        let c = PipelineConfig::default();
        c.validate().unwrap();
        assert_eq!(c.width, 6);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.squash, SquashPolicy::None);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_configs_rejected() {
        let mut c = PipelineConfig::default();
        c.width = 0;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::default();
        c.iq_entries = 0;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::default();
        c.frontend_depth = 0;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::default();
        c.max_cycles = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_set_policies() {
        let c = PipelineConfig::default()
            .with_squash(Level::L1)
            .with_throttle(Level::L0);
        assert_eq!(c.squash, SquashPolicy::OnLoadMiss(Level::L1));
        assert_eq!(c.throttle, ThrottlePolicy::OnLoadMiss(Level::L0));
    }
}
