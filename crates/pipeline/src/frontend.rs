//! Front end: trace-driven fetch with branch prediction and wrong-path
//! synthesis.
//!
//! Correct-path instructions come from the functional trace. When the
//! direction predictor disagrees with a conditional branch's actual
//! outcome, the front end starts fetching *wrong-path* instructions from
//! the static program image at the mispredicted target — mirroring the
//! paper's methodology ("for wrong paths, we fetch the mis-speculated
//! instructions, but do not have the correct memory addresses") — until the
//! engine reports the branch resolved.

use std::collections::VecDeque;

use ses_arch::DynInstr;
use ses_isa::{static_target, Instruction, Opcode, Program, INSTR_BYTES};

/// Depth of the return-address stack.
const RAS_DEPTH: usize = 8;
use ses_types::{Addr, Cycle, SeqNo};

use crate::config::PipelineConfig;
use crate::predictor::Gshare;
use crate::residency::Occupant;

/// An instruction travelling down the front-end pipe towards the
/// instruction queue.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInstr {
    /// Correct-path (with trace index) or wrong-path.
    pub occupant: Occupant,
    /// The instruction bits to be stored in the queue.
    pub instr: Instruction,
    /// Fetch order.
    pub seq: SeqNo,
    /// Whether the qualifying predicate evaluates false (correct path).
    pub falsely_predicated: bool,
    /// Whether this is a conditional branch the predictor got wrong; its
    /// completion triggers misprediction recovery.
    pub mispredicted_branch: bool,
    /// Cycle at which the instruction reaches the queue-insert stage.
    pub ready_at: Cycle,
}

/// Front-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Correct-path instructions fetched (including refetches after
    /// squash).
    pub fetched: u64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
    /// Cycles fetch was blocked by throttling.
    pub throttled_cycles: u64,
    /// Returns predicted via the RAS.
    pub ras_predictions: u64,
    /// Returns the RAS got wrong (stack overflow or corruption).
    pub ras_mispredictions: u64,
}

/// The fetch engine.
pub struct FrontEnd<'a> {
    program: &'a Program,
    trace: &'a [DynInstr],
    predictor: Gshare,
    /// Next trace index to fetch on the correct path.
    cursor: usize,
    /// `Some(pc)` while fetching the wrong path; `None` within wrong-path
    /// mode means the wrong path ran off the image (fetch bubbles).
    wrong_pc: Option<Addr>,
    /// Whether an unresolved misprediction has the front end on the wrong
    /// path.
    wrong_path_active: bool,
    pipe: VecDeque<FetchedInstr>,
    pipe_capacity: usize,
    resume_at: Cycle,
    /// Set by the engine while a throttling miss is outstanding.
    pub throttled: bool,
    next_seq: SeqNo,
    width: usize,
    depth: u64,
    /// Return-address stack: call targets are static, but return targets
    /// are register-indirect and must be predicted.
    ras: Vec<Addr>,
    stats: FrontEndStats,
}

impl<'a> FrontEnd<'a> {
    /// Creates a front end positioned at the start of the trace.
    pub fn new(config: &PipelineConfig, program: &'a Program, trace: &'a [DynInstr]) -> Self {
        FrontEnd {
            program,
            trace,
            predictor: Gshare::new(config.predictor),
            cursor: 0,
            wrong_pc: None,
            wrong_path_active: false,
            pipe: VecDeque::new(),
            pipe_capacity: config.width * config.frontend_depth.max(1) as usize,
            resume_at: Cycle::ZERO,
            throttled: false,
            next_seq: SeqNo::FIRST,
            width: config.width,
            depth: config.frontend_depth,
            ras: Vec::with_capacity(RAS_DEPTH),
            stats: FrontEndStats::default(),
        }
    }

    /// Whether every correct-path instruction has been fetched and the pipe
    /// is empty.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.trace.len() && self.pipe.is_empty()
    }

    /// Pops instructions that have reached the queue-insert stage, at most
    /// `limit`.
    pub fn take_ready(&mut self, now: Cycle, limit: usize) -> Vec<FetchedInstr> {
        let mut out = Vec::new();
        while out.len() < limit {
            match self.pipe.front() {
                Some(f) if f.ready_at <= now => out.push(self.pipe.pop_front().unwrap()),
                _ => break,
            }
        }
        out
    }

    /// Fetches up to `width` instructions this cycle, returning how many
    /// (correct-path, wrong-path) instructions entered the pipe.
    pub fn fetch(&mut self, now: Cycle) -> (u64, u64) {
        if now < self.resume_at {
            return (0, 0);
        }
        if self.throttled {
            self.stats.throttled_cycles += 1;
            return (0, 0);
        }
        let before = (self.stats.fetched, self.stats.wrong_path_fetched);
        let ready_at = now + self.depth;
        for _ in 0..self.width {
            if self.pipe.len() >= self.pipe_capacity {
                break;
            }
            if self.wrong_path_active {
                if !self.fetch_wrong_path(ready_at) {
                    break;
                }
            } else if !self.fetch_correct_path(ready_at) {
                break;
            }
        }
        (
            self.stats.fetched - before.0,
            self.stats.wrong_path_fetched - before.1,
        )
    }

    fn fetch_correct_path(&mut self, ready_at: Cycle) -> bool {
        let Some(d) = self.trace.get(self.cursor) else {
            return false;
        };
        self.cursor += 1;
        let mut mispredicted = false;
        if d.instr.op.is_conditional_branch() {
            let taken = d.taken.unwrap_or(false);
            let correct = self.predictor.update(d.pc, taken);
            if !correct {
                mispredicted = true;
                // The machine fetches down the predicted (wrong) path.
                self.wrong_path_active = true;
                self.wrong_pc = if taken {
                    // Predicted not-taken: wrong path is the fall-through.
                    Some(d.pc.offset(INSTR_BYTES))
                } else {
                    // Predicted taken: wrong path is the branch target.
                    static_target(&d.instr, d.pc)
                };
            }
        } else if d.instr.op == Opcode::Call && d.executed {
            // Push the return address; a full stack drops its oldest entry.
            if self.ras.len() == RAS_DEPTH {
                self.ras.remove(0);
            }
            self.ras.push(d.pc.offset(INSTR_BYTES));
        } else if d.instr.op == Opcode::Ret && d.executed {
            // Returns are register-indirect: predict via the RAS.
            let predicted = self.ras.pop();
            self.stats.ras_predictions += 1;
            if predicted != Some(d.next_pc) {
                self.stats.ras_mispredictions += 1;
                mispredicted = true;
                self.wrong_path_active = true;
                // The machine fetches wherever the (wrong) RAS entry
                // points, or falls through on an empty stack.
                self.wrong_pc = Some(predicted.unwrap_or(d.pc.offset(INSTR_BYTES)));
            }
        }
        self.pipe.push_back(FetchedInstr {
            occupant: Occupant::CorrectPath {
                trace_idx: d.index,
            },
            instr: d.instr,
            seq: self.next_seq.bump(),
            falsely_predicated: !d.executed,
            mispredicted_branch: mispredicted,
            ready_at,
        });
        self.stats.fetched += 1;
        // A fetch group ends at a taken control transfer (the fetch unit
        // must redirect); misprediction handling continues on the wrong
        // path next call within this same cycle.
        let redirected = d.next_pc != d.pc.offset(INSTR_BYTES);
        !redirected || mispredicted
    }

    fn fetch_wrong_path(&mut self, ready_at: Cycle) -> bool {
        let Some(pc) = self.wrong_pc else {
            // Wrong path ran off the image: fetch bubbles until recovery.
            return false;
        };
        let Some(&instr) = self.program.instr_at(pc) else {
            self.wrong_pc = None;
            return false;
        };
        self.pipe.push_back(FetchedInstr {
            occupant: Occupant::WrongPath,
            instr,
            seq: self.next_seq.bump(),
            falsely_predicated: false,
            mispredicted_branch: false,
            ready_at,
        });
        self.stats.wrong_path_fetched += 1;
        // Follow the wrong path: take unconditional transfers, predict
        // conditional branches not-taken, stop at returns and halts.
        self.wrong_pc = match instr.op {
            Opcode::Jmp | Opcode::Call => static_target(&instr, pc),
            Opcode::Ret | Opcode::Halt => None,
            _ => Some(pc.offset(INSTR_BYTES)),
        };
        true
    }

    /// Redirects fetch to `trace_idx`, clearing the pipe and any wrong-path
    /// mode; fetch resumes at `resume_at`. Used for misprediction recovery
    /// (`trace_idx` = branch + 1) and squash refetch (`trace_idx` =
    /// load + 1).
    pub fn redirect(&mut self, trace_idx: u64, resume_at: Cycle) {
        self.cursor = trace_idx as usize;
        self.pipe.clear();
        self.wrong_pc = None;
        self.wrong_path_active = false;
        self.resume_at = resume_at;
    }

    /// Whether the front end is currently fetching (or stalled on) the
    /// wrong path.
    pub fn on_wrong_path(&self) -> bool {
        self.wrong_path_active
    }

    /// Fetch statistics so far.
    pub fn stats(&self) -> FrontEndStats {
        self.stats
    }

    /// Prediction statistics over conditional branches *and* returns:
    /// (predictions, mispredictions).
    pub fn predictor_stats(&self) -> (u64, u64) {
        (
            self.predictor.predictions() + self.stats.ras_predictions,
            self.predictor.mispredictions() + self.stats.ras_mispredictions,
        )
    }

    /// Captures the front end's mutable state (everything except the
    /// program/trace references and configuration-derived constants).
    pub(crate) fn snapshot_state(&self) -> FrontEndState {
        FrontEndState {
            predictor: self.predictor.clone(),
            cursor: self.cursor,
            wrong_pc: self.wrong_pc,
            wrong_path_active: self.wrong_path_active,
            pipe: self.pipe.clone(),
            resume_at: self.resume_at,
            throttled: self.throttled,
            next_seq: self.next_seq,
            ras: self.ras.clone(),
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Self::snapshot_state`]. The front end
    /// must have been built with the same configuration, program, and
    /// trace as the captured one.
    pub(crate) fn restore_state(&mut self, state: &FrontEndState) {
        self.predictor = state.predictor.clone();
        self.cursor = state.cursor;
        self.wrong_pc = state.wrong_pc;
        self.wrong_path_active = state.wrong_path_active;
        self.pipe = state.pipe.clone();
        self.resume_at = state.resume_at;
        self.throttled = state.throttled;
        self.next_seq = state.next_seq;
        self.ras = state.ras.clone();
        self.stats = state.stats;
    }
}

/// Lifetime-free image of the front end's mutable state, stored inside a
/// pipeline checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct FrontEndState {
    predictor: Gshare,
    cursor: usize,
    wrong_pc: Option<Addr>,
    wrong_path_active: bool,
    pipe: VecDeque<FetchedInstr>,
    resume_at: Cycle,
    throttled: bool,
    next_seq: SeqNo,
    ras: Vec<Addr>,
    stats: FrontEndStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::Emulator;
    use ses_isa::{Instruction, ProgramBuilder};
    use ses_types::{Pred, Reg};

    fn loopy_program() -> Program {
        // A loop whose backward branch alternates taken 7 times then exits.
        let mut b = ProgramBuilder::new();
        b.push(Instruction::movi(Reg::new(1), 8));
        let top = b.new_label();
        b.bind(top);
        b.push(Instruction::addi(Reg::new(1), Reg::new(1), -1));
        b.push(Instruction::cmp_lt(Pred::new(1), Reg::ZERO, Reg::new(1)));
        b.branch(Pred::new(1), top);
        b.push(Instruction::out(Reg::new(1)));
        b.push(Instruction::halt());
        b.build().unwrap()
    }

    /// Drives the front end, performing instant misprediction recovery as
    /// the engine would once each mispredicted branch resolves.
    fn fetch_all(fe: &mut FrontEnd<'_>, cycles: u64) -> Vec<FetchedInstr> {
        let mut got = Vec::new();
        for c in 0..cycles {
            let now = Cycle::new(c);
            fe.fetch(now);
            let batch = fe.take_ready(now, 64);
            let redirect = batch
                .iter()
                .find(|f| f.mispredicted_branch)
                .and_then(|f| f.occupant_trace());
            got.extend(batch);
            if let Some(idx) = redirect {
                fe.redirect(idx + 1, now.next());
            }
        }
        got
    }

    #[test]
    fn fetches_whole_trace_in_order() {
        let p = loopy_program();
        let trace = Emulator::new(&p).run(1000).unwrap();
        let cfg = PipelineConfig::default();
        let mut fe = FrontEnd::new(&cfg, &p, trace.entries());
        let got = fetch_all(&mut fe, 200);
        let correct: Vec<u64> = got.iter().filter_map(|f| f.occupant_trace()).collect();
        // All trace indices present, in order (wrong-path may interleave).
        let expected: Vec<u64> = (0..trace.len() as u64).collect();
        assert_eq!(correct, expected);
        assert!(fe.exhausted());
    }

    impl FetchedInstr {
        fn occupant_trace(&self) -> Option<u64> {
            match self.occupant {
                Occupant::CorrectPath { trace_idx } => Some(trace_idx),
                Occupant::WrongPath => None,
            }
        }
    }

    #[test]
    fn frontend_depth_delays_arrival() {
        let p = loopy_program();
        let trace = Emulator::new(&p).run(1000).unwrap();
        let cfg = PipelineConfig::default();
        let mut fe = FrontEnd::new(&cfg, &p, trace.entries());
        fe.fetch(Cycle::ZERO);
        assert!(
            fe.take_ready(Cycle::new(cfg.frontend_depth - 1), 64).is_empty(),
            "nothing arrives before the front-end depth elapses"
        );
        assert!(!fe.take_ready(Cycle::new(cfg.frontend_depth), 64).is_empty());
    }

    #[test]
    fn mispredict_spawns_wrong_path_then_redirect_recovers() {
        let p = loopy_program();
        let trace = Emulator::new(&p).run(1000).unwrap();
        let cfg = PipelineConfig::default();
        let mut fe = FrontEnd::new(&cfg, &p, trace.entries());
        // Fetch until we see a mispredicted branch.
        let mut mis_at = None;
        'outer: for c in 0..200u64 {
            fe.fetch(Cycle::new(c));
            for f in fe.take_ready(Cycle::new(c), 64) {
                if f.mispredicted_branch {
                    mis_at = Some(f);
                    break 'outer;
                }
            }
        }
        let branch = mis_at.expect("fresh predictor must mispredict somewhere");
        assert!(fe.on_wrong_path());
        // Recovery: resume after the branch.
        let idx = branch.occupant_trace().unwrap();
        fe.redirect(idx + 1, Cycle::new(300));
        assert!(!fe.on_wrong_path());
        fe.fetch(Cycle::new(299));
        assert!(
            fe.take_ready(Cycle::new(320), 64).is_empty(),
            "fetch stalled until resume_at"
        );
        fe.fetch(Cycle::new(300));
        let refetched = fe.take_ready(Cycle::new(300 + cfg.frontend_depth), 64);
        assert_eq!(refetched[0].occupant_trace(), Some(idx + 1));
    }

    #[test]
    fn throttling_blocks_fetch_and_counts() {
        let p = loopy_program();
        let trace = Emulator::new(&p).run(1000).unwrap();
        let cfg = PipelineConfig::default();
        let mut fe = FrontEnd::new(&cfg, &p, trace.entries());
        fe.throttled = true;
        fe.fetch(Cycle::ZERO);
        assert!(fe.take_ready(Cycle::new(50), 64).is_empty());
        assert_eq!(fe.stats().throttled_cycles, 1);
        fe.throttled = false;
        fe.fetch(Cycle::new(1));
        assert!(!fe.take_ready(Cycle::new(50), 64).is_empty());
    }

    #[test]
    fn wrong_path_stops_at_halt() {
        // Program: mispredictable branch directly before halt; wrong path
        // into halt stops fetching.
        let p = loopy_program();
        let trace = Emulator::new(&p).run(1000).unwrap();
        let cfg = PipelineConfig::default();
        let mut fe = FrontEnd::new(&cfg, &p, trace.entries());
        let got = fetch_all(&mut fe, 500);
        // However many wrong-path instructions were fetched, the stream
        // must terminate (no infinite wrong path).
        assert!(got.len() < 5000);
    }
}
