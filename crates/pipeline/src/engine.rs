//! The cycle-by-cycle timing engine.
//!
//! An in-order, `width`-wide machine replaying the functional trace:
//!
//! 1. **recover** — a completed mispredicted branch flushes the wrong path
//!    and redirects fetch;
//! 2. **retire** — up to `width` oldest completed entries leave the queue
//!    (this is where the π-bit retire-unit logic and PET logging run);
//! 3. **issue** — up to `width` ready entries issue in order; loads access
//!    the cache hierarchy; parity is checked here (the entry is *read*);
//!    load misses fire the squash/throttle triggers;
//! 4. **insert** — instructions arriving from the front-end pipe claim
//!    free queue slots;
//! 5. **fetch** — the front end follows the predicted path;
//! 6. **inject** — a pending fault flips its bit once the injection cycle
//!    is reached.

use std::sync::Arc;

use ses_arch::{DynInstr, ExecutionTrace};
use ses_isa::{Opcode, Program};
use ses_mem::{AccessKind, Hierarchy, HierarchySnapshot, Level};
use ses_types::{Cycle, Pred, Reg, SeqNo};

use crate::config::{IssueOrder, PipelineConfig, SquashPolicy, ThrottlePolicy};
use crate::detect::{DetectionModel, Detector, FaultOutcome, FaultSpec};
use crate::frontend::{FetchedInstr, FrontEnd, FrontEndState};
use crate::iq::{InstructionQueue, IqEntry};
use crate::residency::{Occupant, Residency, ResidencyEnd};
use crate::result::PipelineResult;
use crate::telemetry::StageCounters;

/// A scheduled misprediction recovery.
#[derive(Debug, Clone, Copy)]
struct Recovery {
    at: Cycle,
    branch_seq: SeqNo,
    resume_trace_idx: u64,
}

/// The timing simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate with
    /// [`PipelineConfig::validate`] first to handle errors gracefully.
    pub fn new(config: PipelineConfig) -> Self {
        config.validate().expect("invalid pipeline configuration");
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the timing model over a functional trace.
    pub fn run(&self, program: &Program, trace: &ExecutionTrace) -> PipelineResult {
        self.run_with_fault(program, trace, None, DetectionModel::None)
    }

    /// Runs the fault-free timing model while collecting per-stage
    /// telemetry bucketed by `bucket_size` cycles. Timing is identical to
    /// [`Pipeline::run`]; only the counters are extra.
    pub fn run_instrumented(
        &self,
        program: &Program,
        trace: &ExecutionTrace,
        detection: DetectionModel,
        bucket_size: u64,
    ) -> (PipelineResult, StageCounters) {
        let mut engine = Engine::new(&self.config, program, trace, None, detection);
        engine.stages = Some(StageCounters::new(bucket_size));
        if engine.cfg.warm_caches {
            engine.warm_caches();
        }
        let (result, _, stages, _) = engine.run_core(Cycle::ZERO, 0);
        (result, stages.expect("instrumented run keeps its collector"))
    }

    /// Runs the timing model with an optional injected fault under the
    /// given detection model.
    pub fn run_with_fault(
        &self,
        program: &Program,
        trace: &ExecutionTrace,
        fault: Option<FaultSpec>,
        detection: DetectionModel,
    ) -> PipelineResult {
        Engine::new(&self.config, program, trace, fault, detection).run()
    }

    /// Runs the fault-free timing model under `detection`, capturing a
    /// resumable [`Snapshot`] every `interval` cycles (cycle 0 included).
    ///
    /// The detection model does not change timing in the absence of a
    /// fault, but its bookkeeping (e.g. the PET buffer's commit log) is
    /// part of the captured state — pass the same model the fault runs
    /// resumed from these snapshots will use.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn run_with_snapshots(
        &self,
        program: &Program,
        trace: &ExecutionTrace,
        detection: DetectionModel,
        interval: u64,
    ) -> (PipelineResult, Vec<Snapshot>) {
        assert!(interval > 0, "snapshot interval must be positive");
        Engine::new(&self.config, program, trace, None, detection).run_capturing(interval)
    }

    /// Resumes a run from `snapshot`, injecting `fault`. With
    /// `fault = None` this replays the tail of the capture run
    /// bit-identically (useful for validation).
    ///
    /// The program, trace, and pipeline configuration must match the ones
    /// the snapshot was captured with; the fault, if any, must not strike
    /// before the snapshot cycle.
    ///
    /// # Panics
    ///
    /// Panics if `fault` strikes before the snapshot cycle.
    pub fn resume(
        &self,
        program: &Program,
        trace: &ExecutionTrace,
        snapshot: &Snapshot,
        fault: Option<FaultSpec>,
    ) -> PipelineResult {
        if let Some(f) = fault {
            assert!(
                f.cycle >= snapshot.cycle,
                "fault at {:?} strikes before snapshot cycle {:?}",
                f.cycle,
                snapshot.cycle
            );
        }
        Engine::from_snapshot(&self.config, program, trace, snapshot, fault)
            .run_core(snapshot.cycle, 0)
            .0
    }

    /// Runs the fault-free timing model under `detection` while recording
    /// the per-cycle state fingerprint stream consumed by convergence
    /// pruning, capturing a [`Snapshot`] every `interval` cycles
    /// (`interval = 0` captures none). `fingerprints[c]` is the overlay
    /// fingerprint at the top of cycle `c`; the stream's length is the
    /// run's cycle count. The fingerprint covers only fault-reachable
    /// state (commit count, occupied queue words, π bits), none of which
    /// a detection model touches on a fault-free run, so the stream is
    /// detection-model-independent.
    pub fn run_golden_fingerprinted(
        &self,
        program: &Program,
        trace: &ExecutionTrace,
        detection: DetectionModel,
        interval: u64,
    ) -> (PipelineResult, Vec<Snapshot>, Vec<u64>) {
        let mut engine = Engine::new(&self.config, program, trace, None, detection);
        engine.fingerprints = Some(Vec::new());
        if engine.cfg.warm_caches {
            engine.warm_caches();
        }
        let (result, snapshots, _, fps) = engine.run_core(Cycle::ZERO, interval);
        (result, snapshots, fps.expect("fingerprint collection was enabled"))
    }

    /// Prepares a batch base for one checkpoint window: the engine state
    /// at the window's start, restored **once** and then forked per fault
    /// by [`PrunedWindow::run_fault`]. `snapshot = None` means the window
    /// starts at cycle 0 from a fresh (cache-warmed) engine under
    /// `detection`; with a snapshot, the detector state (and with it the
    /// detection model) comes from the snapshot and `detection` is
    /// ignored, mirroring [`Pipeline::resume`].
    pub fn pruned_window<'a>(
        &'a self,
        program: &'a Program,
        trace: &'a ExecutionTrace,
        snapshot: Option<&Snapshot>,
        detection: DetectionModel,
    ) -> PrunedWindow<'a> {
        let (base, start) = match snapshot {
            Some(s) => (
                Engine::from_snapshot_inner(&self.config, program, trace, s, None, false),
                s.cycle(),
            ),
            None => {
                let mut e = Engine::new(&self.config, program, trace, None, detection);
                if e.cfg.warm_caches {
                    e.warm_caches();
                }
                (e, Cycle::ZERO)
            }
        };
        PrunedWindow {
            program,
            trace,
            base,
            start,
        }
    }
}

/// The outcome of one convergence-pruned fault replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunedRun {
    /// The fault's resolved outcome — identical to what a full replay
    /// would report (the pruning gate only fires when the verdict is
    /// already decided).
    pub outcome: FaultOutcome,
    /// The cycle the replay stopped: the reconvergence cycle when
    /// `pruned`, otherwise the run's natural end.
    pub end_cycle: u64,
    /// Whether the replay stopped at the reconvergence gate rather than
    /// running to completion.
    pub pruned: bool,
}

/// A restored-once, forked-per-fault batch base for all injections whose
/// strike cycle falls in one checkpoint window.
///
/// Built by [`Pipeline::pruned_window`]; each [`PrunedWindow::run_fault`]
/// clones the base state (cheap: the base has an empty residency log) and
/// replays with convergence pruning. Restoring the snapshot once per
/// window instead of once per fault amortizes the dominant restore cost
/// across the whole batch.
pub struct PrunedWindow<'a> {
    program: &'a Program,
    trace: &'a ExecutionTrace,
    base: Engine<'a>,
    start: Cycle,
}

impl PrunedWindow<'_> {
    /// The cycle this window's base state corresponds to; every fault run
    /// from this window replays `[start_cycle, end_cycle)`.
    pub fn start_cycle(&self) -> u64 {
        self.start.as_u64()
    }

    /// Replays `fault` from the window base with convergence pruning
    /// against the golden fingerprint stream `golden_fps` (as produced by
    /// [`Pipeline::run_golden_fingerprinted`]).
    ///
    /// # Panics
    ///
    /// Panics if `fault` strikes before the window's start cycle.
    pub fn run_fault(&self, fault: FaultSpec, golden_fps: &[u64]) -> PrunedRun {
        assert!(
            fault.cycle >= self.start,
            "fault at {:?} strikes before window start {:?}",
            fault.cycle,
            self.start
        );
        self.base
            .fork(self.program, self.trace, fault)
            .run_pruned(self.start, golden_fps)
    }
}

/// A resumable image of the timing engine at the top of a cycle.
///
/// Captured by [`Pipeline::run_with_snapshots`] during a fault-free run
/// and consumed by [`Pipeline::resume`], which replays the remainder of
/// the run bit-identically with an optional fault injected at or after
/// the snapshot cycle. Snapshots are cheap: cache contents are stored
/// compactly (occupied lines only) and the capture run's residency log is
/// shared across all its snapshots rather than copied into each.
#[derive(Clone)]
pub struct Snapshot {
    cycle: Cycle,
    frontend: FrontEndState,
    /// Queue image with an emptied residency log; `residency_prefix`
    /// locates the pre-snapshot log inside `residency_log`.
    iq: InstructionQueue,
    residency_prefix: usize,
    /// The capture run's full residency log, shared by all its snapshots
    /// (stitched in after the capture run finishes).
    residency_log: Arc<Vec<Residency>>,
    hierarchy: HierarchySnapshot,
    reg_ready: [Cycle; Reg::COUNT],
    pred_ready: [Cycle; Pred::COUNT],
    committed: u64,
    recovery: Option<Recovery>,
    miss_outstanding_until: Cycle,
    stall_until: Cycle,
    squashes: u64,
    squashed_instrs: u64,
    detector: Detector,
}

impl Snapshot {
    /// The cycle at whose top this snapshot was captured; a resumed run
    /// re-executes from exactly this cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("residency_prefix", &self.residency_prefix)
            .finish_non_exhaustive()
    }
}

struct Engine<'a> {
    cfg: &'a PipelineConfig,
    trace: &'a [DynInstr],
    frontend: FrontEnd<'a>,
    iq: InstructionQueue,
    hierarchy: Hierarchy,
    reg_ready: [Cycle; Reg::COUNT],
    pred_ready: [Cycle; Pred::COUNT],
    committed: u64,
    recovery: Option<Recovery>,
    /// Cycle until which a triggering load miss is outstanding (throttle).
    miss_outstanding_until: Cycle,
    /// In-order stall: issue is blocked behind an outstanding L0-missing
    /// load until its data returns (the paper's premise that "data cache
    /// misses in in-order pipelines ... always result in pipeline stalls").
    stall_until: Cycle,
    squashes: u64,
    squashed_instrs: u64,
    fault: Option<FaultSpec>,
    detector: Detector,
    stop_early: bool,
    /// Per-stage telemetry; `None` keeps collection zero-cost.
    stages: Option<StageCounters>,
    /// Per-cycle state fingerprints; `None` keeps collection zero-cost.
    fingerprints: Option<Vec<u64>>,
}

/// FNV-1a step over one 64-bit quantity (word-at-a-time: the stream is
/// compared for equality, never used as a table hash, so the weaker
/// per-word mixing is fine and ~8x cheaper than byte-wise FNV).
#[inline]
fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a PipelineConfig,
        program: &'a Program,
        trace: &'a ExecutionTrace,
        fault: Option<FaultSpec>,
        detection: DetectionModel,
    ) -> Self {
        Engine {
            cfg,
            trace: trace.entries(),
            frontend: FrontEnd::new(cfg, program, trace.entries()),
            iq: InstructionQueue::new(cfg.iq_entries),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            reg_ready: [Cycle::ZERO; Reg::COUNT],
            pred_ready: [Cycle::ZERO; Pred::COUNT],
            committed: 0,
            recovery: None,
            miss_outstanding_until: Cycle::ZERO,
            stall_until: Cycle::ZERO,
            squashes: 0,
            squashed_instrs: 0,
            fault,
            detector: Detector::new(detection),
            stop_early: false,
            stages: None,
            fingerprints: None,
        }
    }

    /// Rebuilds an engine mid-run from a snapshot, with an optional fault
    /// still to inject. The caller continues with
    /// [`Engine::run_core`]`(snapshot.cycle, 0)`.
    fn from_snapshot(
        cfg: &'a PipelineConfig,
        program: &'a Program,
        trace: &'a ExecutionTrace,
        snapshot: &Snapshot,
        fault: Option<FaultSpec>,
    ) -> Self {
        Engine::from_snapshot_inner(cfg, program, trace, snapshot, fault, true)
    }

    /// [`Engine::from_snapshot`], optionally skipping the pre-snapshot
    /// residency-log copy. Copying that log is the dominant cost of a
    /// restore; a pruned-window run never consumes its residencies, so the
    /// batched executor restores lean (`with_residencies = false`). A lean
    /// engine's `into_residencies` is truncated to the post-restore tail
    /// and must never feed AVF analysis.
    fn from_snapshot_inner(
        cfg: &'a PipelineConfig,
        program: &'a Program,
        trace: &'a ExecutionTrace,
        snapshot: &Snapshot,
        fault: Option<FaultSpec>,
        with_residencies: bool,
    ) -> Self {
        let mut engine = Engine::new(cfg, program, trace, fault, DetectionModel::None);
        engine.frontend.restore_state(&snapshot.frontend);
        engine.iq = snapshot.iq.clone_without_residencies();
        if with_residencies {
            engine
                .iq
                .set_residencies(snapshot.residency_log[..snapshot.residency_prefix].to_vec());
        }
        engine.hierarchy.restore(&snapshot.hierarchy);
        engine.reg_ready = snapshot.reg_ready;
        engine.pred_ready = snapshot.pred_ready;
        engine.committed = snapshot.committed;
        engine.recovery = snapshot.recovery;
        engine.miss_outstanding_until = snapshot.miss_outstanding_until;
        engine.stall_until = snapshot.stall_until;
        engine.squashes = snapshot.squashes;
        engine.squashed_instrs = snapshot.squashed_instrs;
        engine.detector = snapshot.detector.clone();
        engine
    }

    fn run(mut self) -> PipelineResult {
        if self.cfg.warm_caches {
            self.warm_caches();
        }
        self.run_core(Cycle::ZERO, 0).0
    }

    fn run_capturing(mut self, interval: u64) -> (PipelineResult, Vec<Snapshot>) {
        if self.cfg.warm_caches {
            self.warm_caches();
        }
        let (result, snapshots, _, _) = self.run_core(Cycle::ZERO, interval);
        (result, snapshots)
    }

    /// The cycle loop, from `start` (inclusive), capturing a snapshot at
    /// the top of every cycle divisible by `interval` (0 = never).
    /// Warm-up, if any, must have happened already: a resumed run's
    /// restored hierarchy is post-warm-up state and must not be warmed
    /// again.
    fn run_core(
        mut self,
        start: Cycle,
        interval: u64,
    ) -> (
        PipelineResult,
        Vec<Snapshot>,
        Option<StageCounters>,
        Option<Vec<u64>>,
    ) {
        let mut snapshots = Vec::new();
        let mut now = start;
        let total = self.trace.len() as u64;
        let mut budget_exhausted = false;
        while self.committed < total && !self.stop_early {
            if now.as_u64() >= self.cfg.max_cycles {
                budget_exhausted = true;
                break;
            }
            if self.fingerprints.is_some() {
                let fp = self.overlay_fingerprint();
                self.fingerprints.as_mut().expect("checked above").push(fp);
            }
            if interval > 0 && now.as_u64().is_multiple_of(interval) {
                snapshots.push(self.capture(now));
            }
            self.step_recovery(now);
            self.step_retire(now);
            self.step_issue(now);
            self.step_insert(now);
            self.step_fetch(now);
            self.step_inject(now);
            let occupancy = self.iq.tick_stats();
            if let Some(st) = self.stages.as_mut() {
                st.on_cycle(now.as_u64(), occupancy as u64);
            }
            now = now.next();
        }
        self.iq.drain_all(now);
        // Resolve any entries that were drained while corrupted.
        // (drain_all already logged residencies; the detector saw
        // deallocs only for squash/flush paths, so let finish() decide.)
        let (predictions, mispredictions) = self.frontend.predictor_stats();
        let fe_stats = self.frontend.stats();
        let fault_outcome = if self.fault.is_some() {
            self.detector.finish()
        } else {
            None
        };
        let occupied_cycle_sum = self.iq.occupied_cycle_sum();
        let residencies = self.iq.into_residencies();
        if !snapshots.is_empty() {
            let log = Arc::new(residencies.clone());
            for snap in &mut snapshots {
                snap.residency_log = Arc::clone(&log);
            }
        }
        let result = PipelineResult {
            cycles: now.as_u64(),
            committed: self.committed,
            iq_capacity: self.cfg.iq_entries,
            occupied_cycle_sum,
            predictions,
            mispredictions,
            squashes: self.squashes,
            squashed_instrs: self.squashed_instrs,
            wrong_path_fetched: fe_stats.wrong_path_fetched,
            throttled_cycles: fe_stats.throttled_cycles,
            l0: self.hierarchy.stats(Level::L0),
            l1: self.hierarchy.stats(Level::L1),
            l2: self.hierarchy.stats(Level::L2),
            fault: fault_outcome,
            budget_exhausted,
            residencies,
        };
        (result, snapshots, self.stages, self.fingerprints)
    }

    /// A cheap rolling FNV-1a hash of the machine state the fault overlay
    /// can touch: the commit count plus, for each occupied queue slot in
    /// age order, its slot index, sequence number, stored word, and π bit.
    ///
    /// An injected fault perturbs nothing but the struck word, the π bit,
    /// and the detector's own bookkeeping — timing is bit-identical to the
    /// golden run until an outcome stops it early — so equality of this
    /// fingerprint at an equal cycle, together with a quiescent detector
    /// ([`Detector::quiescent_verdict`]), proves the remainder of the
    /// faulted run replays the golden tail exactly.
    fn overlay_fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.committed);
        for &slot in self.iq.age_order() {
            let e = self.iq.get(slot).expect("slot in age order");
            h = fnv1a(h, slot as u64);
            h = fnv1a(h, e.seq.as_u64());
            h = fnv1a(h, e.word);
            h = fnv1a(h, e.pi as u64);
        }
        h
    }

    /// Clones this engine's pre-run state into a fresh engine carrying
    /// `fault`. The receiver must not have stepped yet (it is the restored
    /// base of a pruned window); the fork shares its borrowed
    /// program/trace and starts from the identical machine state.
    fn fork(
        &self,
        program: &'a Program,
        trace: &'a ExecutionTrace,
        fault: FaultSpec,
    ) -> Engine<'a> {
        let mut e = Engine::new(self.cfg, program, trace, Some(fault), DetectionModel::None);
        e.frontend.restore_state(&self.frontend.snapshot_state());
        e.iq = self.iq.clone();
        e.hierarchy = self.hierarchy.clone();
        e.reg_ready = self.reg_ready;
        e.pred_ready = self.pred_ready;
        e.committed = self.committed;
        e.recovery = self.recovery;
        e.miss_outstanding_until = self.miss_outstanding_until;
        e.stall_until = self.stall_until;
        e.squashes = self.squashes;
        e.squashed_instrs = self.squashed_instrs;
        e.detector = self.detector.clone();
        e
    }

    /// The faulted cycle loop with convergence pruning: identical stepping
    /// to [`Engine::run_core`], but at the top of every cycle after the
    /// fault has fully landed it checks whether the detector has quiesced
    /// ([`Detector::quiescent_verdict`]), the struck slot carries no
    /// residual corruption or π, and the overlay fingerprint equals the
    /// golden run's at the same cycle. The first cycle all four hold, the
    /// verdict is decided and the tail is skipped.
    fn run_pruned(mut self, start: Cycle, golden_fps: &[u64]) -> PrunedRun {
        let mut now = start;
        let total = self.trace.len() as u64;
        while self.committed < total && !self.stop_early {
            if now.as_u64() >= self.cfg.max_cycles {
                break;
            }
            if let Some(f) = self.fault {
                let spent = f.cycle == Cycle::new(u64::MAX);
                let second_resolved = match f.second_cycle {
                    None => true,
                    Some(c2) => c2 == Cycle::new(u64::MAX) || c2 < now,
                };
                if spent && second_resolved {
                    if let Some(verdict) = self.detector.quiescent_verdict() {
                        // The fault overlay is confined to the struck slot;
                        // once that slot is clean (struck entry gone, no
                        // lingering π) the fingerprint is the only state
                        // that could still differ.
                        let slot_clean = self
                            .iq
                            .get(f.slot)
                            .is_none_or(|e| !e.parity_mismatch() && !e.pi);
                        let idx = now.as_u64() as usize;
                        if slot_clean
                            && idx < golden_fps.len()
                            && self.overlay_fingerprint() == golden_fps[idx]
                        {
                            return PrunedRun {
                                outcome: verdict,
                                end_cycle: now.as_u64(),
                                pruned: true,
                            };
                        }
                    }
                }
            }
            self.step_recovery(now);
            self.step_retire(now);
            self.step_issue(now);
            self.step_insert(now);
            self.step_fetch(now);
            self.step_inject(now);
            self.iq.tick_stats();
            now = now.next();
        }
        // `drain_all` only logs residencies, which a pruned-window run
        // never consumes; the detector alone decides the verdict.
        let outcome = self
            .detector
            .finish()
            .expect("a faulted run always resolves an outcome");
        PrunedRun {
            outcome,
            end_cycle: now.as_u64(),
            pruned: false,
        }
    }

    /// Captures the engine's full state at the top of cycle `now`.
    fn capture(&self, now: Cycle) -> Snapshot {
        Snapshot {
            cycle: now,
            frontend: self.frontend.snapshot_state(),
            iq: self.iq.clone_without_residencies(),
            residency_prefix: self.iq.residencies_len(),
            residency_log: Arc::new(Vec::new()), // stitched in after the run
            hierarchy: self.hierarchy.snapshot(),
            reg_ready: self.reg_ready,
            pred_ready: self.pred_ready,
            committed: self.committed,
            recovery: self.recovery,
            miss_outstanding_until: self.miss_outstanding_until,
            stall_until: self.stall_until,
            squashes: self.squashes,
            squashed_instrs: self.squashed_instrs,
            detector: self.detector.clone(),
        }
    }

    /// Primes the hierarchy with every data block the trace touches more
    /// than once, in first-touch order, then clears the statistics. This
    /// reproduces warmed steady-state caches without hiding the cold
    /// streaming behaviour of single-touch (memory-bound) access patterns.
    fn warm_caches(&mut self) {
        use std::collections::HashMap;
        let block = self.cfg.hierarchy.l1.block_bytes;
        let mut touches: HashMap<u64, u32> = HashMap::new();
        for d in self.trace {
            for addr in [d.mem_read, d.mem_written].into_iter().flatten() {
                *touches.entry(addr.block_base(block).as_u64()).or_insert(0) += 1;
            }
        }
        let mut primed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for d in self.trace {
            for addr in [d.mem_read, d.mem_written].into_iter().flatten() {
                let base = addr.block_base(block).as_u64();
                if touches.get(&base).copied().unwrap_or(0) >= 2 && primed.insert(base) {
                    self.hierarchy.access(addr, AccessKind::Load);
                }
            }
        }
        self.hierarchy.reset_stats();
    }

    fn step_recovery(&mut self, now: Cycle) {
        let Some(rec) = self.recovery else { return };
        if rec.at > now {
            return;
        }
        self.recovery = None;
        let flushed = self.iq.flush_younger(rec.branch_seq, now);
        for e in &flushed {
            if self.detector.on_dealloc(e, ResidencyEnd::FlushedWrongPath) {
                self.stop_early = true;
            }
        }
        self.frontend.redirect(rec.resume_trace_idx, now.next());
    }

    fn step_retire(&mut self, now: Cycle) {
        let mut retired = 0u64;
        for _ in 0..self.cfg.width {
            let Some(slot) = self.iq.head() else { break };
            let entry = self.iq.get(slot).expect("head occupied");
            let Occupant::CorrectPath { trace_idx } = entry.occupant else {
                // Wrong-path entries at the head wait for their flush.
                break;
            };
            let done = entry
                .complete_at
                .map(|c| c <= now)
                .unwrap_or(false);
            if !done {
                break;
            }
            let entry = self.iq.retire(slot, now);
            self.committed += 1;
            retired += 1;
            let d = &self.trace[trace_idx as usize];
            if self.detector.on_commit(&entry, d) {
                self.stop_early = true;
            }
        }
        if retired > 0 {
            if let Some(st) = self.stages.as_mut() {
                st.on_commit(now.as_u64(), retired);
            }
        }
    }

    fn step_issue(&mut self, now: Cycle) {
        let in_order = self.cfg.issue_order == IssueOrder::InOrder;
        if in_order && now < self.stall_until {
            return; // in-order pipeline stalled behind a load miss
        }
        let mut issued = 0usize;
        let mut mem_issued = 0usize;
        let mut branch_issued = 0usize;
        let order: Vec<usize> = self.iq.age_order().to_vec();
        let mut squash_request: Option<(SeqNo, u64, Cycle)> = None;
        for slot in order {
            if issued >= self.cfg.width {
                break;
            }
            let entry = self.iq.get(slot).expect("slot in order list");
            if entry.issued.is_some() {
                continue; // already in flight; in-order issue may proceed
            }
            // Issue-port limits: a full port stalls in-order issue (the
            // blocked instruction is the oldest unissued one) and is merely
            // skipped out of order.
            let needs_mem = entry.instr.op.touches_memory();
            let needs_branch = entry.instr.op.is_control();
            let port_blocked = (needs_mem && mem_issued >= self.cfg.ports.mem)
                || (needs_branch && branch_issued >= self.cfg.ports.branch);
            if port_blocked || !self.ready_to_issue(entry, now) {
                if in_order {
                    break; // in-order: the first stalled entry blocks younger
                }
                continue; // out-of-order: younger ready entries may pass
            }
            if needs_mem {
                mem_issued += 1;
            }
            if needs_branch {
                branch_issued += 1;
            }
            // --- issue the entry ---
            let seq = entry.seq;
            let occupant = entry.occupant;
            let instr = entry.instr;
            let mispredicted = self.trace_mispredict_flag(slot);
            let complete_at = self.compute_completion(slot, now, &mut squash_request);
            let entry = self.iq.get_mut(slot).expect("slot still occupied");
            entry.issued = Some(now);
            entry.complete_at = Some(complete_at);
            if self.detector.on_issue(self.iq.get_mut(slot).expect("occupied")) {
                self.stop_early = true;
            }
            // Scoreboard update for executed correct-path instructions.
            if let Occupant::CorrectPath { trace_idx } = occupant {
                let d = &self.trace[trace_idx as usize];
                if d.executed {
                    if let Some(w) = d.reg_written {
                        self.reg_ready[w.index()] = complete_at;
                    }
                    if let Some(p) = d.pred_written {
                        self.pred_ready[p.index()] = complete_at;
                    }
                }
                if mispredicted {
                    self.recovery = Some(Recovery {
                        at: complete_at,
                        branch_seq: seq,
                        resume_trace_idx: trace_idx + 1,
                    });
                }
            }
            let _ = instr;
            issued += 1;
        }

        if issued > 0 {
            if let Some(st) = self.stages.as_mut() {
                st.on_issue(now.as_u64(), issued as u64);
            }
        }
        if let Some((load_seq, load_trace_idx, data_ready)) = squash_request {
            self.apply_squash(load_seq, load_trace_idx, data_ready, now);
        }
    }

    fn trace_mispredict_flag(&self, slot: usize) -> bool {
        self.iq
            .get(slot)
            .map(|e| e.mispredicted_branch)
            .unwrap_or(false)
    }

    fn ready_to_issue(&self, entry: &IqEntry, now: Cycle) -> bool {
        match entry.occupant {
            // Wrong-path operands are bogus anyway; they issue freely.
            Occupant::WrongPath => true,
            Occupant::CorrectPath { .. } => {
                if self.pred_ready[entry.instr.qp.index()] > now {
                    return false;
                }
                entry
                    .instr
                    .reads()
                    .all(|r| self.reg_ready[r.index()] <= now)
            }
        }
    }

    /// Computes the completion cycle, performing the cache access for
    /// executed loads/stores/prefetches and recording any squash trigger.
    fn compute_completion(
        &mut self,
        slot: usize,
        now: Cycle,
        squash_request: &mut Option<(SeqNo, u64, Cycle)>,
    ) -> Cycle {
        let entry = self.iq.get(slot).expect("slot occupied");
        let op = entry.instr.op;
        let seq = entry.seq;
        let base = op.base_latency().max(1);
        let Occupant::CorrectPath { trace_idx } = entry.occupant else {
            return now + base;
        };
        let d = &self.trace[trace_idx as usize];
        if !d.executed {
            return now + 1;
        }
        match op {
            Opcode::Ld => {
                let addr = d.mem_read.expect("executed load has an address");
                let access = self.hierarchy.access(addr, AccessKind::Load);
                let complete = now + access.latency;
                // An L0 miss stalls in-order issue until the data returns.
                if access.missed_in(Level::L0) && complete > self.stall_until {
                    self.stall_until = complete;
                }
                // Squash / throttle triggers (§3.1): a load miss at the
                // configured level.
                if let SquashPolicy::OnLoadMiss(level) = self.cfg.squash {
                    // Keep the oldest triggering load of the cycle: the
                    // squash boundary is "younger than the (first) load
                    // that missed".
                    if access.missed_in(level) && squash_request.is_none() {
                        *squash_request = Some((seq, trace_idx, complete));
                    }
                }
                if let ThrottlePolicy::OnLoadMiss(level) = self.cfg.throttle {
                    if access.missed_in(level) && complete > self.miss_outstanding_until {
                        self.miss_outstanding_until = complete;
                    }
                }
                complete
            }
            Opcode::St => {
                let addr = d.mem_written.expect("executed store has an address");
                self.hierarchy.access(addr, AccessKind::Store);
                now + 1 // the store buffer absorbs the latency
            }
            // Prefetches are non-blocking; their fills are second-order for
            // the AVF questions studied here and are not modelled.
            Opcode::Prefetch => now + 1,
            Opcode::Br => now + self.branch_latency(),
            _ => now + base,
        }
    }

    fn branch_latency(&self) -> u64 {
        // Conditional branches resolve in the back end; three cycles models
        // the issue-to-resolve distance of an Itanium®2-class core.
        3
    }

    fn apply_squash(&mut self, load_seq: SeqNo, load_trace_idx: u64, data_ready: Cycle, now: Cycle) {
        let squashed = self.iq.squash_younger(load_seq, now);
        for e in &squashed {
            if self.detector.on_dealloc(e, ResidencyEnd::Squashed) {
                self.stop_early = true;
            }
        }
        self.squashed_instrs += squashed.len() as u64;
        self.squashes += 1;
        if let Some(st) = self.stages.as_mut() {
            st.on_squash(now.as_u64(), squashed.len() as u64);
        }
        // Cancel a pending recovery if its branch was squashed.
        if let Some(rec) = self.recovery {
            if rec.branch_seq.is_younger_than(load_seq) {
                self.recovery = None;
            }
        }
        // Refetch from just after the load, timed so instructions re-enter
        // the queue as the pipeline resumes execution ("bring them back
        // when the pipeline resumes execution", §3) — that is, when the
        // *last* outstanding miss returns, not just the triggering one.
        let horizon = data_ready.max(self.stall_until);
        let resume = Cycle::new(
            horizon
                .as_u64()
                .saturating_sub(self.cfg.frontend_depth)
                .max(now.as_u64() + 1),
        );
        self.frontend.redirect(load_trace_idx + 1, resume);
    }

    fn step_insert(&mut self, now: Cycle) {
        let free = self.iq.free().min(self.cfg.width);
        if free == 0 {
            return;
        }
        let mut inserted = 0u64;
        for f in self.frontend.take_ready(now, free) {
            let FetchedInstr {
                occupant,
                instr,
                seq,
                falsely_predicated,
                mispredicted_branch,
                ..
            } = f;
            let mut entry = IqEntry::new(occupant, instr, seq, now, falsely_predicated);
            entry.mispredicted_branch = mispredicted_branch;
            self.iq.insert(entry);
            inserted += 1;
        }
        if inserted > 0 {
            if let Some(st) = self.stages.as_mut() {
                st.on_insert(now.as_u64(), inserted);
            }
        }
    }

    fn step_fetch(&mut self, now: Cycle) {
        let throttled = matches!(self.cfg.throttle, ThrottlePolicy::OnLoadMiss(_))
            && now < self.miss_outstanding_until;
        // Synthetic front-end stall pattern (I-cache/ITLB hiccups).
        let ifetch_stalled = self.cfg.ifetch_stall_period > 0
            && now.as_u64() % self.cfg.ifetch_stall_period < self.cfg.ifetch_stall_cycles;
        self.frontend.throttled = throttled;
        if !ifetch_stalled {
            let throttled_before = self.frontend.stats().throttled_cycles;
            let (correct, wrong) = self.frontend.fetch(now);
            if let Some(st) = self.stages.as_mut() {
                if correct + wrong > 0 {
                    st.on_fetch(now.as_u64(), correct, wrong);
                }
                if self.frontend.stats().throttled_cycles > throttled_before {
                    st.on_throttle(now.as_u64());
                }
            }
        }
    }

    fn step_inject(&mut self, now: Cycle) {
        let Some(f) = self.fault else { return };
        // Background scrubbing: a periodic parity sweep over the queue.
        if self.cfg.scrub_period > 0
            && now.as_u64() > 0
            && now.as_u64().is_multiple_of(self.cfg.scrub_period)
        {
            let slots: Vec<usize> = self.iq.age_order().to_vec();
            for slot in slots {
                if let Some(entry) = self.iq.get_mut(slot) {
                    if entry.parity_mismatch() && self.detector.on_scrub(entry) {
                        self.stop_early = true;
                        return;
                    }
                }
            }
        }
        if f.cycle == now {
            let entry = self.iq.get_mut(f.slot);
            self.detector.set_ecc_verdict(f.ecc);
            self.detector.on_injection(entry, f.mask());
            if self.detector.outcome().is_some() {
                self.stop_early = true;
            }
            // Mark the first strike spent.
            self.fault = Some(FaultSpec {
                cycle: Cycle::new(u64::MAX),
                ..f
            });
            return;
        }
        // A deferred second strike lands only while the struck entry is
        // still resident in its slot.
        if let Some((c2, mask)) = f.second_mask() {
            if c2 == now {
                if let Some(entry) = self.iq.get_mut(f.slot) {
                    self.detector.on_second_strike(entry, mask);
                }
                self.fault = Some(FaultSpec {
                    second_cycle: Some(Cycle::new(u64::MAX)),
                    ..f
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::Emulator;
    use ses_workloads::{synthesize, WorkloadSpec};

    fn quick_run() -> (Program, ExecutionTrace) {
        let spec = WorkloadSpec::quick("engine-snap", 17);
        let program = synthesize(&spec);
        let trace = Emulator::new(&program).run(100_000).unwrap();
        (program, trace)
    }

    #[test]
    fn capture_run_matches_plain_run() {
        let (program, trace) = quick_run();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let plain = pipeline.run(&program, &trace);
        let (captured, snapshots) =
            pipeline.run_with_snapshots(&program, &trace, DetectionModel::None, 500);
        assert_eq!(plain, captured, "snapshot capture must not perturb timing");
        assert!(!snapshots.is_empty());
        assert_eq!(snapshots[0].cycle(), Cycle::ZERO);
        assert!(snapshots.windows(2).all(|w| w[0].cycle() < w[1].cycle()));
    }

    #[test]
    fn faultless_resume_replays_tail_bit_identically() {
        let (program, trace) = quick_run();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let (golden, snapshots) =
            pipeline.run_with_snapshots(&program, &trace, DetectionModel::None, 700);
        for snap in [&snapshots[0], &snapshots[snapshots.len() / 2], snapshots.last().unwrap()]
        {
            let resumed = pipeline.resume(&program, &trace, snap, None);
            assert_eq!(
                golden, resumed,
                "resume from cycle {:?} must reproduce the golden run",
                snap.cycle()
            );
        }
    }

    #[test]
    fn resumed_fault_run_matches_from_scratch() {
        let (program, trace) = quick_run();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let detection = DetectionModel::Parity { tracking: None };
        let (golden, snapshots) =
            pipeline.run_with_snapshots(&program, &trace, detection, 400);
        let last_cycle = golden.cycles.saturating_sub(1);
        for (strike, slot, bit) in [
            (0u64, 0usize, 5u32),
            (401, 3, 17),
            (800, 12, 63),
            (last_cycle, 1, 30),
        ] {
            let fault = FaultSpec::single(Cycle::new(strike), slot, bit);
            let scratch = pipeline.run_with_fault(&program, &trace, Some(fault), detection);
            let idx = snapshots.partition_point(|s| s.cycle() <= fault.cycle);
            let snap = &snapshots[idx - 1];
            let resumed = pipeline.resume(&program, &trace, snap, Some(fault));
            assert_eq!(
                scratch, resumed,
                "fault at cycle {strike} slot {slot} bit {bit} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strikes before")]
    fn resume_rejects_pre_snapshot_faults() {
        let (program, trace) = quick_run();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let (_, snapshots) =
            pipeline.run_with_snapshots(&program, &trace, DetectionModel::None, 600);
        let late = snapshots.last().unwrap();
        let fault = FaultSpec::single(Cycle::ZERO, 0, 0);
        pipeline.resume(&program, &trace, late, Some(fault));
    }
}
