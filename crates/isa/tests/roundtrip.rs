//! Property tests: every constructible instruction survives the full
//! `asm text -> assemble -> encode -> decode -> fields` pipeline
//! unchanged, per opcode class.

use proptest::prelude::*;
use ses_isa::{
    assemble, bit_kind, decode, disassemble, encode, field_mask, BitKind, Instruction, Opcode,
    Program, BIT_COUNT,
};
use ses_types::{Pred, Reg};

const ALU3: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
];

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(Reg::new)
}

fn pred() -> impl Strategy<Value = Pred> {
    (0u8..8).prop_map(Pred::new)
}

/// Branch-style offsets: word-aligned, either direction.
fn offset() -> impl Strategy<Value = i32> {
    (-256i32..256).prop_map(|w| w * 8)
}

/// One random instruction of each opcode class, guard included.
fn arb_instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        // 3-register ALU group.
        (0usize..ALU3.len(), reg(), reg(), reg(), pred())
            .prop_map(|(i, d, s1, s2, qp)| Instruction::alu(ALU3[i], d, s1, s2).guarded_by(qp)),
        // Immediate ALU forms.
        (reg(), reg(), any::<i32>(), pred())
            .prop_map(|(d, s, imm, qp)| Instruction::addi(d, s, imm).guarded_by(qp)),
        (reg(), any::<i32>(), pred())
            .prop_map(|(d, imm, qp)| Instruction::movi(d, imm).guarded_by(qp)),
        // Compares (predicate writers).
        (pred(), reg(), reg(), pred())
            .prop_map(|(pd, s1, s2, qp)| Instruction::cmp_eq(pd, s1, s2).guarded_by(qp)),
        (pred(), reg(), reg(), pred())
            .prop_map(|(pd, s1, s2, qp)| Instruction::cmp_lt(pd, s1, s2).guarded_by(qp)),
        // Memory class.
        (reg(), reg(), any::<i32>(), pred())
            .prop_map(|(d, b, imm, qp)| Instruction::ld(d, b, imm).guarded_by(qp)),
        (reg(), reg(), any::<i32>(), pred())
            .prop_map(|(b, d, imm, qp)| Instruction::st(b, d, imm).guarded_by(qp)),
        // Control class.
        (pred(), offset()).prop_map(|(qp, off)| Instruction::br(qp, off)),
        offset().prop_map(Instruction::jmp),
        (reg(), offset(), pred())
            .prop_map(|(link, off, qp)| Instruction::call(link, off).guarded_by(qp)),
        (reg(), pred()).prop_map(|(link, qp)| Instruction::ret(link).guarded_by(qp)),
        // Neutral class.
        pred().prop_map(|qp| Instruction::nop().guarded_by(qp)),
        pred().prop_map(|qp| Instruction::hint().guarded_by(qp)),
        (reg(), any::<i32>(), pred())
            .prop_map(|(b, imm, qp)| Instruction::prefetch(b, imm).guarded_by(qp)),
        // I/O and halt.
        (reg(), pred()).prop_map(|(s, qp)| Instruction::out(s).guarded_by(qp)),
        pred().prop_map(|qp| Instruction::halt().guarded_by(qp)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_is_identity(instr in arb_instr()) {
        let word = encode(&instr);
        let back = decode(word).expect("constructed instructions must decode");
        prop_assert_eq!(back, instr);
        // Encoding is canonical: re-encoding the decode reproduces the word.
        prop_assert_eq!(encode(&back), word);
    }

    #[test]
    fn asm_text_roundtrips(instrs in proptest::collection::vec(arb_instr(), 1..24)) {
        let program = Program::new(instrs);
        let text = disassemble(&program);
        let back = assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {e}\n{text}"));
        prop_assert_eq!(back, program);
    }

    #[test]
    fn every_bit_lands_in_the_field_its_kind_claims(instr in arb_instr()) {
        // Flipping a bit classified as a given kind must change exactly the
        // corresponding decoded field (or kill the decode, for opcode and
        // reserved bits).
        let word = encode(&instr);
        for bit in 0..BIT_COUNT {
            let kind = bit_kind(bit);
            prop_assert_ne!(
                field_mask(kind) & (1u64 << bit),
                0,
                "bit {} not inside its own field mask",
                bit
            );
            let flipped = word ^ (1u64 << bit);
            match (kind, decode(flipped)) {
                (BitKind::Opcode | BitKind::Reserved, Err(_)) => {} // detected
                (_, Err(_)) => prop_assert!(
                    matches!(kind, BitKind::Opcode | BitKind::Reserved),
                    "flip of {:?} bit {} must stay decodable",
                    kind,
                    bit
                ),
                (_, Ok(mutated)) => {
                    let unchanged = match kind {
                        BitKind::Opcode => mutated.op == instr.op,
                        BitKind::Guard => mutated.qp == instr.qp,
                        BitKind::DestSpec => mutated.dest == instr.dest,
                        BitKind::SrcSpec => {
                            mutated.src1 == instr.src1 && mutated.src2 == instr.src2
                        }
                        BitKind::PredDestSpec => mutated.pdest == instr.pdest,
                        BitKind::Immediate => mutated.imm == instr.imm,
                        BitKind::Reserved => true,
                    };
                    prop_assert!(
                        !unchanged,
                        "flipping {:?} bit {} did not change that field",
                        kind,
                        bit
                    );
                    // And no other field moved.
                    let mut reverted = mutated;
                    match kind {
                        BitKind::Opcode => reverted.op = instr.op,
                        BitKind::Guard => reverted.qp = instr.qp,
                        BitKind::DestSpec => reverted.dest = instr.dest,
                        BitKind::SrcSpec => {
                            reverted.src1 = instr.src1;
                            reverted.src2 = instr.src2;
                        }
                        BitKind::PredDestSpec => reverted.pdest = instr.pdest,
                        BitKind::Immediate => reverted.imm = instr.imm,
                        BitKind::Reserved => {}
                    }
                    prop_assert_eq!(reverted, instr, "bit {} leaked across fields", bit);
                }
            }
        }
    }
}
