//! Behavioural tests of the paper's two technique families across machine
//! configurations.

use ses_core::{
    run_workload, spec_by_name, Level, PipelineConfig, SquashPolicy, Technique, ThrottlePolicy,
};

#[test]
fn squash_l0_is_a_superset_of_squash_l1() {
    // Every L1 miss is also an L0 miss, so the L0 trigger must fire at
    // least as often and cut exposure at least as much.
    let spec = spec_by_name("cc").expect("cc in suite");
    let l1 = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();
    let l0 = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L0)).unwrap();
    assert!(l0.result.squashes >= l1.result.squashes);
    assert!(l0.avf.sdc_avf().fraction() <= l1.avf.sdc_avf().fraction() + 0.02);
    assert!(l0.result.ipc().value() <= l1.result.ipc().value() + 0.01);
}

#[test]
fn throttling_reduces_exposure_less_than_squashing() {
    // Paper §3.1: fetch throttling did not add much beyond squashing; on
    // its own it reduces exposure, but less than squashing does.
    let spec = spec_by_name("equake").expect("equake in suite");
    let base = run_workload(&spec, &PipelineConfig::default()).unwrap();
    let thr =
        run_workload(&spec, &PipelineConfig::default().with_throttle(Level::L1)).unwrap();
    let sq = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();

    assert!(thr.result.throttled_cycles > 0, "throttle must engage");
    assert_eq!(thr.result.squashes, 0);
    let (b, t, s) = (
        base.avf.sdc_avf().fraction(),
        thr.avf.sdc_avf().fraction(),
        sq.avf.sdc_avf().fraction(),
    );
    assert!(t < b, "throttling reduces exposure ({t:.3} vs {b:.3})");
    assert!(s < t, "squashing reduces exposure more ({s:.3} vs {t:.3})");
}

#[test]
fn squash_on_memory_trigger_fires_rarely() {
    // A Memory-level trigger only fires on accesses that miss L2 entirely.
    let spec = spec_by_name("gzip").expect("gzip in suite");
    let l1 = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();
    let mem =
        run_workload(&spec, &PipelineConfig::default().with_squash(Level::L2)).unwrap();
    assert!(mem.result.squashes <= l1.result.squashes);
}

#[test]
fn policies_default_to_off() {
    let cfg = PipelineConfig::default();
    assert_eq!(cfg.squash, SquashPolicy::None);
    assert_eq!(cfg.throttle, ThrottlePolicy::None);
    let spec = spec_by_name("mesa").expect("mesa in suite");
    let run = run_workload(&spec, &cfg).unwrap();
    assert_eq!(run.result.squashes, 0);
    assert_eq!(run.result.throttled_cycles, 0);
}

#[test]
fn tracking_scopes_are_strictly_ordered_on_real_workloads() {
    let spec = spec_by_name("vortex").expect("vortex in suite");
    let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
    let due = |t| {
        run.avf
            .due_avf_with_tracking(Some(t), &run.dead)
            .fraction()
    };
    let parity = run.avf.due_avf().fraction();
    let commit_only = run.avf.due_avf_with_tracking(None, &run.dead).fraction();
    let reg = due(Technique::PiRegister);
    let store = due(Technique::PiStoreCommit);
    let mem = due(Technique::PiMemory);
    assert!(commit_only < parity);
    assert!(reg <= commit_only);
    assert!(store <= reg);
    assert!(mem <= store);
    assert!(
        (mem - run.avf.true_due_avf().fraction()).abs() < 1e-9,
        "full tracking reaches the true-DUE floor"
    );
}

#[test]
fn pet_sizes_interpolate_between_nothing_and_register_pi() {
    let spec = spec_by_name("perlbmk").expect("perlbmk in suite");
    let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
    let cov = |t| run.avf.covered_by(t, &run.dead);
    let c32 = cov(Technique::Pet(32));
    let c512 = cov(Technique::Pet(512));
    let c16k = cov(Technique::Pet(16384));
    let reg = cov(Technique::PiRegister);
    assert!(c32 <= c512 && c512 <= c16k && c16k <= reg);
    assert!(c16k > c32, "bigger PET buffers must add coverage");
}

#[test]
fn squash_and_throttle_trade_ipc_for_mitf_on_corpus_programs() {
    // Paper §3 Table 1: both technique families must move the machine in
    // the same direction on real workloads — AVF down, MITF (mean
    // instructions to failure) up — at a bounded IPC cost. A technique
    // that lowered AVF by stalling so hard that MITF fell too would be
    // a net reliability loss; this pins the trade on two corpus programs
    // with distinct memory behaviour.
    use ses_core::ReliabilityModel;
    let model = ReliabilityModel::default();
    for name in ["cc", "equake"] {
        let spec = spec_by_name(name).expect("program in suite");
        let base = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let base_ipc = base.result.ipc();
        let base_rate = model.rate(base_ipc, base.avf.sdc_avf());

        for (label, cfg, stalls) in [
            (
                "squash",
                PipelineConfig::default().with_squash(Level::L1),
                false,
            ),
            (
                "throttle",
                PipelineConfig::default().with_throttle(Level::L1),
                true,
            ),
        ] {
            let run = run_workload(&spec, &cfg).unwrap();
            if stalls {
                assert!(run.result.throttled_cycles > 0, "{name}: throttle engages");
            } else {
                assert!(run.result.squashes > 0, "{name}: squash engages");
            }
            let ipc = run.result.ipc();
            let avf = run.avf.sdc_avf();
            let rate = model.rate(ipc, avf);
            assert!(
                avf.fraction() < base.avf.sdc_avf().fraction(),
                "{name}/{label}: AVF must drop ({:.4} vs base {:.4})",
                avf.fraction(),
                base.avf.sdc_avf().fraction()
            );
            assert!(
                rate.mitf.instructions() > base_rate.mitf.instructions(),
                "{name}/{label}: MITF must rise ({:.3e} vs base {:.3e})",
                rate.mitf.instructions(),
                base_rate.mitf.instructions()
            );
            let ipc_loss = 1.0 - ipc.value() / base_ipc.value();
            assert!(
                ipc_loss < 0.35,
                "{name}/{label}: IPC cost must stay modest, lost {:.1}%",
                ipc_loss * 100.0
            );
            assert!(
                rate.ipc_over_avf > base_rate.ipc_over_avf,
                "{name}/{label}: IPC/AVF figure of merit must improve"
            );
        }
    }
}

#[test]
fn idempotent_recovery_completes_the_technique_trade_space() {
    // Tentpole trade entry: π-bit tracking suppresses *false* DUE but is
    // floored by the true-DUE mass; squashing pays pipeline IPC for lower
    // exposure; idempotent-region recovery converts detected faults —
    // including true DUE — into bounded re-execution, paying instructions
    // only when a fault actually strikes. Pinned on two corpus programs
    // with distinct memory behaviour:
    //
    //  * zero-latency recovery conserves the analytic DUE + SDC totals
    //    exactly (every legacy DUE sample becomes Recovered, SDC is
    //    untouched, the statistical DUE estimate reaches zero);
    //  * at any latency, recovered + machine-check fallback equals the
    //    legacy DUE mass — recovery re-labels detections, never invents
    //    or loses them;
    //  * the amortised re-execution cost sits far below the IPC loss
    //    squashing charges on every instruction, fault or no fault.
    use ses_core::{
        Campaign, CampaignConfig, DetectionModel, LatencyDistribution, Outcome, RecoveryPolicy,
    };
    for name in ["cc", "equake"] {
        let spec = spec_by_name(name).expect("program in suite");
        let prepare = |latency: Option<LatencyDistribution>| {
            Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 200,
                    seed: 2026,
                    detection: DetectionModel::Parity { tracking: None },
                    recovery: if latency.is_some() {
                        RecoveryPolicy::Idempotent
                    } else {
                        RecoveryPolicy::MachineCheck
                    },
                    detect_latency: latency,
                    ..CampaignConfig::default()
                },
            )
            .expect("campaign prepares")
        };
        let campaign = prepare(Some(LatencyDistribution::Fixed(0)));
        let legacy = prepare(None).run_detailed();
        let zero = campaign.run_detailed();
        let latent = prepare(Some(LatencyDistribution::Fixed(12))).run_detailed();
        let (l, z, t) = (legacy.summary(), zero.summary(), latent.summary());
        let legacy_due = l.count(Outcome::FalseDue) + l.count(Outcome::TrueDue);
        assert!(legacy_due > 0, "{name}: the campaign needs detections");

        // Zero-latency conservation of the analytic DUE + SDC totals.
        assert_eq!(z.due_avf_estimate(), 0.0, "{name}: zero latency recovers every DUE");
        assert_eq!(z.count(Outcome::Recovered), legacy_due);
        assert_eq!(z.sdc_avf_estimate(), l.sdc_avf_estimate(), "{name}: SDC untouched");

        // Any-latency conservation: re-labelled, never invented or lost.
        let rt = latent.recovery().expect("recovery stanza");
        assert_eq!(rt.recovered + rt.fallback_due, legacy_due, "{name}: mass conserved");
        assert!(t.due_avf_estimate() <= l.due_avf_estimate());

        // π-bit tracking is floored by true DUE; recovery is not.
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let parity = run.avf.due_avf().fraction();
        let tracked = run.avf.due_avf_with_tracking(None, &run.dead).fraction();
        let floor = run.avf.true_due_avf().fraction();
        assert!(tracked < parity, "{name}: pi-bit must cut false DUE");
        assert!(floor > 0.0, "{name}: a true-DUE floor must exist for the trade to bind");
        assert!(tracked >= floor, "{name}: tracking cannot go below the floor");

        // Recovery's amortised instruction cost versus squashing's
        // always-on IPC cost.
        let rz = zero.recovery().expect("recovery stanza");
        let committed = campaign.baseline_ipc() * campaign.baseline_cycles() as f64;
        let recovery_cost =
            rz.reexec_instructions as f64 / (200.0 * committed);
        let squashed =
            run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();
        let squash_loss = 1.0 - squashed.result.ipc().value() / run.result.ipc().value();
        assert!(squash_loss > 0.0, "{name}: squashing must pay IPC");
        assert!(
            recovery_cost < squash_loss,
            "{name}: amortised re-execution ({recovery_cost:.6}) must undercut \
             the squash IPC loss ({squash_loss:.4})"
        );
    }
}

#[test]
fn ecc_buys_residual_coverage_with_area_instead_of_ipc() {
    // Tentpole trade entry: the exposure-reduction techniques (squash,
    // throttle) pay IPC — and therefore MITF — for lower AVF, while an
    // ECC domain pays *check bits* (area) and leaves the pipeline
    // untouched. This pins both axes of that trade:
    //
    //  * check-bit cost is strictly ordered SEC < SEC-DED ≤ TAEC < DEC;
    //  * residual silent (SDC-candidate) mass under the spatial strike
    //    distribution is ordered the opposite way — each extra check bit
    //    buys coverage: SEC > SEC-DED > TAEC > DEC, with parity and the
    //    unprotected domain worse than all of them;
    //  * on a real workload, ECC improves the SDC MITF without moving
    //    IPC at all, whereas squashing moves IPC to get its gain.
    use ses_core::{
        EccDomain, EccScheme, PatternDistribution, ReliabilityModel, ResidualModel,
    };
    use ses_types::Avf;

    let dist = PatternDistribution::default();
    let domain = |s| EccDomain::new(s);
    let silent = |s| ResidualModel::analytic(&dist, &domain(s)).silent;

    // Area cost ordering (check bits per 64-bit word).
    let bits = |s: EccScheme| domain(s).check_bits();
    assert!(bits(EccScheme::HammingSec) < bits(EccScheme::SecDed));
    assert!(bits(EccScheme::SecDed) <= bits(EccScheme::Taec));
    assert!(bits(EccScheme::Taec) < bits(EccScheme::Dec));

    // Coverage ordering: silent residual mass strictly shrinks as check
    // bits grow across the correcting schemes.
    assert!(silent(EccScheme::None) > silent(EccScheme::HammingSec));
    assert!(silent(EccScheme::HammingSec) > silent(EccScheme::SecDed));
    assert!(silent(EccScheme::SecDed) > silent(EccScheme::Taec));
    assert!(silent(EccScheme::Taec) > silent(EccScheme::Dec));

    // The miscorrection hazard, pinned: under a multi-bit strike mix,
    // plain SEC carries *more* silent mass than detect-only parity —
    // every aliased double is "corrected" into a three-bit residual
    // instead of being flagged. Correction without double-detection is a
    // net SDC regression; this is why real parts ship SEC-DED.
    assert!(silent(EccScheme::HammingSec) > silent(EccScheme::Parity));

    // ECC versus squash on a real workload: same raw-rate model, same
    // structure. ECC derates the SDC AVF by the silent fraction at zero
    // IPC cost; squashing pays cycles for its AVF cut.
    let spec = spec_by_name("cc").expect("cc in suite");
    let base = run_workload(&spec, &PipelineConfig::default()).unwrap();
    let squashed = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();
    let model = ReliabilityModel::default();
    let base_rate = model.rate(base.result.ipc(), base.avf.sdc_avf());

    let ecc_avf = base.avf.sdc_avf().fraction() * silent(EccScheme::SecDed);
    let ecc_rate = model.rate(base.result.ipc(), Avf::from_fraction(ecc_avf));
    let squash_rate = model.rate(squashed.result.ipc(), squashed.avf.sdc_avf());

    assert!(
        squashed.result.ipc().value() < base.result.ipc().value(),
        "squashing pays IPC for its AVF cut"
    );
    assert!(
        ecc_rate.mitf.instructions() > base_rate.mitf.instructions(),
        "ECC must raise the SDC MITF"
    );
    assert!(
        ecc_rate.mitf.instructions() > squash_rate.mitf.instructions(),
        "at the paper's strike mix, SEC-DED's 50x residual cut dwarfs \
         what exposure reduction can buy ({:.3e} vs {:.3e})",
        ecc_rate.mitf.instructions(),
        squash_rate.mitf.instructions()
    );
}
