//! π-bit directory for memory structures.
//!
//! The paper attaches a π bit to each cache block (and optionally to main
//! memory) so that a possibly-incorrect value written by a store can be
//! tracked until it is either overwritten (the error was false) or consumed
//! by an I/O access (the error must be signalled). Because the timing model
//! does not carry data values through the caches, the π state is modelled
//! as an address-keyed directory at a configurable granularity.

use std::collections::HashSet;

use ses_types::Addr;

/// Tracks which memory granules are marked *possibly incorrect*.
///
/// # Example
///
/// ```
/// use ses_mem::PiDirectory;
/// use ses_types::Addr;
///
/// let mut dir = PiDirectory::new(64);
/// dir.mark(Addr::new(0x1234));
/// assert!(dir.is_marked(Addr::new(0x1200)), "same 64-byte block");
/// assert!(dir.clear(Addr::new(0x1210)));
/// assert!(!dir.is_marked(Addr::new(0x1234)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PiDirectory {
    granule: u64,
    marked: HashSet<u64>,
}

impl PiDirectory {
    /// Creates a directory tracking π at `granule_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `granule_bytes` is not a power of two.
    pub fn new(granule_bytes: u64) -> Self {
        assert!(
            granule_bytes.is_power_of_two(),
            "π granule must be a power of two"
        );
        PiDirectory {
            granule: granule_bytes,
            marked: HashSet::new(),
        }
    }

    fn key(&self, addr: Addr) -> u64 {
        addr.block_base(self.granule).as_u64()
    }

    /// Sets the π bit for the granule containing `addr`.
    pub fn mark(&mut self, addr: Addr) {
        let key = self.key(addr);
        self.marked.insert(key);
    }

    /// Clears the π bit for the granule containing `addr` (an overwrite by
    /// a known-good store). Returns whether a bit was cleared.
    pub fn clear(&mut self, addr: Addr) -> bool {
        let key = self.key(addr);
        self.marked.remove(&key)
    }

    /// Whether the granule containing `addr` is marked possibly incorrect.
    pub fn is_marked(&self, addr: Addr) -> bool {
        self.marked.contains(&self.key(addr))
    }

    /// Number of granules currently marked.
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The configured granularity in bytes.
    pub fn granule_bytes(&self) -> u64 {
        self.granule
    }

    /// Clears every π bit (e.g. at experiment reset).
    pub fn reset(&mut self) {
        self.marked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_clear_roundtrip() {
        let mut d = PiDirectory::new(8);
        assert!(!d.is_marked(Addr::new(0x100)));
        d.mark(Addr::new(0x100));
        assert!(d.is_marked(Addr::new(0x107)), "same word");
        assert!(!d.is_marked(Addr::new(0x108)), "next word");
        assert_eq!(d.marked_count(), 1);
        assert!(d.clear(Addr::new(0x100)));
        assert!(!d.clear(Addr::new(0x100)), "already clear");
        assert_eq!(d.marked_count(), 0);
    }

    #[test]
    fn block_granularity_aliases_whole_block() {
        let mut d = PiDirectory::new(128);
        d.mark(Addr::new(0x87f));
        assert!(d.is_marked(Addr::new(0x800)));
        assert!(!d.is_marked(Addr::new(0x880)));
        assert_eq!(d.granule_bytes(), 128);
    }

    #[test]
    fn reset_clears_all() {
        let mut d = PiDirectory::new(8);
        d.mark(Addr::new(0));
        d.mark(Addr::new(8));
        d.reset();
        assert_eq!(d.marked_count(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_granule_panics() {
        let _ = PiDirectory::new(12);
    }
}
