//! Regenerates **Figure 4**: impact of the combined techniques on the
//! instruction queue's SDC and DUE AVFs, per benchmark.
//!
//! The paper's §6.3 combination: squash on L1 load misses (exposure
//! reduction), plus — for the parity-protected queue — π-bit tracking
//! carried to the store-commit point with the anti-π bit.
//!
//! Paper findings being reproduced:
//!
//! * relative SDC AVF (squash only) averages 0.74 (a 26 % reduction),
//!   with `ammp` an outlier near 0.10 (90 % reduction for ~7 % IPC);
//! * relative DUE AVF (squash + tracking) averages 0.43 (57 % reduction);
//! * the combined IPC cost stays around 2 %.
//!
//! Run with `cargo bench -p ses-bench --bench fig4`.

use ses_core::{mean, run_suite, Avf, Level, PipelineConfig, Table};

fn main() {
    let base_rows = run_suite(&PipelineConfig::default()).expect("baseline suite");
    let sq_rows =
        run_suite(&PipelineConfig::default().with_squash(Level::L1)).expect("squash suite");

    let mut table = Table::new(vec![
        "Benchmark",
        "Class",
        "rel SDC AVF (squash)",
        "rel DUE AVF (squash+pi)",
        "rel IPC",
    ]);

    let mut rel_sdc = Vec::new();
    let mut rel_due = Vec::new();
    let mut rel_ipc = Vec::new();
    for (b, s) in base_rows.iter().zip(&sq_rows) {
        assert_eq!(b.name, s.name);
        // DUE with tracking on the squash run: true DUE (= SDC AVF) plus
        // the false DUE left uncovered by pi@commit + anti-pi + store
        // scope.
        let total_bits = s.total_bit_cycles(64);
        let residual = s.residual_false_due(s.coverage.pi_store, total_bits);
        let due_tracked: Avf = s.sdc_avf.saturating_add(residual);

        let rs = s.sdc_avf.fraction() / b.sdc_avf.fraction();
        let rd = due_tracked.fraction() / b.due_avf.fraction();
        let ri = s.ipc.value() / b.ipc.value();
        table.row(vec![
            b.name.clone(),
            b.category.label().into(),
            format!("{rs:.2}"),
            format!("{rd:.2}"),
            format!("{ri:.3}"),
        ]);
        rel_sdc.push(rs);
        rel_due.push(rd);
        rel_ipc.push(ri);
    }

    println!("\n=== Figure 4: combined squash + pi-bit tracking, per benchmark ===\n");
    println!("{table}");

    let avg_sdc = mean(rel_sdc.iter().copied());
    let avg_due = mean(rel_due.iter().copied());
    let avg_ipc = mean(rel_ipc.iter().copied());
    println!("Averages (paper in parentheses):");
    println!("  relative SDC AVF: {avg_sdc:.2} (0.74, i.e. -26%)");
    println!("  relative DUE AVF: {avg_due:.2} (0.43, i.e. -57%)");
    println!("  relative IPC    : {avg_ipc:.3} (0.98, i.e. -2%)");

    let ammp_idx = base_rows.iter().position(|r| r.name == "ammp").unwrap();
    println!(
        "  ammp outlier    : rel SDC {:.2} (paper ~0.10), rel IPC {:.3} (paper ~0.93)",
        rel_sdc[ammp_idx], rel_ipc[ammp_idx]
    );

    // Shape assertions.
    assert!(avg_sdc < 1.0, "squash must reduce SDC AVF");
    assert!(avg_due < avg_sdc, "combined techniques cut DUE more than SDC alone");
    assert!(avg_due < 0.60, "DUE reduction must be substantial (paper -57%)");
    assert!(avg_ipc > 0.90, "combined IPC cost must stay small (paper -2%)");
    assert!(
        rel_sdc[ammp_idx] < 0.35,
        "ammp must be the dramatic-reduction outlier (paper ~0.10)"
    );
    assert!(
        rel_sdc.iter().all(|&r| r < 1.05),
        "no benchmark may materially regress"
    );
    println!("\nAll Figure-4 shape assertions hold.");
}
