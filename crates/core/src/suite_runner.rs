//! Whole-suite sweeps.

use std::sync::Mutex;

use ses_pipeline::PipelineConfig;
use ses_types::SesError;
use ses_workloads::suite;

use crate::run::{run_workload, BenchSummary, WorkloadRun};

/// Runs the full 26-benchmark suite under one machine configuration,
/// in parallel, returning compact summaries in suite order.
///
/// # Errors
///
/// Returns the first workload failure encountered.
pub fn run_suite(pipeline: &PipelineConfig) -> Result<Vec<BenchSummary>, SesError> {
    run_suite_with(pipeline, 0, |_, run| run.summary())
}

/// [`run_suite`] with an explicit worker count and a per-workload
/// projection.
///
/// `threads == 0` means "one per available core". The projection maps
/// each finished [`WorkloadRun`] (plus its suite index) to whatever the
/// caller wants to keep — a summary row, a telemetry record, or both —
/// and results come back in suite order regardless of which worker
/// finished first, so any thread count yields identical output.
///
/// # Errors
///
/// Returns the first workload failure encountered.
pub fn run_suite_with<T: Send>(
    pipeline: &PipelineConfig,
    threads: usize,
    project: impl Fn(usize, WorkloadRun) -> T + Sync,
) -> Result<Vec<T>, SesError> {
    let specs = suite();
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<SesError>> = Mutex::new(Vec::new());
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(specs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                match run_workload(spec, pipeline) {
                    Ok(run) => results.lock().unwrap().push((i, project(i, run))),
                    Err(e) => errors.lock().unwrap().push(e),
                }
            });
        }
    });

    let mut errors = errors.into_inner().unwrap();
    if let Some(e) = errors.pop() {
        return Err(e);
    }
    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|(i, _)| *i);
    Ok(rows.into_iter().map(|(_, s)| s).collect())
}

/// Runs every suite workload sequentially, handing the *full* artifacts
/// (trace, dead map, residency log, AVF analysis) to the callback one at a
/// time so peak memory stays bounded.
///
/// # Errors
///
/// Returns the first workload failure encountered.
pub fn for_each_workload(
    pipeline: &PipelineConfig,
    mut f: impl FnMut(WorkloadRun),
) -> Result<(), SesError> {
    for spec in suite() {
        f(run_workload(&spec, pipeline)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Suite-wide runs are exercised by the bench harness and integration
    // tests; here we only check the plumbing on a tiny subset via
    // for_each_workload's building block.
    #[test]
    fn run_workload_plumbs_through() {
        let spec = ses_workloads::WorkloadSpec::quick("plumb", 9);
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        assert!(run.result.cycles > 0);
        assert_eq!(run.dead.len(), run.trace.len());
    }
}
