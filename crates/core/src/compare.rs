//! Paired machine-configuration comparisons (the shape of Figure 4 and of
//! the MITF argument in §3.2).

use ses_pipeline::PipelineConfig;
use ses_types::SesError;

use crate::run::BenchSummary;
use crate::suite_runner::run_suite;

/// One benchmark under two machine configurations.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Baseline summary.
    pub base: BenchSummary,
    /// Variant summary.
    pub variant: BenchSummary,
}

impl Comparison {
    /// Relative IPC (variant / base).
    pub fn rel_ipc(&self) -> f64 {
        self.variant.ipc.value() / self.base.ipc.value().max(1e-12)
    }

    /// Relative SDC AVF (variant / base).
    pub fn rel_sdc(&self) -> f64 {
        self.variant.sdc_avf.fraction() / self.base.sdc_avf.fraction().max(1e-12)
    }

    /// Relative DUE AVF (variant / base).
    pub fn rel_due(&self) -> f64 {
        self.variant.due_avf.fraction() / self.base.due_avf.fraction().max(1e-12)
    }

    /// Relative SDC MITF: `(IPC/AVF)_variant / (IPC/AVF)_base`. Values
    /// above 1 mean the variant completes more work between errors — the
    /// paper's §3.2 criterion for a worthwhile technique.
    pub fn sdc_mitf_gain(&self) -> f64 {
        self.rel_ipc() / self.rel_sdc().max(1e-12)
    }

    /// Relative DUE MITF.
    pub fn due_mitf_gain(&self) -> f64 {
        self.rel_ipc() / self.rel_due().max(1e-12)
    }

    /// Whether the variant is MITF-profitable on the SDC axis.
    pub fn is_profitable(&self) -> bool {
        self.sdc_mitf_gain() > 1.0
    }
}

/// Runs the full suite under both configurations and pairs the rows.
///
/// # Errors
///
/// Returns the first workload failure from either sweep.
pub fn compare_suites(
    base: &PipelineConfig,
    variant: &PipelineConfig,
) -> Result<Vec<Comparison>, SesError> {
    let b = run_suite(base)?;
    let v = run_suite(variant)?;
    Ok(b
        .into_iter()
        .zip(v)
        .map(|(base, variant)| {
            debug_assert_eq!(base.name, variant.name);
            Comparison { base, variant }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_workload;
    use ses_mem::Level;
    use ses_workloads::spec_by_name;

    #[test]
    fn squash_is_mitf_profitable_on_a_missy_benchmark() {
        let spec = spec_by_name("lucas").expect("lucas in suite");
        let base = run_workload(&spec, &PipelineConfig::default())
            .unwrap()
            .summary();
        let variant = run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1))
            .unwrap()
            .summary();
        let c = Comparison { base, variant };
        assert!(c.rel_sdc() < 1.0);
        assert!(c.rel_ipc() > 0.9);
        assert!(c.is_profitable(), "gain {:.2}", c.sdc_mitf_gain());
        assert!(c.sdc_mitf_gain() > c.rel_ipc(), "AVF does the work");
        assert!(c.due_mitf_gain() > 1.0);
    }
}
