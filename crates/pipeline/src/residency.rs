//! Instruction-queue residency records — the raw material of AVF analysis.

use serde::{Deserialize, Serialize};
use ses_isa::Instruction;
use ses_types::{Cycle, SeqNo};

/// What occupied an instruction-queue entry during a residency interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Occupant {
    /// A committed-path instruction; `trace_idx` indexes the functional
    /// trace (and is stable across squash-and-refetch, so one dynamic
    /// instruction can own several residencies).
    CorrectPath {
        /// Index into the golden [`ses_arch::ExecutionTrace`].
        trace_idx: u64,
    },
    /// A wrong-path instruction fetched past a misprediction.
    WrongPath,
}

/// How a residency interval ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResidencyEnd {
    /// The instruction retired (correct path only).
    Retired,
    /// Removed by the exposure-reduction squash action (will be refetched).
    Squashed,
    /// Removed by misprediction recovery (wrong path only).
    FlushedWrongPath,
    /// Still resident when the simulation ended.
    Drained,
}

/// One occupancy interval of one instruction-queue slot.
///
/// The AVF analysis classifies every (bit × cycle) of the interval using
/// the occupant kind, the instruction's bit-field map, and the
/// dead-instruction analysis of the functional trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Residency {
    /// Queue slot index (0-based).
    pub slot: usize,
    /// Fetch order of this occupancy.
    pub seq: SeqNo,
    /// Who occupied the slot.
    pub occupant: Occupant,
    /// The (uncorrupted) instruction held.
    pub instr: Instruction,
    /// Cycle the entry was allocated.
    pub alloc: Cycle,
    /// Cycle the entry was last read by issue logic (`None` if never
    /// issued). After this point the entry is Ex-ACE: it persists only for
    /// possible replay and is never read again.
    pub last_read: Option<Cycle>,
    /// Cycle the entry was deallocated.
    pub dealloc: Cycle,
    /// How the interval ended.
    pub end: ResidencyEnd,
    /// Whether the occupant's qualifying predicate evaluated false.
    pub falsely_predicated: bool,
}

impl Residency {
    /// Total cycles the entry was valid.
    pub fn valid_cycles(&self) -> u64 {
        self.dealloc.since(self.alloc)
    }

    /// Cycles from allocation to last read (the window in which a strike
    /// can be *detected*, and in which ACE state is exposed). Zero if never
    /// read.
    pub fn exposed_cycles(&self) -> u64 {
        self.last_read.map(|r| r.since(self.alloc)).unwrap_or(0)
    }

    /// Cycles spent in Ex-ACE state (after the last read, before
    /// deallocation).
    pub fn ex_ace_cycles(&self) -> u64 {
        match self.last_read {
            Some(r) => self.dealloc.since(r),
            None => 0,
        }
    }

    /// Whether this was a wrong-path occupancy.
    pub fn is_wrong_path(&self) -> bool {
        matches!(self.occupant, Occupant::WrongPath)
    }

    /// The functional-trace index, when on the correct path.
    pub fn trace_idx(&self) -> Option<u64> {
        match self.occupant {
            Occupant::CorrectPath { trace_idx } => Some(trace_idx),
            Occupant::WrongPath => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(alloc: u64, read: Option<u64>, dealloc: u64) -> Residency {
        Residency {
            slot: 0,
            seq: SeqNo::new(1),
            occupant: Occupant::CorrectPath { trace_idx: 7 },
            instr: Instruction::nop(),
            alloc: Cycle::new(alloc),
            last_read: read.map(Cycle::new),
            dealloc: Cycle::new(dealloc),
            end: ResidencyEnd::Retired,
            falsely_predicated: false,
        }
    }

    #[test]
    fn interval_accounting() {
        let r = res(10, Some(25), 30);
        assert_eq!(r.valid_cycles(), 20);
        assert_eq!(r.exposed_cycles(), 15);
        assert_eq!(r.ex_ace_cycles(), 5);
        assert_eq!(r.trace_idx(), Some(7));
        assert!(!r.is_wrong_path());
    }

    #[test]
    fn never_read_has_no_exposure() {
        let r = res(10, None, 30);
        assert_eq!(r.exposed_cycles(), 0);
        assert_eq!(r.ex_ace_cycles(), 0);
        assert_eq!(r.valid_cycles(), 20);
    }

    #[test]
    fn wrong_path_has_no_trace_idx() {
        let mut r = res(0, None, 5);
        r.occupant = Occupant::WrongPath;
        assert!(r.is_wrong_path());
        assert_eq!(r.trace_idx(), None);
    }
}
