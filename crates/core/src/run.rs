//! Single-workload runs and their summaries.

use ses_arch::{Emulator, ExecutionTrace};
use ses_avf::{AvfAnalysis, DeadMap, SpanSet, StateFractions, Technique};
use ses_isa::Program;
use ses_pipeline::{Pipeline, PipelineConfig, PipelineResult};
use ses_types::{Avf, Ipc, SesError};
use ses_workloads::{synthesize, Category, WorkloadSpec};

/// False-DUE bit-cycles covered by each tracking technique (eagerly
/// evaluated so summaries stay small).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TechniqueCoverage {
    /// Total false-DUE bit-cycles (the denominator).
    pub total_false: u64,
    /// π carried to the commit point (wrong path + false predication +
    /// squash discard).
    pub pi_commit: u64,
    /// The anti-π bit (neutral non-opcode).
    pub anti_pi: u64,
    /// A 512-entry PET buffer.
    pub pet512: u64,
    /// π bit per register (all FDD-via-register).
    pub pi_register: u64,
    /// π to the store-commit point (adds TDD-via-register).
    pub pi_store: u64,
    /// π through the memory system (adds dead-via-memory; 100 %).
    pub pi_memory: u64,
}

/// Compact per-benchmark result row (what the paper's figures plot).
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Workload name.
    pub name: String,
    /// INT or FP.
    pub category: Category,
    /// Committed instructions.
    pub committed: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: Ipc,
    /// SDC AVF of the unprotected queue.
    pub sdc_avf: Avf,
    /// DUE AVF of the parity-protected queue (no tracking).
    pub due_avf: Avf,
    /// The false-DUE component.
    pub false_due_avf: Avf,
    /// Queue state fractions (idle / unread / un-ACE / ACE).
    pub states: StateFractions,
    /// Per-technique false-DUE coverage.
    pub coverage: TechniqueCoverage,
    /// Squash actions triggered.
    pub squashes: u64,
    /// Branch misprediction ratio.
    pub mispredict_ratio: f64,
    /// Wrong-path instructions fetched.
    pub wrong_path_fetched: u64,
}

impl BenchSummary {
    /// Residual false-DUE AVF after π-at-commit + anti-π + the given
    /// dead-coverage amount (a [`TechniqueCoverage`] field).
    pub fn residual_false_due(&self, dead_covered: u64, total_bit_cycles: u64) -> Avf {
        let covered = self.coverage.pi_commit + self.coverage.anti_pi + dead_covered;
        Avf::from_bit_cycles(
            self.coverage.total_false.saturating_sub(covered),
            total_bit_cycles,
        )
    }

    /// Total simulated bit-cycles (for AVF reconstruction).
    pub fn total_bit_cycles(&self, iq_entries: u64) -> u64 {
        self.cycles * iq_entries * 64
    }
}

/// Everything produced by one workload run.
pub struct WorkloadRun {
    /// The workload specification.
    pub spec: WorkloadSpec,
    /// The synthesised program image.
    pub program: Program,
    /// The golden functional trace.
    pub trace: ExecutionTrace,
    /// Dead-instruction classification of the trace.
    pub dead: DeadMap,
    /// The timing result (includes the residency log).
    pub result: PipelineResult,
    /// The canonical interval representation of the residency log — the
    /// one span derivation `avf` was aggregated from, kept so downstream
    /// consumers (samplers, oracles) never re-derive lifetimes.
    pub spans: SpanSet,
    /// The ACE/AVF analysis (aggregated from `spans` by span
    /// arithmetic).
    pub avf: AvfAnalysis,
}

impl WorkloadRun {
    /// Builds the compact summary row.
    pub fn summary(&self) -> BenchSummary {
        let coverage = TechniqueCoverage {
            total_false: self
                .avf
                .false_due_avf()
                .fraction()
                .mul_add(self.avf.total_bit_cycles() as f64, 0.0) as u64,
            pi_commit: self.avf.covered_by(Technique::PiAtCommit, &self.dead),
            anti_pi: self.avf.covered_by(Technique::AntiPi, &self.dead),
            pet512: self.avf.covered_by(Technique::Pet(512), &self.dead),
            pi_register: self.avf.covered_by(Technique::PiRegister, &self.dead),
            pi_store: self.avf.covered_by(Technique::PiStoreCommit, &self.dead),
            pi_memory: self.avf.covered_by(Technique::PiMemory, &self.dead),
        };
        BenchSummary {
            name: self.spec.name.clone(),
            category: self.spec.category,
            committed: self.result.committed,
            cycles: self.result.cycles,
            ipc: self.result.ipc(),
            sdc_avf: self.avf.sdc_avf(),
            due_avf: self.avf.due_avf(),
            false_due_avf: self.avf.false_due_avf(),
            states: self.avf.state_fractions(),
            coverage,
            squashes: self.result.squashes,
            mispredict_ratio: self.result.mispredict_ratio(),
            wrong_path_fetched: self.result.wrong_path_fetched,
        }
    }
}

/// Synthesises, functionally executes, times, and analyses one workload.
///
/// # Errors
///
/// Propagates functional-emulation failures; returns a budget error if the
/// golden run does not halt within 4× the target instruction count.
pub fn run_workload(
    spec: &WorkloadSpec,
    pipeline: &PipelineConfig,
) -> Result<WorkloadRun, SesError> {
    let program = synthesize(spec);
    let budget = spec.target_dynamic * 4;
    let trace = Emulator::new(&program).run(budget)?;
    if !trace.halted() {
        return Err(SesError::BudgetExceeded {
            resource: "instructions",
            limit: budget,
        });
    }
    let dead = DeadMap::analyze(&trace);
    let result = Pipeline::new(pipeline.clone()).run(&program, &trace);
    let spans = SpanSet::derive(&result, &dead);
    let avf = AvfAnalysis::from_spans(&spans);
    Ok(WorkloadRun {
        spec: spec.clone(),
        program,
        trace,
        dead,
        result,
        spans,
        avf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_mem::Level;

    #[test]
    fn run_and_summarise() {
        let spec = WorkloadSpec::quick("core-test", 2);
        let run = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let s = run.summary();
        assert_eq!(s.committed, run.trace.len() as u64);
        assert!(s.ipc.value() > 0.0);
        assert!(s.due_avf.fraction() >= s.sdc_avf.fraction());
        assert!(s.coverage.pi_memory >= s.coverage.pi_store);
        assert!(s.coverage.pi_store >= s.coverage.pi_register);
        assert!(s.coverage.pi_register >= s.coverage.pet512);
        // Full coverage suppresses all dead false DUE; residual after
        // memory scope is only what pi_commit/anti_pi/memory don't span
        // (nothing).
        let resid = s.residual_false_due(s.coverage.pi_memory, run.avf.total_bit_cycles());
        assert!(resid.fraction() <= s.false_due_avf.fraction());
    }

    #[test]
    fn squash_config_reduces_exposure() {
        let spec = ses_workloads::spec_by_name("twolf").unwrap();
        let base = run_workload(&spec, &PipelineConfig::default()).unwrap();
        let squash =
            run_workload(&spec, &PipelineConfig::default().with_squash(Level::L1)).unwrap();
        assert!(squash.result.squashes > 0);
        assert!(
            squash.avf.sdc_avf().fraction() < base.avf.sdc_avf().fraction(),
            "squash must reduce SDC AVF"
        );
        // MITF criterion (paper §3.2): AVF falls more than IPC.
        let avf_drop = squash.avf.sdc_avf().relative_to(base.avf.sdc_avf());
        let ipc_drop = squash.result.ipc().relative_to(base.result.ipc());
        assert!(avf_drop < ipc_drop, "relative AVF loss exceeds IPC loss");
    }
}
