//! The Post-commit Error Tracking (PET) buffer (paper §4.3.3, design 1).
//!
//! A FIFO log of committed instructions. When a π-marked instruction is
//! evicted, the buffer is scanned: if the instruction's destination
//! register was overwritten by a younger logged instruction *before any
//! intervening read*, the instruction is provably first-level dynamically
//! dead and the error is suppressed; otherwise it must be signalled.
//! Unlike the register-π scheme, the PET buffer can name the exact
//! instruction that was struck.

use std::collections::VecDeque;

use ses_types::Reg;

/// One logged committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PetEntry {
    /// Dynamic-trace index of the instruction (precise error attribution).
    pub trace_idx: u64,
    /// The general register it wrote, if any.
    pub dest: Option<Reg>,
    /// Registers it read (at most two in SES-64).
    pub reads: [Option<Reg>; 2],
    /// Its π bit at commit.
    pub pi: bool,
}

/// Verdict for an evicted π-marked entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PetVerdict {
    /// Overwritten before any read within the log: provably FDD, suppress.
    ProvenDead,
    /// A logged read intervened, the log ended first, or the instruction
    /// has no register destination: must signal.
    MustSignal,
}

/// The PET buffer.
///
/// # Example
///
/// ```
/// use ses_pipeline::{PetBuffer, PetEntry, PetVerdict};
/// use ses_types::Reg;
///
/// let mut pet = PetBuffer::new(4);
/// // A poisoned write to r1, then an overwrite of r1 with no read between:
/// let evicted = pet.push(PetEntry { trace_idx: 0, dest: Some(Reg::new(1)), reads: [None, None], pi: true });
/// assert!(evicted.is_empty());
/// pet.push(PetEntry { trace_idx: 1, dest: Some(Reg::new(1)), reads: [None, None], pi: false });
/// let verdicts = pet.drain();
/// assert_eq!(verdicts[0], (0, PetVerdict::ProvenDead));
/// ```
#[derive(Debug, Clone)]
pub struct PetBuffer {
    capacity: usize,
    fifo: VecDeque<PetEntry>,
    scans: u64,
}

impl PetBuffer {
    /// Creates a PET buffer logging up to `capacity` committed
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PET buffer needs at least one entry");
        PetBuffer {
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            scans: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Number of eviction scans performed (these are rare in real
    /// operation — errors arrive on the order of days).
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Logs a committed instruction. If the buffer was full, the oldest
    /// entry is evicted first; when the evictee carries a π bit, the
    /// verdict for it is returned as `(trace_idx, verdict)`.
    pub fn push(&mut self, entry: PetEntry) -> Vec<(u64, PetVerdict)> {
        let mut out = Vec::new();
        if self.fifo.len() == self.capacity {
            let oldest = self.fifo.pop_front().expect("full buffer has a head");
            if oldest.pi {
                out.push((oldest.trace_idx, self.judge(&oldest)));
            }
        }
        self.fifo.push_back(entry);
        out
    }

    /// Judges `evicted` against the remaining (younger) log contents.
    fn judge(&mut self, evicted: &PetEntry) -> PetVerdict {
        self.scans += 1;
        let Some(dest) = evicted.dest else {
            // Stores, branches, outputs: PET cannot prove them dead.
            return PetVerdict::MustSignal;
        };
        for e in &self.fifo {
            if e.reads.iter().flatten().any(|&r| r == dest) {
                return PetVerdict::MustSignal;
            }
            if e.dest == Some(dest) {
                return PetVerdict::ProvenDead;
            }
        }
        PetVerdict::MustSignal
    }

    /// Drains the buffer at end of run, judging every remaining π entry in
    /// age order.
    pub fn drain(&mut self) -> Vec<(u64, PetVerdict)> {
        let mut out = Vec::new();
        while let Some(oldest) = self.fifo.pop_front() {
            if oldest.pi {
                out.push((oldest.trace_idx, self.judge(&oldest)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(idx: u64, dest: Option<u8>, reads: [Option<u8>; 2], pi: bool) -> PetEntry {
        PetEntry {
            trace_idx: idx,
            dest: dest.map(Reg::new),
            reads: [reads[0].map(Reg::new), reads[1].map(Reg::new)],
            pi,
        }
    }

    #[test]
    fn overwrite_before_read_proves_dead() {
        let mut pet = PetBuffer::new(2);
        pet.push(entry(0, Some(1), [None, None], true));
        pet.push(entry(1, Some(1), [None, None], false));
        // Pushing a third entry evicts the poisoned one.
        let v = pet.push(entry(2, Some(2), [None, None], false));
        assert_eq!(v, vec![(0, PetVerdict::ProvenDead)]);
        assert_eq!(pet.scans(), 1);
    }

    #[test]
    fn intervening_read_forces_signal() {
        let mut pet = PetBuffer::new(3);
        pet.push(entry(0, Some(1), [None, None], true));
        pet.push(entry(1, Some(3), [Some(1), None], false)); // reads r1
        pet.push(entry(2, Some(1), [None, None], false)); // overwrite after
        let v = pet.push(entry(3, Some(4), [None, None], false));
        assert_eq!(v, vec![(0, PetVerdict::MustSignal)]);
    }

    #[test]
    fn no_overwrite_in_window_forces_signal() {
        let mut pet = PetBuffer::new(2);
        pet.push(entry(0, Some(1), [None, None], true));
        pet.push(entry(1, Some(2), [None, None], false));
        let v = pet.push(entry(2, Some(3), [None, None], false));
        assert_eq!(
            v,
            vec![(0, PetVerdict::MustSignal)],
            "kill outside the window cannot be proven"
        );
    }

    #[test]
    fn destinationless_instruction_signals() {
        let mut pet = PetBuffer::new(1);
        pet.push(entry(0, None, [Some(5), None], true));
        let v = pet.push(entry(1, Some(1), [None, None], false));
        assert_eq!(v, vec![(0, PetVerdict::MustSignal)]);
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut pet = PetBuffer::new(1);
        pet.push(entry(0, Some(1), [None, None], false));
        let v = pet.push(entry(1, Some(2), [None, None], false));
        assert!(v.is_empty());
        assert_eq!(pet.scans(), 0, "no scan without a π eviction");
    }

    #[test]
    fn drain_judges_remaining_entries() {
        let mut pet = PetBuffer::new(8);
        pet.push(entry(0, Some(1), [None, None], true));
        pet.push(entry(1, Some(1), [None, None], false)); // kills 0
        pet.push(entry(2, Some(2), [None, None], true)); // never killed
        let v = pet.drain();
        assert_eq!(
            v,
            vec![(0, PetVerdict::ProvenDead), (2, PetVerdict::MustSignal)]
        );
        assert!(pet.is_empty());
    }

    #[test]
    fn capacity_and_len_track() {
        let mut pet = PetBuffer::new(3);
        assert_eq!(pet.capacity(), 3);
        for i in 0..5 {
            pet.push(entry(i, Some(1), [None, None], false));
        }
        assert_eq!(pet.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = PetBuffer::new(0);
    }
}
