//! Functional (architectural) emulator for SES-64 programs.
//!
//! The emulator executes a [`ses_isa::Program`] at architectural level and
//! produces:
//!
//! * an [`ExecutionTrace`] — one [`DynInstr`] record per committed-path
//!   dynamic instruction, carrying everything the timing model
//!   (`ses-pipeline`) and the ACE/dead-instruction analysis (`ses-avf`)
//!   need: actual branch outcomes and targets, guard evaluation (falsely
//!   predicated or not), register/memory def-use, and call depth;
//! * the program's **output stream** (values written by `out` instructions),
//!   which is the paper's notion of user-visible final state: a fault is an
//!   SDC only if this stream changes.
//!
//! The fault-injection engine re-runs the emulator with a corrupted
//! instruction word substituted at one dynamic position
//! ([`Emulator::run_with_overrides`]) and compares output streams against
//! the golden run.
//!
//! # Example
//!
//! ```
//! use ses_arch::Emulator;
//! use ses_isa::{Instruction, Program};
//! use ses_types::Reg;
//!
//! let program = Program::new(vec![
//!     Instruction::movi(Reg::new(1), 21),
//!     Instruction::add(Reg::new(2), Reg::new(1), Reg::new(1)),
//!     Instruction::out(Reg::new(2)),
//!     Instruction::halt(),
//! ]);
//! let trace = Emulator::new(&program).run(1_000)?;
//! assert_eq!(trace.output(), &[42]);
//! # Ok::<(), ses_types::SesError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod emu;
mod memory;
mod state;
mod stepper;
mod trace;

pub use emu::{Emulator, MachineSnapshot, RunOutcome};
pub use stepper::Stepper;
pub use memory::DataMemory;
pub use state::ArchState;
pub use trace::{DynInstr, ExecutionTrace, TraceStats};
