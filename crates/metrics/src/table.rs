//! Fixed-width ASCII table rendering for the experiment harness.

use std::fmt;

/// A simple right-padded ASCII table with a header row.
///
/// # Example
///
/// ```
/// use ses_metrics::Table;
///
/// let mut t = Table::new(vec!["Design point", "IPC", "SDC AVF"]);
/// t.row(vec!["No squashing".into(), "1.21".into(), "29%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("No squashing"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<&str>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of displayable items.
    pub fn row_of(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bench"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "yy".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("1 "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_of_displays() {
        let mut t = Table::new(vec!["n", "v"]);
        t.row_of(&[&42, &"hi"]);
        assert!(t.to_string().contains("42"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
