//! Binary encoding of SES-64 instructions.
//!
//! Layout of the 64-bit instruction word (LSB first):
//!
//! ```text
//! bits  0..6    opcode      (6 bits)
//! bits  6..9    qp          (3 bits)  qualifying predicate
//! bits  9..15   dest        (6 bits)  destination register specifier
//! bits 15..21   src1        (6 bits)
//! bits 21..27   src2        (6 bits)
//! bits 27..30   pdest       (3 bits)  destination predicate specifier
//! bits 30..62   imm         (32 bits, two's complement)
//! bits 62..64   reserved    (must be zero)
//! ```
//!
//! The layout is shared with [`crate::fields`], which exposes it as a
//! per-bit classification for the AVF analysis and the fault injector.

use ses_types::{Pred, Reg, SesError};

use crate::instr::Instruction;
use crate::opcode::Opcode;

/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 8;

pub(crate) const OPCODE_LO: u32 = 0;
pub(crate) const OPCODE_BITS: u32 = 6;
pub(crate) const QP_LO: u32 = 6;
pub(crate) const QP_BITS: u32 = 3;
pub(crate) const DEST_LO: u32 = 9;
pub(crate) const DEST_BITS: u32 = 6;
pub(crate) const SRC1_LO: u32 = 15;
pub(crate) const SRC1_BITS: u32 = 6;
pub(crate) const SRC2_LO: u32 = 21;
pub(crate) const SRC2_BITS: u32 = 6;
pub(crate) const PDEST_LO: u32 = 27;
pub(crate) const PDEST_BITS: u32 = 3;
pub(crate) const IMM_LO: u32 = 30;
pub(crate) const IMM_BITS: u32 = 32;
pub(crate) const RESERVED_LO: u32 = 62;
pub(crate) const RESERVED_BITS: u32 = 2;

fn put(word: &mut u64, lo: u32, bits: u32, value: u64) {
    debug_assert!(value < (1u64 << bits), "field value out of range");
    *word |= value << lo;
}

fn get(word: u64, lo: u32, bits: u32) -> u64 {
    (word >> lo) & ((1u64 << bits) - 1)
}

/// Encodes an instruction into its canonical 64-bit word.
///
/// Fields the opcode does not use are encoded as the instruction carries
/// them (normally zero from the named constructors), so
/// `decode(encode(i)) == i` for any constructed instruction.
pub fn encode(instr: &Instruction) -> u64 {
    let mut w = 0u64;
    put(&mut w, OPCODE_LO, OPCODE_BITS, instr.op.code() as u64);
    put(&mut w, QP_LO, QP_BITS, instr.qp.index() as u64);
    put(&mut w, DEST_LO, DEST_BITS, instr.dest.index() as u64);
    put(&mut w, SRC1_LO, SRC1_BITS, instr.src1.index() as u64);
    put(&mut w, SRC2_LO, SRC2_BITS, instr.src2.index() as u64);
    put(&mut w, PDEST_LO, PDEST_BITS, instr.pdest.index() as u64);
    put(&mut w, IMM_LO, IMM_BITS, instr.imm as u32 as u64);
    w
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`SesError::Decode`] if the opcode field does not name a valid
/// opcode or the reserved bits are non-zero. This is exactly the situation a
/// particle strike on the opcode bits of a queue entry can produce; the
/// fault injector relies on decode failures being detected, not panicking.
pub fn decode(word: u64) -> Result<Instruction, SesError> {
    if get(word, RESERVED_LO, RESERVED_BITS) != 0 {
        return Err(SesError::Decode {
            word,
            reason: "reserved bits set".into(),
        });
    }
    let code = get(word, OPCODE_LO, OPCODE_BITS) as u8;
    let op = Opcode::from_code(code).ok_or_else(|| SesError::Decode {
        word,
        reason: format!("unknown opcode {code}"),
    })?;
    Ok(Instruction {
        op,
        qp: Pred::new(get(word, QP_LO, QP_BITS) as u8),
        dest: Reg::new(get(word, DEST_LO, DEST_BITS) as u8),
        src1: Reg::new(get(word, SRC1_LO, SRC1_BITS) as u8),
        src2: Reg::new(get(word, SRC2_LO, SRC2_BITS) as u8),
        pdest: Pred::new(get(word, PDEST_LO, PDEST_BITS) as u8),
        imm: get(word, IMM_LO, IMM_BITS) as u32 as i32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        (
            0usize..Opcode::ALL.len(),
            0u8..8,
            0u8..64,
            0u8..64,
            0u8..64,
            0u8..8,
            any::<i32>(),
        )
            .prop_map(|(op, qp, d, s1, s2, pd, imm)| Instruction {
                op: Opcode::ALL[op],
                qp: Pred::new(qp),
                dest: Reg::new(d),
                src1: Reg::new(s1),
                src2: Reg::new(s2),
                pdest: Pred::new(pd),
                imm,
            })
    }

    proptest! {
        #[test]
        fn roundtrip_any_instruction(instr in arb_instruction()) {
            let word = encode(&instr);
            prop_assert_eq!(decode(word).unwrap(), instr);
        }

        #[test]
        fn reserved_bits_always_zero(instr in arb_instruction()) {
            let word = encode(&instr);
            prop_assert_eq!(word >> 62, 0);
        }

        #[test]
        fn single_bit_flip_never_panics(instr in arb_instruction(), bit in 0u32..64) {
            // A strike anywhere in the word must decode cleanly or produce
            // a detected decode error -- never a panic.
            let word = encode(&instr) ^ (1u64 << bit);
            let _ = decode(word);
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        // Opcode field = 63 is unassigned.
        let err = decode(63).unwrap_err();
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn decode_rejects_reserved_bits() {
        let word = encode(&Instruction::nop()) | (1u64 << 62);
        let err = decode(word).unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn negative_immediate_roundtrips() {
        let i = Instruction::addi(Reg::new(1), Reg::new(2), -12345);
        assert_eq!(decode(encode(&i)).unwrap().imm, -12345);
        let j = Instruction::movi(Reg::new(1), i32::MIN);
        assert_eq!(decode(encode(&j)).unwrap().imm, i32::MIN);
    }

    #[test]
    fn fields_do_not_overlap() {
        let spans = [
            (OPCODE_LO, OPCODE_BITS),
            (QP_LO, QP_BITS),
            (DEST_LO, DEST_BITS),
            (SRC1_LO, SRC1_BITS),
            (SRC2_LO, SRC2_BITS),
            (PDEST_LO, PDEST_BITS),
            (IMM_LO, IMM_BITS),
            (RESERVED_LO, RESERVED_BITS),
        ];
        let mut covered = 0u64;
        for (lo, bits) in spans {
            let mask = ((1u64 << bits) - 1) << lo;
            assert_eq!(covered & mask, 0, "field overlap at bit {lo}");
            covered |= mask;
        }
        assert_eq!(covered, u64::MAX, "fields must cover all 64 bits");
    }
}
