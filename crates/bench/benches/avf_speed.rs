//! Measures the analytic-AVF throughput of the interval-algebra span
//! engine against the exhaustive per-bit-cycle reference engine over the
//! full 26-workload suite.
//!
//! Both engines consume the *same* prepared runs (synthesis, functional
//! trace, dead map, and timing result are built once, outside the timed
//! region) and must produce bit-for-bit identical analyses — the only
//! difference is the accounting: `width × span_length` sums over at most
//! two segments per residency, versus visiting every (bit × cycle)
//! individually. Timing pairs are interleaved (span and exhaustive run
//! back-to-back within each rep) and the reported speedup is the median
//! of per-rep ratios, the same pattern as `campaign_speed` — single-shot
//! wall ratios flap under shared-machine load.
//!
//! Results land in `BENCH_avf.json` at the repository root, and the
//! ≥10x gate is asserted here. Reps default to 3; set `AVF_SPEED_REPS`
//! to override (CI smoke uses 1).
//!
//! Run with `cargo bench -p ses-bench --bench avf_speed`.

use std::time::Instant;

use ses_avf::exhaustive::analyze_exhaustive;
use ses_avf::{AvfAnalysis, DeadMap, SpanSet};
use ses_core::{suite, synthesize};
use ses_pipeline::{Pipeline, PipelineConfig, PipelineResult};

/// One prepared workload: everything both engines need, built untimed.
struct Prepared {
    name: String,
    dead: DeadMap,
    result: PipelineResult,
}

fn prepare_suite() -> Vec<Prepared> {
    let pipeline = Pipeline::new(PipelineConfig::default());
    suite()
        .iter()
        .map(|spec| {
            let program = synthesize(spec);
            let trace = ses_arch::Emulator::new(&program)
                .run(spec.target_dynamic * 4)
                .expect("golden trace");
            assert!(trace.halted(), "{} must halt", spec.name);
            let dead = DeadMap::analyze(&trace);
            let result = pipeline.run(&program, &trace);
            Prepared {
                name: spec.name.clone(),
                dead,
                result,
            }
        })
        .collect()
}

fn main() {
    let reps: usize = std::env::var("AVF_SPEED_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    assert!(reps >= 1, "AVF_SPEED_REPS must be at least 1");

    println!("\n=== Analytic-AVF speed: span arithmetic vs per-bit-cycle ===");
    println!("(26-workload suite, {reps} interleaved rep pairs)\n");

    let t = Instant::now();
    let prepared = prepare_suite();
    let prepare_wall = t.elapsed().as_secs_f64();
    let workloads = prepared.len();
    let total_bit_cycles: u64 = prepared
        .iter()
        .map(|p| p.result.cycles * p.result.iq_capacity as u64 * 64)
        .sum();
    let residencies: usize = prepared.iter().map(|p| p.result.residencies.len()).sum();
    println!(
        "prepared {workloads} workloads in {prepare_wall:.2}s \
         ({residencies} residencies, {total_bit_cycles} bit-cycles)"
    );

    // Identity guard before any timing: the two engines must agree
    // exactly on every workload, or the speed comparison is meaningless.
    for p in &prepared {
        let span = AvfAnalysis::new(&p.result, &p.dead);
        let exhaustive = analyze_exhaustive(&p.result, &p.dead);
        assert_eq!(
            span.decomposition(),
            exhaustive.decomposition(),
            "{}: span and exhaustive decompositions diverge",
            p.name
        );
        assert_eq!(
            span.timeline(),
            exhaustive.timeline(),
            "{}: span and exhaustive timelines diverge",
            p.name
        );
    }
    println!("identity guard: span == exhaustive on all {workloads} workloads");

    let mut ratios = Vec::with_capacity(reps);
    let mut span_wall = f64::INFINITY;
    let mut exhaustive_wall = f64::INFINITY;
    for rep in 0..reps {
        let t = Instant::now();
        for p in &prepared {
            std::hint::black_box(AvfAnalysis::from_spans(&SpanSet::derive(
                &p.result, &p.dead,
            )));
        }
        let sw = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for p in &prepared {
            std::hint::black_box(analyze_exhaustive(&p.result, &p.dead));
        }
        let ew = t.elapsed().as_secs_f64();
        ratios.push(ew / sw.max(1e-9));
        span_wall = span_wall.min(sw);
        exhaustive_wall = exhaustive_wall.min(ew);
        println!(
            "rep {}: span {sw:>8.4}s  exhaustive {ew:>8.3}s  ratio {:>7.1}x",
            rep + 1,
            ew / sw.max(1e-9)
        );
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speedup = ratios[ratios.len() / 2];

    println!(
        "\nspan engine:        {span_wall:.4}s for the suite \
         ({:.0} bit-cycles/s equivalent, min of {reps})",
        total_bit_cycles as f64 / span_wall.max(1e-12)
    );
    println!(
        "exhaustive engine:  {exhaustive_wall:.3}s for the suite \
         ({:.0} bit-cycles/s, min of {reps})",
        total_bit_cycles as f64 / exhaustive_wall.max(1e-12)
    );
    println!("analytic-AVF speedup: {speedup:.1}x (median of {reps} interleaved pairs)");

    let json = format!(
        "{{\n  \"workloads\": {workloads},\n  \"reps\": {reps},\n  \
         \"residencies\": {residencies},\n  \"total_bit_cycles\": {total_bit_cycles},\n  \
         \"prepare_wall_s\": {prepare_wall:.6},\n  \"span_wall_s\": {span_wall:.6},\n  \
         \"exhaustive_wall_s\": {exhaustive_wall:.6},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_avf.json");
    std::fs::write(path, &json).expect("write BENCH_avf.json");
    println!("\nwrote {path}");

    assert!(
        speedup >= 10.0,
        "span engine must be at least 10x faster than per-bit-cycle accounting \
         ({speedup:.1}x measured)"
    );
    println!("Speedup target (>= 10x) holds.");
}
