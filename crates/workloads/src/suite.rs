//! The 26-entry named benchmark suite (the paper's Table 2 analogue).
//!
//! Names follow the SPEC CPU2000 programs the paper used; each entry's
//! parameters are chosen so that the *suite-level* behaviour matches the
//! qualitative profile the paper reports: integer codes are branchy with
//! modest neutral density; FP codes are loop-regular with many no-ops and
//! prefetches and larger working sets; `mcf` is memory-bound; `ammp` queues
//! instructions behind a few critical misses (the paper's squash outlier).

use crate::spec::{BlockMix, Category, WorkloadSpec};

fn spec(
    name: &str,
    category: Category,
    seed: u64,
    ws_kb: u64,
    stride: u64,
    far_gate_mask: u32,
    mix: BlockMix,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        category,
        seed,
        target_dynamic: 240_000,
        mix,
        working_set_bytes: ws_kb * 1024,
        stride_bytes: stride,
        far_gate_mask,
    }
}

fn int_mix(branchy: u8, neutral: u8, load_far: u8) -> BlockMix {
    BlockMix {
        arith: 4,
        load_live: 2,
        load_far,
        load_deep: 1,
        load_dead: 0,
        store_live: 1,
        store_dead: 2,
        dead_chain: 2,
        dead_slow: 1,
        neutral,
        predicated: 1,
        branchy,
        call: 3,
    }
}

fn fp_mix(neutral: u8, load_far: u8) -> BlockMix {
    BlockMix {
        arith: 5,
        load_live: 2,
        load_far,
        load_deep: 1,
        load_dead: 0,
        store_live: 1,
        store_dead: 2,
        dead_chain: 2,
        dead_slow: 1,
        neutral,
        predicated: 1,
        branchy: 1,
        call: 3,
    }
}

/// The full 26-benchmark suite: 12 integer-like and 14 FP-like entries.
pub fn suite() -> Vec<WorkloadSpec> {
    use Category::{FloatingPoint as FP, Integer as INT};
    vec![
        // Working sets are sized so the far-load walk wraps within a run;
        // the far-gate mask sets miss frequency and the working set / stride
        // choose the miss depth: "L0" entries have no far loads, "L1"
        // entries miss L0 and hit L1 (the paper's 10-cycle miss), "L2"
        // entries thrash L1 and hit L2 (the 25-cycle miss), and the
        // memory-bound entries stream cold lines from memory.
        // --- integer-like (12) ---
        spec("bzip2", INT, 0x1001, 32, 128, 3, int_mix(2, 20, 1)), // L1
        spec("cc", INT, 0x1002, 256, 128, 7, int_mix(3, 16, 1)),   // L2
        spec("crafty", INT, 0x1003, 4, 16, 0, int_mix(3, 15, 0)),  // L0
        spec("eon", INT, 0x1004, 4, 16, 0, int_mix(2, 16, 0)),     // L0
        spec("gap", INT, 0x1005, 8, 32, 0, int_mix(2, 16, 0)),     // L0
        spec("gzip", INT, 0x1006, 32, 128, 3, int_mix(2, 19, 1)),  // L1
        spec("mcf", INT, 0x1007, 64 * 1024, 512, 1, int_mix(2, 19, 1)), // memory
        spec("parser", INT, 0x1008, 256, 128, 7, int_mix(3, 15, 1)), // L2
        spec("perlbmk", INT, 0x1009, 4, 8, 0, int_mix(3, 16, 0)),  // L0
        spec("twolf", INT, 0x100a, 256, 128, 7, int_mix(2, 15, 1)), // L2
        spec("vortex", INT, 0x100b, 32, 128, 3, int_mix(2, 20, 1)), // L1
        spec("vpr", INT, 0x100c, 16, 64, 3, int_mix(2, 15, 1)),    // L1
        // --- floating-point-like (14) ---
        // `ammp` queues work behind critical memory-latency misses: the
        // paper's squash outlier (~90 % AVF reduction for little IPC).
        spec("ammp", FP, 0x2001, 64 * 1024, 8192, 0, fp_mix(23, 1)), // memory
        spec("applu", FP, 0x2002, 256, 128, 7, fp_mix(23, 1)),     // L2
        spec("apsi", FP, 0x2003, 32, 128, 3, fp_mix(26, 1)),       // L1
        spec("art", FP, 0x2004, 64 * 1024, 1024, 1, fp_mix(26, 1)), // memory
        spec("equake", FP, 0x2005, 256, 128, 7, fp_mix(23, 1)),    // L2
        spec("facerec", FP, 0x2006, 32, 64, 3, fp_mix(26, 1)),     // L1
        spec("fma3d", FP, 0x2007, 64, 256, 3, fp_mix(27, 1)),      // L1
        spec("galgel", FP, 0x2008, 8, 16, 0, fp_mix(22, 0)),       // L0
        spec("lucas", FP, 0x2009, 256, 128, 7, fp_mix(23, 1)),     // L2
        spec("mesa", FP, 0x200a, 4, 16, 0, fp_mix(21, 0)),         // L0
        spec("mgrid", FP, 0x200b, 32, 128, 3, fp_mix(23, 1)),      // L1
        spec("sixtrack", FP, 0x200c, 8, 8, 0, fp_mix(22, 0)),      // L0
        spec("swim", FP, 0x200d, 256, 128, 7, fp_mix(23, 1)),      // L2
        spec("wupwise", FP, 0x200e, 32, 64, 3, fp_mix(22, 1)),     // L1
    ]
}

/// Looks up a suite entry by name.
pub fn spec_by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_26_entries_split_12_14() {
        let s = suite();
        assert_eq!(s.len(), 26);
        let ints = s
            .iter()
            .filter(|w| w.category == Category::Integer)
            .count();
        assert_eq!(ints, 12);
        assert_eq!(s.len() - ints, 14);
    }

    #[test]
    fn all_specs_validate_and_names_unique() {
        let s = suite();
        let mut names = std::collections::HashSet::new();
        for w in &s {
            w.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(names.insert(w.name.clone()), "duplicate name {}", w.name);
        }
    }

    #[test]
    fn seeds_are_unique() {
        let s = suite();
        let mut seeds = std::collections::HashSet::new();
        for w in &s {
            assert!(seeds.insert(w.seed), "duplicate seed for {}", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("mcf").is_some());
        assert!(spec_by_name("ammp").is_some());
        assert!(spec_by_name("doom3").is_none());
        assert_eq!(spec_by_name("mcf").unwrap().working_set_bytes, 64 * 1024 * 1024);
    }

    #[test]
    fn fp_entries_have_more_neutral_blocks_than_int() {
        let s = suite();
        let avg = |cat: Category| {
            let v: Vec<_> = s.iter().filter(|w| w.category == cat).collect();
            v.iter().map(|w| w.mix.neutral as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg(Category::FloatingPoint) > avg(Category::Integer));
    }
}
