//! Single-flight LRU result cache with a byte budget.
//!
//! The cache maps a canonical job key (the full canonical request string —
//! collisions are impossible by construction, the hash in `X-Job-Key` is a
//! display convenience) to the rendered artifact bytes. It is
//! *single-flight*: when several requests for the same key arrive
//! concurrently, exactly one computes while the rest block and then reuse
//! the stored bytes. Waiters count as hits, so under a concurrency-stress
//! run the hit counter equals exactly `total requests − distinct jobs`.
//!
//! Eviction is least-recently-used by access stamp and driven purely by
//! the byte budget, so behaviour is deterministic for a deterministic
//! request sequence.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Snapshot of the cache counters, readable while the server is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from stored bytes (includes single-flight waiters).
    pub hits: u64,
    /// Requests that had to compute the artifact.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Artifacts too large to store under the budget (still served).
    pub too_large: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Bytes currently stored.
    pub bytes: u64,
    /// Configured byte budget.
    pub budget: u64,
}

struct Entry {
    bytes: Arc<String>,
    stamp: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    /// Keys currently being computed by some thread.
    inflight: HashMap<String, u32>,
    stamp: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    too_large: u64,
}

/// Content-addressed artifact cache with single-flight computation and
/// LRU byte-budget eviction.
pub struct ResultCache {
    inner: Mutex<Inner>,
    done: Condvar,
    budget: usize,
}

impl ResultCache {
    /// Create a cache bounded to `budget` bytes of stored artifact text.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                inflight: HashMap::new(),
                stamp: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                too_large: 0,
            }),
            done: Condvar::new(),
            budget,
        }
    }

    /// Look up `key`, computing and storing the value on a miss.
    ///
    /// Returns the bytes plus `true` when the request was served from the
    /// cache (including waiting on another thread's in-flight compute).
    /// A failed compute stores nothing and wakes any waiters, which then
    /// retry as computers themselves.
    pub fn get_or_compute<E>(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<Arc<String>, E>,
    ) -> Result<(Arc<String>, bool), E> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.map.contains_key(key) {
                inner.stamp += 1;
                inner.hits += 1;
                let stamp = inner.stamp;
                let entry = inner.map.get_mut(key).unwrap();
                entry.stamp = stamp;
                return Ok((Arc::clone(&entry.bytes), true));
            }
            if inner.inflight.contains_key(key) {
                inner = self.done.wait(inner).unwrap();
                continue;
            }
            break;
        }
        inner.misses += 1;
        inner.inflight.insert(key.to_string(), 1);
        drop(inner);

        let result = compute();

        let mut inner = self.inner.lock().unwrap();
        inner.inflight.remove(key);
        if let Ok(bytes) = &result {
            self.insert_locked(&mut inner, key, Arc::clone(bytes));
        }
        drop(inner);
        self.done.notify_all();
        result.map(|bytes| (bytes, false))
    }

    /// Direct lookup without computing; counts as a hit when present.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let bytes = match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                Some(Arc::clone(&entry.bytes))
            }
            None => None,
        };
        if bytes.is_some() {
            inner.hits += 1;
        }
        bytes
    }

    fn insert_locked(&self, inner: &mut Inner, key: &str, bytes: Arc<String>) {
        let size = key.len() + bytes.len();
        if size > self.budget {
            inner.too_large += 1;
            return;
        }
        while inner.bytes + size > self.budget {
            // Evict the least-recently-used entry.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.bytes -= k.len() + e.bytes.len();
                        inner.evictions += 1;
                    }
                }
                None => break,
            }
        }
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.bytes += size;
        inner.map.insert(key.to_string(), Entry { bytes, stamp });
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            too_large: inner.too_large,
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            budget: self.budget as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok(v: &str) -> Result<Arc<String>, Infallible> {
        Ok(Arc::new(v.to_string()))
    }

    #[test]
    fn hit_after_miss_returns_same_bytes() {
        let cache = ResultCache::new(1 << 20);
        let (a, hit_a) = cache.get_or_compute("k", || ok("value")).unwrap();
        let (b, hit_b) = cache
            .get_or_compute("k", || -> Result<Arc<String>, Infallible> {
                panic!("must not recompute")
            })
            .unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(*a, *b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Each entry is key (2 bytes) + value (8 bytes) = 10 bytes.
        let cache = ResultCache::new(25);
        cache.get_or_compute("k1", || ok("aaaaaaaa")).unwrap();
        cache.get_or_compute("k2", || ok("bbbbbbbb")).unwrap();
        // Touch k1 so k2 is the LRU victim.
        assert!(cache.get("k1").is_some());
        cache.get_or_compute("k3", || ok("cccccccc")).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(cache.get("k1").is_some());
        assert!(cache.get("k2").is_none());
        assert!(cache.get("k3").is_some());
    }

    #[test]
    fn oversized_value_not_stored_but_served() {
        let cache = ResultCache::new(4);
        let (v, hit) = cache.get_or_compute("k", || ok("way too large")).unwrap();
        assert!(!hit);
        assert_eq!(*v, "way too large");
        let s = cache.stats();
        assert_eq!(s.too_large, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn failed_compute_stores_nothing() {
        let cache = ResultCache::new(1 << 20);
        let r: Result<_, &str> = cache.get_or_compute("k", || Err("boom"));
        assert!(r.is_err());
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn single_flight_dedupes_concurrent_identical_jobs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = Arc::new(ResultCache::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (v, _hit) = cache
                    .get_or_compute("k", || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        ok("shared")
                    })
                    .unwrap();
                assert_eq!(*v, "shared");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }
}
