//! Reliability metric roll-ups and report formatting.
//!
//! Turns AVFs and IPC into the quantities the paper reports: per-structure
//! SDC/DUE FIT rates, MTTF, and MITF (§2, §3.2), plus fixed-width ASCII
//! tables used by the experiment harness to print paper-versus-measured
//! rows.
//!
//! # Example
//!
//! ```
//! use ses_metrics::ReliabilityModel;
//! use ses_types::{Avf, Ipc};
//!
//! // The paper's instruction queue: 64 entries x 64 bits at an assumed
//! // raw rate, 2.5 GHz, IPC 1.21, SDC AVF 29%.
//! let model = ReliabilityModel::default();
//! let sdc = model.sdc(Ipc::new(1.21), Avf::from_percent(29.0));
//! assert!(sdc.mttf.years() > 0.0);
//! assert!(sdc.mitf.instructions() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod environment;
mod model;
pub mod parse;
mod table;
pub mod telemetry;

pub use environment::{fit_to_mttf, raw_fit_per_bit, Environment, TechNode};
pub use model::{RateInterval, RatePoint, ReliabilityModel};
pub use parse::JsonParseError;
pub use table::Table;
pub use telemetry::{JsonValue, TelemetryLevel, SCHEMA_VERSION};

/// Half-width of the 95 % normal-approximation confidence interval for an
/// estimated proportion `p` over `n` Bernoulli samples (0 when `n` is 0).
///
/// This is the single tolerance used everywhere an injection-estimated AVF
/// is compared against an analytic one: the fault-campaign reports, the
/// differential oracle's injection cross-check, and the cross-validation
/// tests all call this same function, so their agreement criteria cannot
/// drift apart.
///
/// # Example
///
/// ```
/// use ses_metrics::binomial_ci95;
///
/// let ci = binomial_ci95(0.3, 400);
/// assert!((ci - 1.96 * (0.3f64 * 0.7 / 400.0).sqrt()).abs() < 1e-12);
/// assert_eq!(binomial_ci95(0.3, 0), 0.0);
/// ```
pub fn binomial_ci95(p: f64, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    1.96 * (p * (1.0 - p) / n as f64).sqrt()
}

/// Arithmetic mean of an iterator of f64 values (0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Geometric mean of an iterator of positive f64 values (0 when empty).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean([1.0, 0.0]);
    }
}
