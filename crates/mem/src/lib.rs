//! Set-associative cache hierarchy for the timing model.
//!
//! The geometry defaults match the machine the paper models (§5): an 8 KB
//! L0 with 2-cycle hits, a 256 KB L1 with 10-cycle hits, and a 10 MB L2
//! with 25-cycle hits. A load that misses L0 and hits L1 therefore sees the
//! paper's "L0 cache miss, whose latency is 10 cycles"; one that misses L1
//! and hits L2 sees the "L1 cache miss, whose latency is about 25 cycles".
//! These two events are exactly the squash *triggers* of §3.1.
//!
//! The hierarchy also supports per-block π bits ([`PiDirectory`]) so the
//! paper's design (4) of §4.3.3 — π bits on caches and memory, with errors
//! signalled only at I/O — can be modelled end to end.
//!
//! # Example
//!
//! ```
//! use ses_mem::{AccessKind, Hierarchy, HierarchyConfig};
//! use ses_types::Addr;
//!
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! let first = h.access(Addr::new(0x4000), AccessKind::Load);
//! let second = h.access(Addr::new(0x4000), AccessKind::Load);
//! assert!(second.latency < first.latency, "second access hits closer");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod ecc;
mod hierarchy;
mod pi;

pub use cache::{Cache, CacheConfig, CacheSnapshot, LookupOutcome};
pub use ecc::{
    code_for, ClassProfile, EccClass, EccCode, EccDomain, EccScheme, RefDecoder, WordVerdict,
};
pub use hierarchy::{
    AccessKind, AccessResult, Hierarchy, HierarchyConfig, HierarchySnapshot, Level, LevelStats,
};
pub use pi::PiDirectory;
