//! Core shared types for the soft-error-rate reproduction suite.
//!
//! This crate holds the small, dependency-free vocabulary types used by every
//! other crate in the workspace: simulation time ([`Cycle`]), dynamic
//! instruction identity ([`SeqNo`]), architectural names ([`Reg`], [`Pred`],
//! [`Addr`]), and the reliability quantities from the paper ([`Fit`],
//! [`Mttf`], [`Avf`], [`Ipc`], [`Mitf`]).
//!
//! # Example
//!
//! ```
//! use ses_types::{Avf, Fit, Ipc, Mitf, Mttf};
//!
//! // A 2.5 GHz part with a raw error rate of 0.001 FIT/bit over a 64-entry
//! // x 64-bit structure whose AVF is 29%:
//! let raw = Fit::per_bit(0.001).scaled(64 * 64);
//! let avf = Avf::from_percent(29.0);
//! let mttf = Mttf::from_fit(raw.derated(avf));
//! let mitf = Mitf::new(Ipc::new(1.21), 2.5e9, mttf);
//! assert!(mitf.instructions() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod ids;
mod rates;

pub use error::{ConfigError, SesError};
pub use ids::{Addr, Cycle, Pred, Reg, SeqNo};
pub use rates::{Avf, Fit, Ipc, Mitf, Mtbf, Mttf, FIT_HOURS, HOURS_PER_YEAR};
