//! Regenerates **Figure 1**: the outcome taxonomy of a faulty bit,
//! measured by statistical fault injection.
//!
//! The paper's Figure 1 is a classification tree: (1–3) benign outcomes,
//! (4) silent data corruption, (5) false DUE, (6) true DUE. This harness
//! injects random single-bit faults into the instruction queue under three
//! protection schemes and prints the measured outcome distribution for
//! each — demonstrating the taxonomy's central claims:
//!
//! * without detection, strikes split into benign and SDC;
//! * parity converts every consumed strike into a DUE (no SDC), and a
//!   large share of those DUEs are *false*;
//! * π-bit tracking suppresses most false DUEs without (materially)
//!   reintroducing SDC.
//!
//! Run with `cargo bench -p ses-bench --bench fig1`.

use ses_core::{
    spec_by_name, Campaign, CampaignConfig, DetectionModel, Outcome, Table, TrackingConfig,
};

const BENCHES: [&str; 4] = ["crafty", "gzip", "twolf", "mgrid"];
const INJECTIONS: u32 = 300;

fn campaign(bench: &str, detection: DetectionModel, seed: u64) -> ses_core::CampaignReport {
    let spec = spec_by_name(bench).expect("known benchmark");
    let config = CampaignConfig {
        injections: INJECTIONS,
        seed,
        detection,
        ..CampaignConfig::default()
    };
    Campaign::prepare(&spec, config)
        .expect("campaign prepare")
        .run()
}

fn main() {
    let models: [(&str, DetectionModel); 3] = [
        ("unprotected", DetectionModel::None),
        ("parity", DetectionModel::Parity { tracking: None }),
        (
            "parity + pi (store scope)",
            DetectionModel::Parity {
                tracking: Some(TrackingConfig::paper_combined()),
            },
        ),
    ];

    println!("\n=== Figure 1: measured single-bit fault outcome taxonomy ===");
    println!(
        "({} injections per benchmark x {:?})\n",
        INJECTIONS, BENCHES
    );

    let mut table = Table::new(vec![
        "Protection",
        "benign",
        "SDC",
        "false DUE",
        "true DUE",
        "suppressed",
        "supp-SDC",
        "hang",
    ]);

    let mut summaries = Vec::new();
    for (name, model) in models {
        let mut merged = ses_core::CampaignReport::default();
        for (i, bench) in BENCHES.iter().enumerate() {
            merged.merge(&campaign(bench, model, 0xF1 + i as u64));
        }
        table.row(vec![
            name.into(),
            format!("{:.1}%", merged.fraction(Outcome::Benign) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::Sdc) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::FalseDue) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::TrueDue) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::SuppressedSafe) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::SuppressedSdc) * 100.0),
            format!("{:.1}%", merged.fraction(Outcome::Hang) * 100.0),
        ]);
        summaries.push((name, merged));
    }
    println!("{table}");

    let unprot = &summaries[0].1;
    let parity = &summaries[1].1;
    let tracked = &summaries[2].1;

    // Taxonomy assertions (the paper's Figure-1 structure).
    assert_eq!(
        unprot.count(Outcome::FalseDue) + unprot.count(Outcome::TrueDue),
        0,
        "no detection, no DUE"
    );
    assert!(unprot.count(Outcome::Sdc) > 0, "unprotected strikes cause SDC");
    assert_eq!(parity.count(Outcome::Sdc), 0, "parity eliminates SDC");
    assert!(
        parity.count(Outcome::FalseDue) > 0,
        "parity introduces false DUE"
    );
    let due_parity = parity.due_avf_estimate();
    let due_tracked = tracked.due_avf_estimate();
    assert!(
        due_tracked < due_parity,
        "tracking reduces the DUE rate ({due_tracked:.3} vs {due_parity:.3})"
    );
    println!(
        "False DUE share of parity DUEs: {:.0}% (paper: up to 52% of total DUE)",
        parity.fraction(Outcome::FalseDue) / parity.due_avf_estimate() * 100.0
    );
    println!(
        "DUE rate reduction from pi tracking: {:.0}%",
        (1.0 - due_tracked / due_parity) * 100.0
    );
    println!(
        "Statistical SDC AVF (unprotected): {:.1}% +/- {:.1}%",
        unprot.sdc_avf_estimate() * 100.0,
        unprot.ci95(unprot.sdc_avf_estimate()) * 100.0
    );
    println!("\nAll Figure-1 taxonomy assertions hold.");
}
