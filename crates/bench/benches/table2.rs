//! Regenerates **Table 2**: the benchmark suite definition.
//!
//! The paper's Table 2 lists the SPEC CPU2000 programs with their SimPoint
//! skip intervals. Our substitution (DESIGN.md) is a synthetic suite of 26
//! named analogues; this harness prints each entry's generation parameters
//! and verifies the suite's structural properties: 12 integer + 14 FP
//! entries, unique seeds, and every program synthesising, running to halt,
//! and producing output.
//!
//! Run with `cargo bench -p ses-bench --bench table2`.

use ses_arch::Emulator;
use ses_core::{suite, synthesize, Table};

fn main() {
    let specs = suite();
    let mut table = Table::new(vec![
        "Benchmark",
        "Class",
        "Seed",
        "Working set",
        "Stride",
        "Miss gate",
        "Dynamic len",
        "Static len",
        "Outputs",
    ]);

    let mut ints = 0;
    for spec in &specs {
        let program = synthesize(spec);
        let trace = Emulator::new(&program)
            .run(spec.target_dynamic * 4)
            .expect("golden run");
        assert!(trace.halted(), "{} must halt", spec.name);
        assert!(!trace.output().is_empty(), "{} must produce output", spec.name);
        if spec.category == ses_core::Category::Integer {
            ints += 1;
        }
        table.row(vec![
            spec.name.clone(),
            spec.category.label().into(),
            format!("{:#x}", spec.seed),
            format!("{} KB", spec.working_set_bytes / 1024),
            format!("{} B", spec.stride_bytes),
            format!("1/{}", spec.far_gate_mask + 1),
            trace.len().to_string(),
            program.len().to_string(),
            trace.output().len().to_string(),
        ]);
    }

    println!("\n=== Table 2: the synthetic SPEC CPU2000 analogue suite ===\n");
    println!("{table}");
    assert_eq!(specs.len(), 26, "paper suite size");
    assert_eq!(ints, 12, "12 integer benchmarks (paper: 12)");
    assert_eq!(specs.len() - ints, 14, "14 FP benchmarks (paper: 14)");
    println!("Suite structure matches the paper: 12 INT + 14 FP benchmarks.");
}
