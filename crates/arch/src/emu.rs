//! The architectural emulator proper.

use std::collections::HashMap;

use ses_isa::{decode, Instruction, Opcode, Program, INSTR_BYTES};
use ses_types::{Addr, SesError};

use crate::memory::DataMemory;
use crate::state::ArchState;
use crate::trace::{DynInstr, ExecutionTrace};

/// Result of a (possibly fault-perturbed) functional run, used by the
/// fault-injection outcome classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program halted; here is its output stream.
    Completed {
        /// Values written by `out` instructions, in order.
        output: Vec<u64>,
    },
    /// Execution left the program image or hit an undecodable instruction.
    Crashed {
        /// Human-readable cause.
        reason: String,
    },
    /// The instruction budget ran out before `halt` (e.g. a corrupted
    /// branch created an infinite loop).
    TimedOut,
}

struct StepEffect {
    record: DynInstr,
    halt: bool,
}

/// A point-in-time copy of the architectural machine: registers,
/// predicates, PC, data memory, call depth, and dynamic-instruction index.
///
/// Snapshots support the idempotent-region recovery model: capture the
/// machine mid-run, rewind the PC to a region entry, and re-execute the
/// region prefix to prove (or disprove) that re-execution is
/// side-effect-free. The output stream is deliberately *not* part of the
/// snapshot — a resumed machine starts with an empty stream so re-emitted
/// values can be compared against the original records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    state: ArchState,
    mem: DataMemory,
    depth: u32,
    index: u64,
}

impl MachineSnapshot {
    /// The architectural register state (registers, predicates, PC).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The data memory image.
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// The dynamic-instruction index the machine had reached.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Whether two snapshots agree on every *recoverable* component:
    /// registers, predicates, PC, and data memory. Call depth and dynamic
    /// index are bookkeeping, not architectural state, and are excluded —
    /// re-executing a region legitimately advances both.
    pub fn same_arch_state(&self, other: &MachineSnapshot) -> bool {
        self.state == other.state && self.mem == other.mem
    }
}

/// Architectural emulator for one program.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Emulator<'p> {
    program: &'p Program,
    state: ArchState,
    mem: DataMemory,
    output: Vec<u64>,
    depth: u32,
    index: u64,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with fresh architectural state and the program's
    /// initial data image.
    pub fn new(program: &'p Program) -> Self {
        Emulator {
            program,
            state: ArchState::new(program.entry()),
            mem: DataMemory::from_program(program),
            output: Vec::new(),
            depth: 0,
            index: 0,
        }
    }

    /// Runs the program to `halt`, recording the full dynamic trace.
    ///
    /// Stops after `max_instrs` dynamic instructions if the program has not
    /// halted; the returned trace then reports `halted() == false`.
    ///
    /// # Errors
    ///
    /// Returns [`SesError::EmulationFault`] if control leaves the program
    /// image — for a *golden* (uncorrupted) run this indicates a broken
    /// program, so it is an error rather than an outcome.
    pub fn run(mut self, max_instrs: u64) -> Result<ExecutionTrace, SesError> {
        let mut entries = Vec::new();
        let mut halted = false;
        while (entries.len() as u64) < max_instrs {
            let pc = self.state.pc();
            let instr = *self.program.instr_at(pc).ok_or_else(|| {
                SesError::EmulationFault(format!("fetch outside program image at {pc}"))
            })?;
            let effect = self.exec_one(instr, pc);
            entries.push(effect.record);
            if effect.halt {
                halted = true;
                break;
            }
        }
        Ok(ExecutionTrace::new(entries, self.output, halted))
    }

    /// Runs the program with corrupted instruction words substituted at the
    /// given dynamic indices, returning only the outcome (no trace).
    ///
    /// `overrides` maps a dynamic-instruction index (matching
    /// [`DynInstr::index`] of the golden trace) to the corrupted 64-bit
    /// word that the pipeline would have issued in its place. This is how a
    /// particle strike on an instruction-queue entry reaches architectural
    /// state.
    pub fn run_with_overrides(
        self,
        overrides: &HashMap<u64, u64>,
        max_instrs: u64,
    ) -> RunOutcome {
        self.run_overridden(|idx| overrides.get(&idx).copied(), max_instrs)
    }

    /// Like [`run_with_overrides`](Self::run_with_overrides) but for the
    /// common case of exactly one corrupted word, avoiding the `HashMap`
    /// allocation and hashing on every dynamic instruction. This is the
    /// hot path of the fault-injection replay classifier.
    pub fn run_with_override(self, trace_idx: u64, word: u64, max_instrs: u64) -> RunOutcome {
        self.run_overridden(|idx| (idx == trace_idx).then_some(word), max_instrs)
    }

    fn run_overridden(
        mut self,
        override_at: impl Fn(u64) -> Option<u64>,
        max_instrs: u64,
    ) -> RunOutcome {
        let mut steps: u64 = 0;
        while steps < max_instrs {
            let pc = self.state.pc();
            let Some(&original) = self.program.instr_at(pc) else {
                return RunOutcome::Crashed {
                    reason: format!("fetch outside program image at {pc}"),
                };
            };
            let instr = match override_at(self.index) {
                None => original,
                Some(word) => match decode(word) {
                    Ok(i) => i,
                    Err(e) => {
                        return RunOutcome::Crashed {
                            reason: e.to_string(),
                        }
                    }
                },
            };
            let effect = self.exec_one(instr, pc);
            if effect.halt {
                return RunOutcome::Completed {
                    output: self.output,
                };
            }
            steps += 1;
        }
        RunOutcome::TimedOut
    }

    /// Captures the current architectural state as a [`MachineSnapshot`].
    pub(crate) fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            state: self.state.clone(),
            mem: self.mem.clone(),
            depth: self.depth,
            index: self.index,
        }
    }

    /// Rebuilds an emulator from a snapshot, with an empty output stream.
    pub(crate) fn from_snapshot(program: &'p Program, snap: MachineSnapshot) -> Self {
        Emulator {
            program,
            state: snap.state,
            mem: snap.mem,
            output: Vec::new(),
            depth: snap.depth,
            index: snap.index,
        }
    }

    /// Overrides the program counter (region re-execution rewinds here).
    pub(crate) fn set_pc(&mut self, pc: Addr) {
        self.state.set_pc(pc);
    }

    /// Executes exactly one instruction, returning its record and whether
    /// it was `halt`. Used by [`crate::Stepper`].
    ///
    /// # Errors
    ///
    /// Returns [`SesError::EmulationFault`] if the PC is outside the image.
    pub(crate) fn step_once(&mut self) -> Result<(DynInstr, bool), SesError> {
        let pc = self.state.pc();
        let instr = *self.program.instr_at(pc).ok_or_else(|| {
            SesError::EmulationFault(format!("fetch outside program image at {pc}"))
        })?;
        let effect = self.exec_one(instr, pc);
        Ok((effect.record, effect.halt))
    }

    /// Output emitted so far (for streaming consumers).
    pub(crate) fn output_so_far(&self) -> &[u64] {
        &self.output
    }

    /// Current program counter.
    pub(crate) fn pc(&self) -> Addr {
        self.state.pc()
    }

    /// Reads an architectural register.
    pub(crate) fn reg(&self, r: ses_types::Reg) -> u64 {
        self.state.reg(r)
    }

    /// Reads a data-memory word.
    pub(crate) fn mem(&self, addr: Addr) -> u64 {
        self.mem.load(addr)
    }

    fn exec_one(&mut self, instr: Instruction, pc: Addr) -> StepEffect {
        use Opcode::*;
        let executed = self.state.pred(instr.qp);
        let fallthrough = pc.offset(INSTR_BYTES);
        let mut record = DynInstr {
            index: self.index,
            pc,
            instr,
            executed,
            reg_written: None,
            pred_written: None,
            mem_read: None,
            mem_written: None,
            taken: instr.op.is_conditional_branch().then_some(false),
            next_pc: fallthrough,
            call_depth: self.depth,
            emitted: None,
        };
        self.index += 1;
        let mut halt = false;
        let mut next_pc = fallthrough;

        if executed {
            let s1 = self.state.reg(instr.src1);
            let s2 = self.state.reg(instr.src2);
            let rel = |imm: i32| Addr::new((pc.as_u64() as i64).wrapping_add(imm as i64) as u64);
            match instr.op {
                Add | Sub | Mul | And | Or | Xor | Shl | Shr | AddI | MovI => {
                    let v = match instr.op {
                        Add => s1.wrapping_add(s2),
                        Sub => s1.wrapping_sub(s2),
                        Mul => s1.wrapping_mul(s2),
                        And => s1 & s2,
                        Or => s1 | s2,
                        Xor => s1 ^ s2,
                        Shl => s1.wrapping_shl((s2 & 63) as u32),
                        Shr => s1.wrapping_shr((s2 & 63) as u32),
                        AddI => s1.wrapping_add(instr.imm as i64 as u64),
                        MovI => instr.imm as i64 as u64,
                        _ => unreachable!(),
                    };
                    self.state.set_reg(instr.dest, v);
                    if !instr.dest.is_zero() {
                        record.reg_written = Some(instr.dest);
                    }
                }
                CmpEq | CmpLt => {
                    let v = match instr.op {
                        CmpEq => s1 == s2,
                        CmpLt => (s1 as i64) < (s2 as i64),
                        _ => unreachable!(),
                    };
                    self.state.set_pred(instr.pdest, v);
                    if !instr.pdest.is_always_true() {
                        record.pred_written = Some(instr.pdest);
                    }
                }
                Ld => {
                    let addr =
                        Addr::new(s1.wrapping_add(instr.imm as i64 as u64)).block_base(8);
                    let v = self.mem.load(addr);
                    self.state.set_reg(instr.dest, v);
                    record.mem_read = Some(addr);
                    if !instr.dest.is_zero() {
                        record.reg_written = Some(instr.dest);
                    }
                }
                St => {
                    let addr =
                        Addr::new(s1.wrapping_add(instr.imm as i64 as u64)).block_base(8);
                    self.mem.store(addr, s2);
                    record.mem_written = Some(addr);
                }
                Prefetch | Nop | Hint => {}
                Br => {
                    record.taken = Some(true);
                    next_pc = rel(instr.imm);
                }
                Jmp => {
                    next_pc = rel(instr.imm);
                }
                Call => {
                    self.state.set_reg(instr.dest, fallthrough.as_u64());
                    if !instr.dest.is_zero() {
                        record.reg_written = Some(instr.dest);
                    }
                    next_pc = rel(instr.imm);
                    self.depth += 1;
                }
                Ret => {
                    next_pc = Addr::new(s1);
                    self.depth = self.depth.saturating_sub(1);
                }
                Out => {
                    self.output.push(s1);
                    record.emitted = Some(s1);
                }
                Halt => {
                    halt = true;
                }
            }
        }
        record.next_pc = next_pc;
        self.state.set_pc(next_pc);
        StepEffect { record, halt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_isa::ProgramBuilder;
    use ses_types::{Pred, Reg};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn loop_with_counter_and_output() {
        // Sum 1..=5 with a backward branch, then print.
        let mut b = ProgramBuilder::new();
        b.push(Instruction::movi(r(1), 5)); // counter
        b.push(Instruction::movi(r(2), 0)); // sum
        let top = b.new_label();
        b.bind(top);
        b.push(Instruction::add(r(2), r(2), r(1)));
        b.push(Instruction::addi(r(1), r(1), -1));
        b.push(Instruction::cmp_lt(Pred::new(1), Reg::ZERO, r(1)));
        b.branch(Pred::new(1), top);
        b.push(Instruction::out(r(2)));
        b.push(Instruction::halt());
        let p = b.build().unwrap();

        let trace = Emulator::new(&p).run(10_000).unwrap();
        assert!(trace.halted());
        assert_eq!(trace.output(), &[15]);
        let s = trace.stats();
        assert_eq!(s.cond_branches, 5);
        assert_eq!(s.taken_branches, 4);
        assert_eq!(s.outputs, 1);
    }

    #[test]
    fn falsely_predicated_instruction_has_no_effect() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 7),
            // p1 is false at reset, so this add is falsely predicated.
            Instruction::addi(r(1), r(1), 100).guarded_by(Pred::new(1)),
            Instruction::out(r(1)),
            Instruction::halt(),
        ]);
        let trace = Emulator::new(&p).run(100).unwrap();
        assert_eq!(trace.output(), &[7]);
        assert_eq!(trace.stats().falsely_predicated, 1);
        let e = &trace.entries()[1];
        assert!(!e.executed);
        assert_eq!(e.reg_written, None);
    }

    #[test]
    fn memory_roundtrip_and_dead_store_tracking_fields() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 0x2000),
            Instruction::movi(r(2), 99),
            Instruction::st(r(1), r(2), 0),
            Instruction::ld(r(3), r(1), 0),
            Instruction::out(r(3)),
            Instruction::halt(),
        ]);
        let trace = Emulator::new(&p).run(100).unwrap();
        assert_eq!(trace.output(), &[99]);
        assert_eq!(trace.entries()[2].mem_written, Some(Addr::new(0x2000)));
        assert_eq!(trace.entries()[3].mem_read, Some(Addr::new(0x2000)));
    }

    #[test]
    fn call_and_return_track_depth() {
        let mut b = ProgramBuilder::new();
        let func = b.new_label();
        let end = b.new_label();
        b.call(r(31), func); // 0, depth 0
        b.jump(end); // 1, depth 0
        b.bind(func);
        b.push(Instruction::movi(r(4), 1)); // 2, depth 1
        b.push(Instruction::ret(r(31))); // 3, depth 1
        b.bind(end);
        b.push(Instruction::halt()); // 4, depth 0
        let p = b.build().unwrap();
        let trace = Emulator::new(&p).run(100).unwrap();
        let depths: Vec<u32> = trace.entries().iter().map(|e| e.call_depth).collect();
        // Entries are in execution order: call, movi, ret, jmp, halt.
        assert_eq!(depths, vec![0, 1, 1, 0, 0]);
        // Execution order: call, movi, ret, jmp, halt.
        let pcs: Vec<u64> = trace
            .entries()
            .iter()
            .map(|e| (e.pc.as_u64() - p.entry().as_u64()) / 8)
            .collect();
        assert_eq!(pcs, vec![0, 2, 3, 1, 4]);
    }

    #[test]
    fn golden_run_faults_on_wild_fetch() {
        let p = Program::new(vec![Instruction::jmp(-64)]);
        let err = Emulator::new(&p).run(10).unwrap_err();
        assert!(err.to_string().contains("outside program image"));
    }

    #[test]
    fn budget_exhaustion_reports_not_halted() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.jump(top);
        let p = b.build().unwrap();
        let trace = Emulator::new(&p).run(50).unwrap();
        assert!(!trace.halted());
        assert_eq!(trace.len(), 50);
    }

    #[test]
    fn override_changes_output() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 7),
            Instruction::out(r(1)),
            Instruction::halt(),
        ]);
        // Corrupt dynamic instruction 0 into `movi r1 = 8`.
        let corrupted = ses_isa::encode(&Instruction::movi(r(1), 8));
        let mut ov = HashMap::new();
        ov.insert(0u64, corrupted);
        let outcome = Emulator::new(&p).run_with_overrides(&ov, 100);
        assert_eq!(
            outcome,
            RunOutcome::Completed { output: vec![8] },
            "corrupted immediate must propagate to output"
        );
    }

    #[test]
    fn single_override_fast_path_matches_map_path() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 7),
            Instruction::out(r(1)),
            Instruction::halt(),
        ]);
        let corrupted = ses_isa::encode(&Instruction::movi(r(1), 8));
        let mut ov = HashMap::new();
        ov.insert(0u64, corrupted);
        let via_map = Emulator::new(&p).run_with_overrides(&ov, 100);
        let via_fast = Emulator::new(&p).run_with_override(0, corrupted, 100);
        assert_eq!(via_map, via_fast);
        assert_eq!(via_fast, RunOutcome::Completed { output: vec![8] });
    }

    #[test]
    fn override_with_undecodable_word_crashes() {
        let p = Program::new(vec![Instruction::nop(), Instruction::halt()]);
        let mut ov = HashMap::new();
        ov.insert(0u64, u64::MAX); // reserved bits set
        let outcome = Emulator::new(&p).run_with_overrides(&ov, 100);
        assert!(matches!(outcome, RunOutcome::Crashed { .. }));
    }

    #[test]
    fn override_into_infinite_loop_times_out() {
        let p = Program::new(vec![Instruction::nop(), Instruction::halt()]);
        // Turn the nop into `jmp +0` (self-loop).
        let corrupted = ses_isa::encode(&Instruction::jmp(0));
        let mut ov = HashMap::new();
        ov.insert(0u64, corrupted);
        // NOTE: the jump executes once at index 0, then control re-fetches
        // the original nop at the same pc -- but the override applies by
        // dynamic index, so only the first instance is corrupted... the
        // second fetch of the nop is index 1 and proceeds normally to halt.
        let outcome = Emulator::new(&p).run_with_overrides(&ov, 100);
        assert_eq!(outcome, RunOutcome::Completed { output: vec![] });

        // A backward jump beyond the image crashes instead.
        let mut ov2 = HashMap::new();
        ov2.insert(0u64, ses_isa::encode(&Instruction::jmp(-800)));
        assert!(matches!(
            Emulator::new(&p).run_with_overrides(&ov2, 100),
            RunOutcome::Crashed { .. }
        ));
    }

    #[test]
    fn benign_override_completes_identically() {
        let p = Program::new(vec![
            Instruction::movi(r(1), 7),
            Instruction::out(r(1)),
            Instruction::halt(),
        ]);
        // Corrupt an unread source-register field of `out`? out reads src1;
        // instead corrupt the dest field of the halt (halt ignores dest).
        let mut corrupted_halt = Instruction::halt();
        corrupted_halt.dest = r(9);
        let mut ov = HashMap::new();
        ov.insert(2u64, ses_isa::encode(&corrupted_halt));
        let outcome = Emulator::new(&p).run_with_overrides(&ov, 100);
        assert_eq!(outcome, RunOutcome::Completed { output: vec![7] });
    }
}
