//! Static program images: code, initial data, and a label-resolving builder.

use serde::{Deserialize, Serialize};
use ses_types::{Addr, ConfigError, Pred, Reg};

use crate::encode::INSTR_BYTES;
use crate::instr::Instruction;
use crate::opcode::Opcode;

/// A contiguous run of initialised data words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    /// Base byte address of the segment.
    pub base: Addr,
    /// 64-bit words, laid out consecutively from `base`.
    pub words: Vec<u64>,
}

/// A complete, executable SES-64 program image.
///
/// Code lives at [`Program::code_base`] with one instruction per
/// [`INSTR_BYTES`] bytes. The timing model fetches *wrong-path* instructions
/// from this same image at mispredicted targets, mirroring the paper's
/// methodology ("for wrong paths, we fetch the mis-speculated instructions").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    code_base: Addr,
    code: Vec<Instruction>,
    data: Vec<DataSegment>,
}

impl Program {
    /// Default base address for code.
    pub const DEFAULT_CODE_BASE: Addr = Addr::new(0x1_0000);

    /// Creates a program from a flat instruction list at the default base.
    ///
    /// # Panics
    ///
    /// Panics if `code` is empty.
    pub fn new(code: Vec<Instruction>) -> Self {
        assert!(!code.is_empty(), "a program needs at least one instruction");
        Program {
            code_base: Self::DEFAULT_CODE_BASE,
            code,
            data: Vec::new(),
        }
    }

    /// Adds an initialised data segment, builder-style.
    pub fn with_data(mut self, segment: DataSegment) -> Self {
        self.data.push(segment);
        self
    }

    /// The address of the first instruction.
    pub fn entry(&self) -> Addr {
        self.code_base
    }

    /// Base address of the code image.
    pub fn code_base(&self) -> Addr {
        self.code_base
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions (never true for built
    /// programs).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The static instructions in layout order.
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Initial data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// The instruction at byte address `pc`, or `None` if `pc` falls outside
    /// the image or is misaligned. Wrong-path fetch relies on the `None`
    /// case: a bogus target simply fetches nothing.
    pub fn instr_at(&self, pc: Addr) -> Option<&Instruction> {
        let off = pc.as_u64().checked_sub(self.code_base.as_u64())?;
        if off % INSTR_BYTES != 0 {
            return None;
        }
        self.code.get((off / INSTR_BYTES) as usize)
    }

    /// Converts an instruction index into its byte address.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn addr_of(&self, index: usize) -> Addr {
        assert!(index < self.code.len(), "instruction index out of range");
        self.code_base.offset(index as u64 * INSTR_BYTES)
    }

    /// The address just past the last instruction.
    pub fn end(&self) -> Addr {
        self.code_base.offset(self.code.len() as u64 * INSTR_BYTES)
    }
}

/// An unresolved branch-target label issued by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

enum Pending {
    Ready(Instruction),
    Branch { qp: Pred, label: Label },
    Jump { qp: Pred, label: Label },
    Call { qp: Pred, link: Reg, label: Label },
}

/// Incrementally builds a [`Program`] with symbolic branch targets.
///
/// # Example
///
/// ```
/// use ses_isa::{Instruction, ProgramBuilder};
/// use ses_types::{Pred, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.new_label();
/// b.bind(top);
/// b.push(Instruction::addi(Reg::new(1), Reg::new(1), -1));
/// b.push(Instruction::cmp_lt(Pred::new(1), Reg::ZERO, Reg::new(1)));
/// b.branch(Pred::new(1), top);
/// b.push(Instruction::halt());
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), ses_types::ConfigError>(())
/// ```
pub struct ProgramBuilder {
    items: Vec<Pending>,
    labels: Vec<Option<usize>>,
    data: Vec<DataSegment>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            items: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction pushed.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound more than once"
        );
        self.labels[label.0] = Some(self.items.len());
    }

    /// Appends a fully resolved instruction. Returns its index.
    pub fn push(&mut self, instr: Instruction) -> usize {
        self.items.push(Pending::Ready(instr));
        self.items.len() - 1
    }

    /// Appends a conditional branch to `label`, guarded by `qp`.
    pub fn branch(&mut self, qp: Pred, label: Label) -> usize {
        self.items.push(Pending::Branch { qp, label });
        self.items.len() - 1
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> usize {
        self.jump_guarded(Pred::TRUE, label)
    }

    /// Appends a jump to `label` guarded by `qp`.
    pub fn jump_guarded(&mut self, qp: Pred, label: Label) -> usize {
        self.items.push(Pending::Jump { qp, label });
        self.items.len() - 1
    }

    /// Appends a call to `label`, linking through `link`.
    pub fn call(&mut self, link: Reg, label: Label) -> usize {
        self.call_guarded(Pred::TRUE, link, label)
    }

    /// Appends a call to `label` guarded by `qp`, linking through `link`.
    pub fn call_guarded(&mut self, qp: Pred, link: Reg, label: Label) -> usize {
        self.items.push(Pending::Call { qp, link, label });
        self.items.len() - 1
    }

    /// Adds an initialised data segment.
    pub fn data_segment(&mut self, base: Addr, words: Vec<u64>) {
        self.data.push(DataSegment { base, words });
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns an error if the program is empty, a referenced label was
    /// never bound, or a branch displacement overflows the immediate field.
    pub fn build(self) -> Result<Program, ConfigError> {
        if self.items.is_empty() {
            return Err(ConfigError::new("program has no instructions"));
        }
        let resolve = |label: Label, from: usize| -> Result<i32, ConfigError> {
            let target = self.labels[label.0]
                .ok_or_else(|| ConfigError::new("branch references an unbound label"))?;
            let delta = (target as i64 - from as i64) * INSTR_BYTES as i64;
            i32::try_from(delta)
                .map_err(|_| ConfigError::new("branch displacement overflows immediate field"))
        };
        let mut code = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let instr = match *item {
                Pending::Ready(i) => i,
                Pending::Branch { qp, label } => Instruction::br(qp, resolve(label, idx)?),
                Pending::Jump { qp, label } => {
                    Instruction::jmp(resolve(label, idx)?).guarded_by(qp)
                }
                Pending::Call { qp, link, label } => {
                    Instruction::call(link, resolve(label, idx)?).guarded_by(qp)
                }
            };
            code.push(instr);
        }
        let mut program = Program::new(code);
        program.data = self.data;
        Ok(program)
    }
}

/// Computes the target address of a control-transfer instruction fetched at
/// `pc`. Returns `None` for indirect transfers (`ret`), whose target comes
/// from a register at execute time.
pub fn static_target(instr: &Instruction, pc: Addr) -> Option<Addr> {
    match instr.op {
        Opcode::Br | Opcode::Jmp | Opcode::Call => {
            Some(Addr::new((pc.as_u64() as i64 + instr.imm as i64) as u64))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_backward_branch() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.push(Instruction::nop()); // index 0
        b.push(Instruction::nop()); // index 1
        b.branch(Pred::new(1), top); // index 2 -> offset -16
        b.push(Instruction::halt());
        let p = b.build().unwrap();
        assert_eq!(p.code()[2].imm, -2 * INSTR_BYTES as i32);
        let pc = p.addr_of(2);
        assert_eq!(static_target(&p.code()[2], pc), Some(p.addr_of(0)));
    }

    #[test]
    fn builder_resolves_forward_jump_and_call() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        let func = b.new_label();
        b.call(Reg::new(31), func); // 0
        b.jump(end); // 1
        b.bind(func);
        b.push(Instruction::ret(Reg::new(31))); // 2
        b.bind(end);
        b.push(Instruction::halt()); // 3
        let p = b.build().unwrap();
        assert_eq!(p.code()[0].imm, 2 * INSTR_BYTES as i32);
        assert_eq!(p.code()[1].imm, 2 * INSTR_BYTES as i32);
        assert_eq!(p.code()[0].dest, Reg::new(31));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("unbound label"));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(ProgramBuilder::new().build().is_err());
    }

    #[test]
    #[should_panic(expected = "bound more than once")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn instr_at_handles_misalignment_and_range() {
        let p = Program::new(vec![Instruction::nop(), Instruction::halt()]);
        assert_eq!(p.instr_at(p.entry()), Some(&Instruction::nop()));
        assert_eq!(p.instr_at(p.entry() + 8), Some(&Instruction::halt()));
        assert_eq!(p.instr_at(p.entry() + 4), None, "misaligned");
        assert_eq!(p.instr_at(p.entry() + 16), None, "past the end");
        assert_eq!(p.instr_at(Addr::new(0)), None, "before the base");
        assert_eq!(p.end(), p.entry() + 16);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn data_segments_survive_build() {
        let mut b = ProgramBuilder::new();
        b.push(Instruction::halt());
        b.data_segment(Addr::new(0x8000), vec![1, 2, 3]);
        let p = b.build().unwrap();
        assert_eq!(p.data().len(), 1);
        assert_eq!(p.data()[0].words, vec![1, 2, 3]);
    }

    #[test]
    fn static_target_of_ret_is_none() {
        let ret = Instruction::ret(Reg::new(5));
        assert_eq!(static_target(&ret, Addr::new(0x1000)), None);
    }
}
