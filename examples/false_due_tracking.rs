//! Walk the paper's §4 false-DUE machinery one mechanism at a time on a
//! single workload: π at commit, the anti-π bit, PET buffers of several
//! sizes, and the three wider π scopes.
//!
//! Run with `cargo run --release --example false_due_tracking`.

use ses_core::{
    run_workload, spec_by_name, FalseDueCause, PipelineConfig, Table, Technique,
};

fn main() -> Result<(), ses_core::SesError> {
    let spec = spec_by_name("gap").expect("suite benchmark");
    let run = run_workload(&spec, &PipelineConfig::default())?;
    let avf = &run.avf;

    println!("benchmark: {} ({} committed instructions)", spec.name, run.result.committed);
    println!("parity-protected DUE AVF : {}", avf.due_avf());
    println!("  true DUE (= SDC AVF)   : {}", avf.true_due_avf());
    println!("  false DUE              : {}\n", avf.false_due_avf());

    // Where the false DUE comes from (paper §4.1's three sources).
    let mut causes = Table::new(vec!["false-DUE cause", "bit-cycles", "share"]);
    let total: u64 = FalseDueCause::ALL
        .iter()
        .map(|&c| avf.false_due_cause(c))
        .sum();
    for c in FalseDueCause::ALL {
        let v = avf.false_due_cause(c);
        if v > 0 {
            causes.row(vec![
                format!("{c:?}"),
                v.to_string(),
                format!("{:.1}%", v as f64 / total as f64 * 100.0),
            ]);
        }
    }
    println!("{causes}");

    // Cumulative technique stack (paper Figure 2's onion).
    let steps: [(&str, Option<Technique>); 7] = [
        ("parity only (no tracking)", None),
        ("+ pi at commit + anti-pi", None), // handled by residual_false_due
        ("+ PET 128", Some(Technique::Pet(128))),
        ("+ PET 512", Some(Technique::Pet(512))),
        ("+ pi per register", Some(Technique::PiRegister)),
        ("+ pi to store commit", Some(Technique::PiStoreCommit)),
        ("+ pi on caches & memory", Some(Technique::PiMemory)),
    ];
    let mut stack = Table::new(vec!["tracking configuration", "DUE AVF", "vs parity"]);
    for (i, (name, tech)) in steps.iter().enumerate() {
        let due = if i == 0 {
            avf.due_avf()
        } else {
            avf.due_avf_with_tracking(*tech, &run.dead)
        };
        stack.row(vec![
            (*name).into(),
            due.to_string(),
            format!("{:+.1}%", due.relative_to(avf.due_avf()) * 100.0),
        ]);
    }
    println!("{stack}");

    println!(
        "The full memory-scope stack removes every false DUE: the remaining\n\
         {} is exactly the true-DUE floor — the SDC AVF the queue would have\n\
         had with no protection at all (paper §2.2).",
        avf.true_due_avf()
    );
    Ok(())
}
