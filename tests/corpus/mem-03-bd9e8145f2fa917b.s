; fuzz corpus entry 3: campaign seed 77, program seed 0xbd9e8145f2fa917b
; regenerate with: ser-repro fuzz --seed 77 --mutate regions --emit-corpus <dir> --corpus-count 6
(p0) movi r1 = 12    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 75    ; +0x0020
(p0) movi r11 = 777    ; +0x0028
(p0) movi r12 = 207    ; +0x0030
(p0) movi r13 = 253    ; +0x0038
(p0) movi r14 = 13    ; +0x0040
(p0) movi r15 = 1081    ; +0x0048
(p0) movi r16 = 547    ; +0x0050
(p0) movi r17 = 1081    ; +0x0058
(p0) movi r18 = 1348    ; +0x0060
(p0) movi r19 = 574    ; +0x0068
(p0) st8 [r3 + 0] = r15    ; +0x0070
(p0) st8 [r3 + 8] = r17    ; +0x0078
(p0) st8 [r3 + 16] = r19    ; +0x0080
(p0) st8 [r3 + 24] = r17    ; +0x0088
(p0) st8 [r3 + 1112] = r18    ; +0x0090
(p0) ld8 r11 = [r3 + 24]    ; +0x0098
(p0) sub r17 = r10, r13    ; +0x00a0
(p0) hint +0    ; +0x00a8
(p0) st8 [r3 + 40] = r12    ; +0x00b0
(p0) mul r12 = r16, r19    ; +0x00b8
(p0) nop    ; +0x00c0
(p0) movi r20 = 54    ; +0x00c8
(p0) add r21 = r20, r4    ; +0x00d0
(p0) mul r22 = r21, r21    ; +0x00d8
(p0) st8 [r3 + 1048] = r14    ; +0x00e0
(p0) add r2 = r2, r17    ; +0x00e8
(p0) addi r1 = r1, -1    ; +0x00f0
(p0) cmp.lt p1 = r0, r1    ; +0x00f8
(p1) br -112    ; +0x0100
(p0) out r2    ; +0x0108
(p0) halt    ; +0x0110
(p0) movi r40 = 3    ; +0x0118
(p0) movi r41 = 4    ; +0x0120
(p0) movi r42 = 5    ; +0x0128
(p0) movi r43 = 6    ; +0x0130
(p0) add r2 = r2, r4    ; +0x0138
(p0) ret r31    ; +0x0140
