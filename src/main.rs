//! `ser-repro` — command-line front end for the soft-error-rate
//! reproduction suite.
//!
//! ```text
//! ser-repro list
//! ser-repro suite [--squash l0|l1] [--throttle l0|l1]
//! ser-repro bench <name> [--squash l0|l1] [--throttle l0|l1]
//! ser-repro inject <name> [--injections N] [--model none|parity|tracking]
//! ser-repro pet <name>
//! ```
//!
//! Every subcommand additionally accepts `--json <path>` to write a
//! schema-versioned run artifact and `--telemetry off|summary|full` to
//! pick how much goes into it (see EXPERIMENTS.md for the schema).

use std::path::PathBuf;
use std::process::ExitCode;

use ses_core::telemetry as artifact;
use ses_core::{
    compare_suites, mean, read_probability, run_ecc_campaign, run_fuzz, run_suite_with,
    run_workload, spec_by_name, splitmix64, suite, AdaptiveCampaignConfig, AdaptiveConfig,
    AdaptiveSession, Campaign, CampaignConfig, DetectionModel, EccCampaignConfig, EccDomain,
    EccScheme, Environment, FalseDueCause, FuzzConfig, JsonValue, LatencyDistribution, Level,
    MetricKind, Outcome, PatternClass, PatternDistribution, PatternModel, Pipeline,
    PipelineConfig, RecoveryPolicy, RegionFault, ReliabilityModel, Table, TechNode, Technique,
    TelemetryLevel, TrackingConfig,
};
use ses_types::Reg;

/// The `--json` / `--telemetry` flags shared by every subcommand.
struct Telemetry {
    json: Option<PathBuf>,
    level: TelemetryLevel,
}

impl Telemetry {
    /// Strips the shared telemetry flags out of `args`, returning the
    /// remaining (subcommand-specific) arguments.
    fn extract(args: &[String]) -> Result<(Vec<String>, Telemetry), String> {
        let mut rest = Vec::new();
        let mut json = None;
        let mut level = TelemetryLevel::Summary;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
                }
                "--telemetry" => {
                    level = TelemetryLevel::parse(it.next().ok_or("--telemetry needs a level")?)?;
                }
                _ => rest.push(a.clone()),
            }
        }
        if json.is_some() && !level.enabled() {
            return Err("--json needs telemetry; drop '--telemetry off'".into());
        }
        Ok((rest, Telemetry { json, level }))
    }

    /// Whether an artifact should be produced at all.
    fn active(&self) -> bool {
        self.json.is_some()
    }

    /// Writes the artifact if `--json` was given.
    fn emit(&self, doc: &JsonValue) -> Result<(), String> {
        if let Some(path) = &self.json {
            artifact::write_artifact(path, doc)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

fn parse_level(s: &str) -> Result<Level, String> {
    match s {
        "l0" | "L0" => Ok(Level::L0),
        "l1" | "L1" => Ok(Level::L1),
        "l2" | "L2" => Ok(Level::L2),
        other => Err(format!("unknown cache level '{other}' (use l0/l1/l2)")),
    }
}

/// Applies `--squash` / `--throttle` flags to a pipeline config.
fn parse_machine(args: &[String]) -> Result<PipelineConfig, String> {
    let mut cfg = PipelineConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--squash" => {
                let v = it.next().ok_or("--squash needs a level")?;
                cfg = cfg.with_squash(parse_level(v)?);
            }
            "--throttle" => {
                let v = it.next().ok_or("--throttle needs a level")?;
                cfg = cfg.with_throttle(parse_level(v)?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            _ => {}
        }
    }
    Ok(cfg)
}

fn cmd_list(tel: &Telemetry) -> Result<(), String> {
    let mut t = Table::new(vec!["name", "class", "working set", "stride", "miss gate"]);
    for s in suite() {
        t.row(vec![
            s.name.clone(),
            s.category.label().into(),
            format!("{} KB", s.working_set_bytes / 1024),
            format!("{} B", s.stride_bytes),
            format!("1/{}", s.far_gate_mask + 1),
        ]);
    }
    println!("{t}");
    if tel.active() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "list")
            .set("telemetry", tel.level.label());
        let rows: Vec<JsonValue> = suite()
            .iter()
            .map(|s| {
                let mut v = JsonValue::object();
                v.set("name", s.name.as_str())
                    .set("category", s.category.label())
                    .set("working_set_bytes", s.working_set_bytes)
                    .set("stride_bytes", s.stride_bytes);
                v
            })
            .collect();
        doc.set("workloads", rows);
        tel.emit(&doc)?;
    }
    Ok(())
}

fn cmd_suite(args: &[String], tel: &Telemetry) -> Result<(), String> {
    // `--threads N` pins the worker count (0 = one per core); artifacts
    // are byte-identical for any value because the sweep preserves suite
    // order.
    let mut threads = 0usize;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = it
                .next()
                .ok_or("--threads needs a count")?
                .parse()
                .map_err(|e| format!("bad thread count: {e}"))?;
        } else {
            rest.push(a.clone());
        }
    }
    let cfg = parse_machine(&rest)?;
    // Full-level artifacts carry the per-workload AVF decomposition,
    // which needs the complete WorkloadRun, so project it inside the
    // parallel sweep instead of re-running everything afterwards.
    let (rows, details): (Vec<_>, Vec<_>) =
        if tel.active() && tel.level == TelemetryLevel::Full {
            run_suite_with(&cfg, threads, |_, run| {
                (run.summary(), artifact::workload_detail(&run))
            })
            .map_err(|e| e.to_string())?
            .into_iter()
            .unzip()
        } else {
            (
                run_suite_with(&cfg, threads, |_, run| run.summary())
                    .map_err(|e| e.to_string())?,
                Vec::new(),
            )
        };
    let mut t = Table::new(vec![
        "bench", "class", "IPC", "SDC AVF", "DUE AVF", "false DUE", "squashes",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            r.category.label().into(),
            format!("{:.2}", r.ipc.value()),
            r.sdc_avf.to_string(),
            r.due_avf.to_string(),
            r.false_due_avf.to_string(),
            r.squashes.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "averages: IPC {:.2}  SDC AVF {:.1}%  DUE AVF {:.1}%",
        mean(rows.iter().map(|r| r.ipc.value())),
        mean(rows.iter().map(|r| r.sdc_avf.percent())),
        mean(rows.iter().map(|r| r.due_avf.percent())),
    );
    if tel.active() {
        tel.emit(&artifact::suite_artifact(&cfg, &rows, &details, tel.level))?;
    }
    Ok(())
}

fn cmd_bench(name: &str, args: &[String], tel: &Telemetry) -> Result<(), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let cfg = parse_machine(args)?;
    let run = run_workload(&spec, &cfg).map_err(|e| e.to_string())?;
    let s = run.summary();

    println!("== {name} ==");
    println!(
        "committed {}  cycles {}  IPC {:.3}  mispredict {:.1}%  squashes {}",
        s.committed,
        s.cycles,
        s.ipc.value(),
        s.mispredict_ratio * 100.0,
        s.squashes
    );
    println!(
        "SDC AVF {}   DUE AVF {}   false DUE {}",
        s.sdc_avf, s.due_avf, s.false_due_avf
    );
    let st = s.states;
    println!(
        "queue state: idle {:.0}%  unread {:.0}%  un-ACE {:.0}%  ACE {:.0}%",
        st.idle * 100.0,
        st.unread * 100.0,
        st.unace * 100.0,
        st.ace * 100.0
    );

    println!("\nfalse-DUE causes:");
    for c in FalseDueCause::ALL {
        let v = run.avf.false_due_cause(c);
        if v > 0 {
            println!("  {:20?} {v}", c);
        }
    }

    println!("\nper-bit-field SDC AVF:");
    let mut t = Table::new(vec!["field", "bits", "AVF"]);
    for k in run.avf.avf_by_bit_kind() {
        t.row(vec![
            format!("{:?}", k.kind),
            k.width.to_string(),
            k.avf.to_string(),
        ]);
    }
    println!("{t}");

    println!("DUE AVF under cumulative tracking:");
    let mut t = Table::new(vec!["configuration", "DUE AVF"]);
    t.row(vec!["parity only".into(), run.avf.due_avf().to_string()]);
    t.row(vec![
        "pi@commit + anti-pi".into(),
        run.avf.due_avf_with_tracking(None, &run.dead).to_string(),
    ]);
    for (label, tech) in [
        ("+ PET 512", Technique::Pet(512)),
        ("+ pi per register", Technique::PiRegister),
        ("+ pi to store commit", Technique::PiStoreCommit),
        ("+ pi on memory", Technique::PiMemory),
    ] {
        t.row(vec![
            label.into(),
            run.avf
                .due_avf_with_tracking(Some(tech), &run.dead)
                .to_string(),
        ]);
    }
    println!("{t}");

    // Exposure timeline sparkline.
    let tl = run.avf.timeline();
    let peak = tl.iter().map(|p| p.valid).max().unwrap_or(1).max(1);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let line: String = tl
        .iter()
        .map(|p| glyphs[(p.valid * 7 / peak) as usize])
        .collect();
    println!("exposure timeline (valid bit-cycles per interval):\n[{line}]");
    if tel.active() {
        // Stage counters are Full-level extras: re-run the (deterministic)
        // timing model with the collector attached; ~64 buckets per run.
        let stages = if tel.level == TelemetryLevel::Full {
            let bucket = (run.result.cycles / 64).max(1);
            Some(
                Pipeline::new(cfg.clone())
                    .run_instrumented(&run.program, &run.trace, DetectionModel::None, bucket)
                    .1,
            )
        } else {
            None
        };
        tel.emit(&artifact::run_artifact(&cfg, &run, stages.as_ref(), tel.level))?;
    }
    Ok(())
}

fn cmd_inject(name: &str, args: &[String], tel: &Telemetry) -> Result<(), String> {
    let spec = spec_by_name(name)
        .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let mut injections = 300u32;
    let mut detection = DetectionModel::Parity { tracking: None };
    let mut prune = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--injections" => {
                injections = it
                    .next()
                    .ok_or("--injections needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--prune" => prune = true,
            "--model" => {
                detection = match it.next().ok_or("--model needs a value")?.as_str() {
                    "none" => DetectionModel::None,
                    "parity" => DetectionModel::Parity { tracking: None },
                    "tracking" => DetectionModel::Parity {
                        tracking: Some(TrackingConfig::paper_combined()),
                    },
                    other => return Err(format!("unknown model '{other}'")),
                };
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ => {}
        }
    }
    let config = CampaignConfig {
        injections,
        seed: 2026,
        detection,
        prune,
        ..CampaignConfig::default()
    };
    let iq_entries = config.pipeline.iq_entries;
    let campaign = Campaign::prepare(&spec, config).map_err(|e| e.to_string())?;
    let detailed = campaign.run_detailed();
    let report = detailed.summary();
    print!("{report}");
    match detection {
        DetectionModel::None => {
            let p = report.sdc_avf_estimate();
            println!(
                "statistical SDC AVF: {:.1}% +/- {:.1}%",
                p * 100.0,
                report.ci95(p) * 100.0
            );
        }
        _ => {
            let p = report.due_avf_estimate();
            println!(
                "statistical DUE AVF: {:.1}% +/- {:.1}%",
                p * 100.0,
                report.ci95(p) * 100.0
            );
            let _ = Outcome::ALL; // (kept for discoverability in docs)
        }
    }
    if tel.active() {
        tel.emit(&artifact::campaign_artifact(
            name, &detailed, iq_entries, tel.level,
        ))?;
    }
    Ok(())
}

/// `campaign` — a confidence-targeted fault-injection campaign: either
/// adaptive stratified sampling (`--adaptive`) or uniform sampling run to
/// the same target half-width, so the two budgets are directly
/// comparable.
fn cmd_campaign(name: &str, args: &[String], tel: &Telemetry) -> Result<(), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let mut adaptive = false;
    let mut target_halfwidth = 0.05f64;
    let mut detection = DetectionModel::None;
    let mut model_set = false;
    let mut seed = 2026u64;
    let mut max_injections: Option<u32> = None;
    let mut gate_vs_uniform = false;
    let mut spatial: Option<bool> = None;
    let mut ecc: Option<EccScheme> = None;
    let mut node: Option<TechNode> = None;
    let mut env: Option<Environment> = None;
    let mut detect_latency: Option<LatencyDistribution> = None;
    let mut recovery = RecoveryPolicy::MachineCheck;
    let mut prune = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--adaptive" => adaptive = true,
            "--prune" => prune = true,
            "--detect-latency" => {
                detect_latency = Some(
                    it.next()
                        .ok_or("--detect-latency needs a spec (fixed:N, geometric:M, table:LxW,...)")?
                        .parse()?,
                );
            }
            "--recovery" => {
                recovery = it.next().ok_or("--recovery needs a policy")?.parse()?;
            }
            "--pattern-model" => {
                spatial = Some(match it.next().ok_or("--pattern-model needs a value")?.as_str() {
                    "single" => false,
                    "spatial" => true,
                    other => {
                        return Err(format!(
                            "unknown pattern model '{other}' (use single/spatial)"
                        ))
                    }
                });
            }
            "--ecc" => {
                ecc = Some(EccScheme::parse(it.next().ok_or("--ecc needs a scheme")?)?);
            }
            "--node" => {
                node = Some(TechNode::parse(it.next().ok_or("--node needs a value")?)?);
            }
            "--env" => {
                env = Some(Environment::parse(it.next().ok_or("--env needs a value")?)?);
            }
            "--target-halfwidth" => {
                target_halfwidth = it
                    .next()
                    .ok_or("--target-halfwidth needs a value")?
                    .parse()
                    .map_err(|e| format!("bad half-width: {e}"))?;
                if !(target_halfwidth > 0.0 && target_halfwidth < 1.0) {
                    return Err("--target-halfwidth must be in (0, 1)".into());
                }
            }
            "--model" => {
                model_set = true;
                detection = match it.next().ok_or("--model needs a value")?.as_str() {
                    "none" => DetectionModel::None,
                    "parity" => DetectionModel::Parity { tracking: None },
                    "tracking" => DetectionModel::Parity {
                        tracking: Some(TrackingConfig::paper_combined()),
                    },
                    other => return Err(format!("unknown model '{other}'")),
                };
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--injections" => {
                max_injections = Some(
                    it.next()
                        .ok_or("--injections needs a cap")?
                        .parse()
                        .map_err(|e| format!("bad count: {e}"))?,
                );
            }
            "--gate-vs-uniform" => gate_vs_uniform = true,
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            _ => {}
        }
    }
    // `--detect-latency` / `--recovery idempotent` select the
    // detection-latency + recovery campaign: a fixed-budget detailed run
    // whose artifact carries the schema-versioned `recovery` stanza.
    // Recovery only acts on signalled faults, so detection defaults to
    // parity here unless `--model` was given explicitly.
    if recovery == RecoveryPolicy::Idempotent || detect_latency.is_some() {
        if adaptive || ecc.is_some() || spatial.is_some() {
            return Err(
                "--detect-latency/--recovery combine with neither --adaptive nor --ecc/--pattern-model"
                    .into(),
            );
        }
        if !model_set {
            detection = DetectionModel::Parity { tracking: None };
        }
        let config = CampaignConfig {
            injections: max_injections.unwrap_or(500),
            seed,
            detection,
            detect_latency: detect_latency.clone(),
            recovery,
            prune,
            ..CampaignConfig::default()
        };
        let iq_entries = config.pipeline.iq_entries;
        let campaign = Campaign::prepare(&spec, config).map_err(|e| e.to_string())?;
        let detailed = campaign.run_detailed();
        let report = detailed.summary();
        print!("{report}");
        match &detect_latency {
            Some(d) => println!("detection latency: {d} cycles"),
            None => println!("detection latency: 0 cycles (immediate)"),
        }
        println!("recovery policy: {}", recovery.label());
        if let Some(r) = detailed.recovery() {
            println!(
                "idempotent regions: {} (mean length {:.1} instructions)",
                r.regions, r.mean_region_len
            );
            println!(
                "recovered {} of {} detections ({:.1}%), machine-check fallback {}",
                r.recovered,
                r.detected(),
                r.recovered_fraction() * 100.0,
                r.fallback_due
            );
            println!(
                "re-execution cost: {} instructions total, {:.1} per recovery (mean latency {:.1} cycles)",
                r.reexec_instructions,
                r.mean_reexec_instructions(),
                r.mean_latency_cycles()
            );
        }
        if tel.active() {
            tel.emit(&artifact::campaign_artifact(
                name, &detailed, iq_entries, tel.level,
            ))?;
        }
        return Ok(());
    }

    let metric = match detection {
        DetectionModel::None => MetricKind::SdcAvf,
        _ => MetricKind::DueAvf,
    };
    let config = CampaignConfig {
        seed,
        detection,
        prune,
        ..CampaignConfig::default()
    };
    let campaign = Campaign::prepare(&spec, config).map_err(|e| e.to_string())?;
    // `--node`/`--env` swap the default raw-rate model for a technology
    // scenario; either flag alone fills the other from its default.
    let model = if node.is_some() || env.is_some() {
        ReliabilityModel::for_scenario(
            node.unwrap_or(TechNode::N28),
            env.unwrap_or(Environment::Consumer),
        )
    } else {
        ReliabilityModel::default()
    };

    // `--ecc` (or an explicit `--pattern-model`) turns on the multi-bit
    // spatial strike engine. The scheme defaults to unprotected;
    // `--pattern-model single` collapses the distribution to single-bit
    // strikes so the ECC path can be compared against the classic one.
    let pattern = if ecc.is_some() || spatial.is_some() {
        Some(PatternModel {
            distribution: if spatial == Some(false) {
                PatternDistribution::single_only()
            } else {
                PatternDistribution::default()
            },
            domain: EccDomain::new(ecc.unwrap_or(EccScheme::None)),
        })
    } else {
        None
    };

    if let (Some(p), false) = (&pattern, adaptive) {
        // Fixed-budget multi-bit campaign under the protection domain.
        let cfg = EccCampaignConfig {
            injections: max_injections.unwrap_or(1000),
            seed,
            distribution: p.distribution,
            domain: p.domain,
        };
        let report = run_ecc_campaign(&campaign, &cfg);
        println!(
            "ecc campaign: {} strikes under {} ({} check bits/word)",
            cfg.injections,
            cfg.domain.label(),
            cfg.domain.check_bits()
        );
        for (class, n) in PatternClass::ALL.iter().zip(report.per_class) {
            println!("  {:16} {n}", class.label());
        }
        println!(
            "dispositions: corrected {}  detected {}  silent {}",
            report.corrected, report.detected, report.silent
        );
        println!(
            "analytic residual: corrected {:.4}  detected {:.4}  silent {:.6}",
            report.analytic.corrected, report.analytic.detected, report.analytic.silent
        );
        println!(
            "measured rates: DUE {:.2}% +/- {:.2}%   SDC {:.2}% +/- {:.2}%",
            report.due_rate() * 100.0,
            report.ci95(report.due_rate()) * 100.0,
            report.sdc_rate() * 100.0,
            report.ci95(report.sdc_rate()) * 100.0
        );
        let rates = model.rate_interval(
            ses_core::Ipc::new(campaign.baseline_ipc()),
            report.due_rate(),
            report.ci95(report.due_rate()),
        );
        if let Some(pt) = rates.point {
            println!(
                "DUE rates: {:.4} FIT, MTTF {:.2e} years",
                pt.fit.value(),
                pt.mttf.years()
            );
        } else {
            println!("DUE rates: no machine checks observed; FIT interval starts at 0");
        }
        if tel.active() {
            tel.emit(&artifact::ecc_campaign_artifact(
                name,
                &cfg,
                &report,
                campaign.baseline_ipc(),
                &model,
                tel.level,
            ))?;
        }
        return Ok(());
    }

    let max_injections = max_injections.unwrap_or(200_000);
    if !adaptive {
        let uniform =
            campaign.run_uniform_to_target(target_halfwidth, metric, 64, max_injections);
        println!(
            "uniform campaign: {} trials, {} {:.2}% +/- {:.2}% (target {:.2}%)",
            uniform.trials,
            metric.label(),
            uniform.proportion * 100.0,
            uniform.halfwidth * 100.0,
            target_halfwidth * 100.0
        );
        if tel.active() {
            let mut doc = JsonValue::object();
            doc.set("schema_version", ses_core::SCHEMA_VERSION)
                .set("artifact", "uniform_campaign")
                .set("telemetry", tel.level.label())
                .set("workload", name)
                .set("metric", metric.label())
                .set("target_halfwidth", target_halfwidth)
                .set("trials", uniform.trials)
                .set("events", uniform.events)
                .set("proportion", uniform.proportion)
                .set("halfwidth", uniform.halfwidth);
            tel.emit(&doc)?;
        }
        return Ok(());
    }

    let cfg = AdaptiveCampaignConfig {
        adaptive: AdaptiveConfig {
            target_halfwidth,
            seed,
            ..AdaptiveConfig::default()
        },
        metric,
        pattern,
    };
    if let Some(p) = &cfg.pattern {
        println!(
            "spatial strikes under {} ({} check bits/word)",
            p.domain.label(),
            p.domain.check_bits()
        );
    }
    let report = AdaptiveSession::new(&campaign, cfg.clone()).run();
    let est = &report.estimate;
    println!(
        "adaptive campaign: {} trials over {} strata in {} rounds",
        report.total_trials,
        report.strata.len(),
        report.rounds
    );
    println!(
        "{} estimate {:.2}% +/- {:.2}% (aggregate 95% CI)",
        metric.label(),
        est.estimate * 100.0,
        est.halfwidth * 100.0
    );
    let equivalent = report.uniform_equivalent_trials();
    println!(
        "uniform sampling would need ~{} trials for the same half-width ({:.1}x savings)",
        equivalent,
        report.uniform_savings()
    );
    let rates = report.rate_interval(&model);
    if let Some(p) = rates.point {
        let pess = rates.pessimistic.unwrap_or(p);
        println!(
            "rates: {:.3} FIT (<= {:.3}), MITF {:.3e} instructions (>= {:.3e})",
            p.fit.value(),
            pess.fit.value(),
            p.mitf.instructions(),
            pess.mitf.instructions()
        );
    } else {
        println!("rates: no events observed; FIT interval starts at 0");
    }
    if tel.active() {
        tel.emit(&artifact::adaptive_campaign_artifact(
            name, &cfg, &report, &model, tel.level,
        ))?;
    }
    if gate_vs_uniform && report.total_trials >= equivalent {
        return Err(format!(
            "adaptive campaign used {} trials but uniform would need only {}",
            report.total_trials, equivalent
        ));
    }
    Ok(())
}

/// `ecc-grid` — the analytic (node × environment × scheme) residual-rate
/// grid for one or more workloads. Each workload contributes only its
/// measured read probability (a forced-signal single-bit probe) and
/// baseline IPC; everything else is exact enumeration, so the artifact
/// regenerates byte-identically from the same command. The pinned golden
/// `tests/golden/campaign_ecc.json` is produced exactly this way.
fn cmd_ecc_grid(args: &[String], tel: &Telemetry) -> Result<(), String> {
    let mut names = Vec::new();
    let mut probes = 400u32;
    let mut seed = 0xECCu64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--probes" => {
                probes = it
                    .next()
                    .ok_or("--probes needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        return Err("ecc-grid needs at least one benchmark name".into());
    }
    let distribution = PatternDistribution::default();
    let mut workloads = Vec::new();
    for name in &names {
        let spec = spec_by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
        let campaign = Campaign::prepare(
            &spec,
            CampaignConfig {
                injections: 0,
                seed,
                detection: DetectionModel::None,
                ..CampaignConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let p_read = read_probability(&campaign, probes, seed);
        println!(
            "{name}: P(read) = {:.4} over {probes} probes, IPC {:.3}",
            p_read,
            campaign.baseline_ipc()
        );
        workloads.push((name.clone(), campaign.baseline_ipc(), p_read, probes));
    }
    let mut t = Table::new(vec!["scheme", "check bits", "residual detected", "residual silent"]);
    for &scheme in &EccScheme::ALL {
        let domain = EccDomain::new(scheme);
        let res = ses_core::ResidualModel::analytic(&distribution, &domain);
        t.row(vec![
            domain.label(),
            domain.check_bits().to_string(),
            format!("{:.6}", res.detected),
            format!("{:.6}", res.silent),
        ]);
    }
    println!("{t}");
    if tel.active() {
        tel.emit(&artifact::ecc_grid_artifact(&distribution, &workloads, tel.level))?;
    }
    Ok(())
}

fn cmd_pet(name: &str, tel: &Telemetry) -> Result<(), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let run = run_workload(&spec, &PipelineConfig::default()).map_err(|e| e.to_string())?;
    let mut t = Table::new(vec![
        "PET entries",
        "FDD-reg coverage",
        "FDD(+mem) coverage",
        "residual false DUE",
    ]);
    let sizes = [32u64, 128, 512, 2048, 8192, 32768];
    for size in sizes {
        t.row(vec![
            size.to_string(),
            format!("{:.0}%", run.dead.pet_coverage_fdd_reg(size, true) * 100.0),
            format!("{:.0}%", run.dead.pet_coverage_with_memory(size) * 100.0),
            run.avf
                .residual_false_due(Some(Technique::Pet(size)), &run.dead)
                .to_string(),
        ]);
    }
    println!("{t}");
    if tel.active() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "pet")
            .set("telemetry", tel.level.label())
            .set("workload", name);
        let rows: Vec<JsonValue> = sizes
            .iter()
            .map(|&size| {
                let mut v = JsonValue::object();
                v.set("entries", size)
                    .set("coverage_fdd_reg", run.dead.pet_coverage_fdd_reg(size, true))
                    .set("coverage_with_memory", run.dead.pet_coverage_with_memory(size))
                    .set(
                        "residual_false_due",
                        run.avf
                            .residual_false_due(Some(Technique::Pet(size)), &run.dead)
                            .fraction(),
                    );
                v
            })
            .collect();
        doc.set("sweep", rows);
        tel.emit(&doc)?;
    }
    Ok(())
}

fn cmd_compare(args: &[String], tel: &Telemetry) -> Result<(), String> {
    let variant = parse_machine(args)?;
    if variant == PipelineConfig::default() {
        return Err("compare needs at least one machine flag (e.g. --squash l1)".into());
    }
    let rows = compare_suites(&PipelineConfig::default(), &variant).map_err(|e| e.to_string())?;
    let mut t = Table::new(vec![
        "bench",
        "rel IPC",
        "rel SDC AVF",
        "rel DUE AVF",
        "SDC MITF gain",
        "profitable",
    ]);
    for c in &rows {
        t.row(vec![
            c.base.name.clone(),
            format!("{:.3}", c.rel_ipc()),
            format!("{:.2}", c.rel_sdc()),
            format!("{:.2}", c.rel_due()),
            format!("{:.2}x", c.sdc_mitf_gain()),
            if c.is_profitable() { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{t}");
    println!(
        "suite means: rel IPC {:.3}  rel SDC {:.2}  rel DUE {:.2}  MITF gain {:.2}x",
        mean(rows.iter().map(|c| c.rel_ipc())),
        mean(rows.iter().map(|c| c.rel_sdc())),
        mean(rows.iter().map(|c| c.rel_due())),
        mean(rows.iter().map(|c| c.sdc_mitf_gain())),
    );
    if tel.active() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "compare")
            .set("telemetry", tel.level.label())
            .set("variant", artifact::machine_value(&variant));
        let records: Vec<JsonValue> = rows
            .iter()
            .map(|c| {
                let mut v = JsonValue::object();
                v.set("name", c.base.name.as_str())
                    .set("rel_ipc", c.rel_ipc())
                    .set("rel_sdc_avf", c.rel_sdc())
                    .set("rel_due_avf", c.rel_due())
                    .set("sdc_mitf_gain", c.sdc_mitf_gain())
                    .set("profitable", c.is_profitable());
                v
            })
            .collect();
        doc.set("workloads", records);
        tel.emit(&doc)?;
    }
    Ok(())
}

fn cmd_run_asm(path: &str, tel: &Telemetry) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = ses_isa::assemble(&source).map_err(|e| e.to_string())?;
    let trace = ses_arch::Emulator::new(&program)
        .run(10_000_000)
        .map_err(|e| e.to_string())?;
    if !trace.halted() {
        return Err("program did not halt within 10M instructions".into());
    }
    println!("{} static, {} dynamic instructions", program.len(), trace.len());
    println!("output: {:?}", trace.output());

    let dead = ses_core::DeadMap::analyze(&trace);
    let result = ses_core::Pipeline::new(PipelineConfig::default()).run(&program, &trace);
    let avf = ses_core::AvfAnalysis::new(&result, &dead);
    println!(
        "IPC {:.2}   SDC AVF {}   DUE AVF {}   dead instructions {:.1}%",
        result.ipc().value(),
        avf.sdc_avf(),
        avf.due_avf(),
        dead.dead_fraction() * 100.0
    );
    if tel.active() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "run-asm")
            .set("telemetry", tel.level.label())
            .set("source", path)
            .set("static_instrs", program.len())
            .set("dynamic_instrs", trace.len())
            .set("cycles", result.cycles)
            .set("ipc", result.ipc().value())
            .set("sdc_avf", avf.sdc_avf().fraction())
            .set("due_avf", avf.due_avf().fraction())
            .set("false_due_avf", avf.false_due_avf().fraction())
            .set("dead_fraction", dead.dead_fraction());
        tel.emit(&doc)?;
    }
    Ok(())
}

fn cmd_fuzz(args: &[String], tel: &Telemetry) -> Result<(), String> {
    let mut cfg = FuzzConfig::default();
    let mut out_dir = PathBuf::from("fuzz-out");
    let mut corpus_dir: Option<PathBuf> = None;
    let mut corpus_count = 12u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--iters" => {
                cfg.iters = it
                    .next()
                    .ok_or("--iters needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--shrink" => cfg.shrink = true,
            "--no-shrink" => cfg.shrink = false,
            "--mutate" => {
                match it.next().ok_or("--mutate needs a mode")?.as_str() {
                    // Region-boundary-aware fuzzing: store-dense programs
                    // stress the idempotent-region analysis and its
                    // replay check (oracle stage 6).
                    "regions" => cfg.program_spec = ses_workloads::FuzzProgramSpec::mem_heavy(),
                    other => return Err(format!("unknown mutation mode '{other}' (use regions)")),
                }
            }
            "--region-fault" => {
                // Seeds a defect into the region analysis so the fuzzer
                // must catch (and shrink) the resulting divergence; the
                // run is expected to FAIL.
                cfg.oracle.region_fault =
                    Some(match it.next().ok_or("--region-fault needs a kind")?.as_str() {
                        "ignore-acc" => RegionFault::IgnoreReg(Reg::new(2)),
                        "ignore-stores" => RegionFault::IgnoreStores,
                        other => {
                            return Err(format!(
                                "unknown region fault '{other}' (use ignore-acc/ignore-stores)"
                            ))
                        }
                    });
            }
            "--inject-every" => {
                cfg.injection_every = it
                    .next()
                    .ok_or("--inject-every needs a count (0 disables)")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--out" => out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?),
            "--emit-corpus" => {
                corpus_dir = Some(PathBuf::from(
                    it.next().ok_or("--emit-corpus needs a directory")?,
                ));
            }
            "--corpus-count" => {
                corpus_count = it
                    .next()
                    .ok_or("--corpus-count needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            other => return Err(format!("unknown fuzz flag '{other}'")),
        }
    }

    if let Some(dir) = corpus_dir {
        return emit_corpus(&dir, cfg.seed, corpus_count, &cfg.program_spec);
    }

    let report = run_fuzz(&cfg);
    println!(
        "fuzz: seed {}  {} programs checked  {} injection cross-checks  {} committed instructions",
        cfg.seed, report.iterations, report.injection_checks, report.total_committed
    );
    if !report.failures.is_empty() {
        std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
        for f in &report.failures {
            let path = out_dir.join(format!("repro-{:016x}.s", f.program_seed));
            std::fs::write(&path, f.reproducer_asm())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "FAIL iteration {} (program seed {:#x}): {}\n  reproducer ({} instrs): {}",
                f.iteration,
                f.program_seed,
                f.divergence,
                f.reproducer().len(),
                path.display()
            );
        }
    }
    if tel.active() {
        let mut doc = JsonValue::object();
        doc.set("schema_version", ses_core::SCHEMA_VERSION)
            .set("artifact", "fuzz")
            .set("telemetry", tel.level.label())
            .set("seed", cfg.seed)
            .set("iterations", report.iterations)
            .set("injection_checks", report.injection_checks)
            .set("total_committed", report.total_committed)
            .set("failures", report.failures.len() as u64);
        tel.emit(&doc)?;
    }
    if report.clean() {
        println!("no divergences found");
        Ok(())
    } else {
        Err(format!(
            "{} divergence(s) found; reproducers in {}",
            report.failures.len(),
            out_dir.display()
        ))
    }
}

/// Generates `count` oracle-clean programs from `seed` and writes them as
/// replayable `.s` files — the committed regression corpus under
/// `tests/corpus/` is produced exactly this way.
fn emit_corpus(
    dir: &std::path::Path,
    seed: u64,
    count: u64,
    spec: &ses_workloads::FuzzProgramSpec,
) -> Result<(), String> {
    let oracle = ses_core::OracleConfig::default();
    // Store-dense (`--mutate regions`) entries get their own file prefix
    // so the two corpus families stay distinguishable on disk.
    let (prefix, mode_flag) = if spec.mem_bias {
        ("mem", " --mutate regions")
    } else {
        ("fuzz", "")
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for i in 0..count {
        let program_seed = splitmix64(seed.wrapping_add(i));
        let program = ses_workloads::fuzz_program_with(program_seed, spec);
        ses_core::check_program(&program, &oracle)
            .map_err(|d| format!("seed {program_seed:#x} fails the oracle: {d}"))?;
        let text = format!(
            "; fuzz corpus entry {i}: campaign seed {seed}, program seed {program_seed:#x}\n\
             ; regenerate with: ser-repro fuzz --seed {seed}{mode_flag} --emit-corpus <dir> --corpus-count {count}\n\
             {}",
            ses_isa::disassemble(&program)
        );
        let path = dir.join(format!("{prefix}-{i:02}-{program_seed:016x}.s"));
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// `serve` — run the campaign-as-a-service daemon in the foreground.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ses_serve::ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ses_serve::ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--threads" => {
                config.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--cache-bytes" => {
                config.cache_bytes = it
                    .next()
                    .ok_or("--cache-bytes needs a byte budget")?
                    .parse()
                    .map_err(|e| format!("bad byte budget: {e}"))?;
            }
            "--max-body-bytes" => {
                config.max_body_bytes = it
                    .next()
                    .ok_or("--max-body-bytes needs a limit")?
                    .parse()
                    .map_err(|e| format!("bad limit: {e}"))?;
            }
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    let server = ses_serve::Server::start(&config).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.addr());
    println!("routes: POST /v1/campaign /v1/suite /v1/ecc-grid /v1/fuzz  GET /v1/stats /v1/healthz");
    // Foreground daemon: park until killed.
    loop {
        std::thread::park();
    }
}

/// `loadtest` — drive a daemon with concurrent mixed-shape clients and
/// write `BENCH_serve.json`.
fn cmd_loadtest(args: &[String]) -> Result<(), String> {
    let mut cfg = ses_serve::LoadtestConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = Some(it.next().ok_or("--addr needs host:port")?.clone()),
            "--clients" => {
                cfg.clients = it
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--requests" => {
                cfg.requests_per_client = it
                    .next()
                    .ok_or("--requests needs a per-client count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--workload" => {
                cfg.workload = it.next().ok_or("--workload needs a name")?.clone();
            }
            "--injections" => {
                cfg.injections = it
                    .next()
                    .ok_or("--injections needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--seeds" => {
                cfg.seeds = it
                    .next()
                    .ok_or("--seeds needs a count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--out" => cfg.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--no-out" => cfg.out = None,
            "--gate" => cfg.gate = true,
            other => return Err(format!("unknown loadtest flag '{other}'")),
        }
    }
    let report = ses_serve::run_loadtest(&cfg)?;
    println!(
        "loadtest: {} distinct jobs, {} requests total",
        report.distinct_jobs, report.total_requests
    );
    println!(
        "cold:  p50 {}us  p95 {}us  p99 {}us  ({} samples)",
        report.cold.p50_us, report.cold.p95_us, report.cold.p99_us, report.cold.samples
    );
    println!(
        "warm:  p50 {}us  p95 {}us  p99 {}us  ({} samples)",
        report.warm.p50_us, report.warm.p95_us, report.warm.p99_us, report.warm.samples
    );
    println!(
        "throughput {:.0} req/s  cache hit rate {:.1}%  cold/warm p50 speedup {:.1}x",
        report.warm_rps,
        report.hit_rate * 100.0,
        report.speedup_p50
    );
    if let Some(path) = &cfg.out {
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: ser-repro <command>\n\
     \n\
     commands:\n\
       list                        list the benchmark suite\n\
       suite [flags]               run all 26 benchmarks, print AVF summary\n\
\x20                                 (--threads N pins the worker count)\n\
       bench <name> [flags]        detailed report for one benchmark\n\
       inject <name> [options]     fault-injection campaign\n\
       campaign <name> [options]   confidence-targeted campaign (adaptive or uniform)\n\
       ecc-grid <names> [options]  analytic node x environment x scheme residual grid\n\
       pet <name>                  PET-buffer size sweep\n\
       run-asm <file.s>            assemble and analyse a SES-64 program\n\
       compare [flags]             suite baseline-vs-variant comparison\n\
       fuzz [options]              differential fuzz: emulator vs pipeline\n\
       serve [options]             campaign-as-a-service HTTP daemon\n\
       loadtest [options]          concurrent-client benchmark against the daemon\n\
     \n\
     machine flags: --squash l0|l1    --throttle l0|l1\n\
     inject options: --injections N   --model none|parity|tracking  --prune\n\
     campaign options: --adaptive  --target-halfwidth W  --model none|parity|tracking\n\
                       --seed N  --injections CAP  --gate-vs-uniform  --prune\n\
                       --pattern-model single|spatial  --ecc none|parity|sec|sec-ded|taec|dec\n\
                       --node 28nm|16nm|7nm  --env consumer|avionics|space\n\
                       --detect-latency fixed:N|geometric:M|table:LxW,...\n\
                       --recovery machine-check|idempotent\n\
     ecc-grid options: --probes N  --seed N\n\
     fuzz options: --seed N  --iters N  --shrink|--no-shrink  --out DIR\n\
                   --inject-every N  --emit-corpus DIR  --corpus-count N\n\
                   --mutate regions  --region-fault ignore-acc|ignore-stores\n\
     serve options: --addr HOST:PORT  --threads N  --cache-bytes N  --max-body-bytes N\n\
     loadtest options: --addr HOST:PORT  --clients N  --requests N  --seeds N\n\
                       --workload NAME  --injections N  --threads N\n\
                       --out PATH|--no-out  --gate\n\
     artifact flags (any command): --json <path>   --telemetry off|summary|full"
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (args, tel) = Telemetry::extract(args)?;
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(&tel),
        Some("suite") => cmd_suite(&args[1..], &tel),
        Some("bench") => match args.get(1) {
            Some(name) if !name.starts_with("--") => cmd_bench(name, &args[2..], &tel),
            _ => Err("bench needs a benchmark name".into()),
        },
        Some("inject") => match args.get(1) {
            Some(name) if !name.starts_with("--") => cmd_inject(name, &args[2..], &tel),
            _ => Err("inject needs a benchmark name".into()),
        },
        Some("campaign") => match args.get(1) {
            Some(name) if !name.starts_with("--") => cmd_campaign(name, &args[2..], &tel),
            _ => Err("campaign needs a benchmark name".into()),
        },
        Some("ecc-grid") => cmd_ecc_grid(&args[1..], &tel),
        Some("pet") => match args.get(1) {
            Some(name) if !name.starts_with("--") => cmd_pet(name, &tel),
            _ => Err("pet needs a benchmark name".into()),
        },
        Some("run-asm") => match args.get(1) {
            Some(path) => cmd_run_asm(path, &tel),
            None => Err("run-asm needs a source file".into()),
        },
        Some("compare") => cmd_compare(&args[1..], &tel),
        Some("fuzz") => cmd_fuzz(&args[1..], &tel),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadtest") => cmd_loadtest(&args[1..]),
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = dispatch(&args);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
