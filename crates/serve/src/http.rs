//! Minimal HTTP/1.1 request/response handling on `std::net::TcpStream`.
//!
//! Only what the daemon needs: request-line + header parsing with hard
//! size limits, `Content-Length` bodies, and `Connection: close`
//! responses. Every malformed input maps to a [`HttpError`] carrying the
//! status code the server should answer with — parsing never panics.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ses_metrics::{JsonValue, SCHEMA_VERSION};

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request path, e.g. `/v1/campaign` (query strings are kept verbatim).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-level failure with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable description, returned in the structured error body.
    pub message: String,
}

impl HttpError {
    /// Build an error with `status` and `message`.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Error",
    }
}

/// Read one request from `stream`, enforcing `max_body` on the body and
/// [`MAX_HEAD_BYTES`] on the head.
///
/// Truncated input (client closed before finishing the head or the
/// promised body) yields a 400, oversized input 413, and a read timeout
/// 408 — the caller answers with [`write_error`] and moves on.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let body_start;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(HttpError::new(
                    400,
                    "truncated request: connection closed before end of headers",
                ))
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request head"))
            }
            Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
        };
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(413, "request head exceeds 16 KiB"));
        }
    }

    let head_text = std::str::from_utf8(&head[..body_start])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!("malformed request line: {request_line:?}"),
        ));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("invalid Content-Length: {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds limit of {max_body}"),
        ));
    }

    let mut body = head[body_start + 4..].to_vec();
    while body.len() < content_length {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(HttpError::new(
                    400,
                    "truncated request: connection closed before end of body",
                ))
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request body"))
            }
            Err(e) => return Err(HttpError::new(400, format!("read error: {e}"))),
        };
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a `Connection: close` response with a JSON body and optional
/// extra headers. Write errors (client hung up mid-response) are returned
/// for the caller to ignore — the daemon keeps serving either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Render the structured JSON error body for `err`.
pub fn error_body(err: &HttpError) -> String {
    let mut doc = JsonValue::object();
    doc.set("schema_version", SCHEMA_VERSION);
    doc.set("artifact", "error");
    doc.set("status", u64::from(err.status));
    doc.set("error", err.message.as_str());
    doc.render()
}

/// Answer `err` on `stream` with its structured JSON body; write failures
/// are swallowed (the client may already be gone).
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    let body = error_body(err);
    let _ = write_response(stream, err.status, &[], &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_body_is_structured_json() {
        let err = HttpError::new(404, "no such route");
        let body = error_body(&err);
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("artifact").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(doc.get("status").and_then(|v| v.as_u64()), Some(404));
        assert_eq!(
            doc.get("error").and_then(|v| v.as_str()),
            Some("no such route")
        );
    }
}
