//! Golden-file regression suite: the telemetry artifacts for the default
//! machine configuration are pinned byte-for-byte under `tests/golden/`.
//! Any change to workload synthesis, the emulator, the timing model, or
//! the ACE analysis shows up here as a diff.
//!
//! Regenerating after an *intentional* behaviour change:
//!
//! ```text
//! cargo run --release -- suite --json tests/golden/suite_default.json
//! cargo run --release -- bench twolf --json tests/golden/run_twolf.json
//! ```

use std::path::Path;

use ses_core::telemetry::{run_artifact, suite_artifact};
use ses_core::{
    run_suite, run_workload, spec_by_name, Level, PipelineConfig, TelemetryLevel,
};

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

#[test]
fn suite_artifact_matches_golden() {
    let cfg = PipelineConfig::default();
    let rows = run_suite(&cfg).expect("suite run");
    let artifact = suite_artifact(&cfg, &rows, &[], TelemetryLevel::Summary).render();
    assert_eq!(
        artifact,
        golden("suite_default.json"),
        "26-workload suite drifted from tests/golden/suite_default.json; \
         if intentional, regenerate with \
         `cargo run --release -- suite --json tests/golden/suite_default.json`"
    );
}

#[test]
fn single_run_artifact_matches_golden() {
    let spec = spec_by_name("twolf").expect("twolf in suite");
    let cfg = PipelineConfig::default();
    let run = run_workload(&spec, &cfg).expect("twolf run");
    let artifact = run_artifact(&cfg, &run, None, TelemetryLevel::Summary).render();
    assert_eq!(
        artifact,
        golden("run_twolf.json"),
        "twolf artifact drifted from tests/golden/run_twolf.json; \
         if intentional, regenerate with \
         `cargo run --release -- bench twolf --json tests/golden/run_twolf.json`"
    );
}

#[test]
fn perturbed_config_is_caught() {
    // A golden comparison that cannot fail is worthless: prove that a
    // behaviour-changing configuration (L1-miss squashing) actually
    // perturbs the pinned bytes, in the results and not just in the
    // machine-description stanza.
    let spec = spec_by_name("twolf").expect("twolf in suite");
    let cfg = PipelineConfig::default().with_squash(Level::L1);
    let run = run_workload(&spec, &cfg).expect("perturbed twolf run");
    let artifact = run_artifact(&cfg, &run, None, TelemetryLevel::Summary).render();
    assert_ne!(
        artifact,
        golden("run_twolf.json"),
        "squash-enabled run must not reproduce the default-config artifact"
    );
    assert!(run.result.squashes > 0, "perturbation must actually engage");
    let golden_text = golden("run_twolf.json");
    let cycles_line = format!("\"cycles\": {},", run.result.cycles);
    assert!(
        !golden_text.contains(&cycles_line),
        "perturbed run must change measured results, not just the config stanza"
    );
}

/// Rebuilds exactly what `ser-repro ecc-grid cc gzip --json ...` writes:
/// measured read probabilities and IPCs for the two workloads, then the
/// analytic node × environment × scheme residual grid.
fn ecc_grid_rows(probes: u32, seed: u64) -> Vec<(String, f64, f64, u32)> {
    use ses_core::{read_probability, Campaign, CampaignConfig, DetectionModel};
    ["cc", "gzip"]
        .iter()
        .map(|name| {
            let spec = spec_by_name(name).expect("workload in suite");
            let campaign = Campaign::prepare(
                &spec,
                CampaignConfig {
                    injections: 0,
                    seed,
                    detection: DetectionModel::None,
                    ..CampaignConfig::default()
                },
            )
            .expect("campaign prepares");
            let p_read = read_probability(&campaign, probes, seed);
            (name.to_string(), campaign.baseline_ipc(), p_read, probes)
        })
        .collect()
}

/// Satellite: the FIT/MTTF grid over (technology node × environment ×
/// ECC scheme) for two workloads is pinned byte-for-byte. Any drift in
/// the code constructions, the residual enumeration, the read-probability
/// probe, or the FIT → MTTF conversion shows up here.
#[test]
fn ecc_grid_artifact_matches_golden() {
    use ses_core::telemetry::ecc_grid_artifact;
    use ses_core::PatternDistribution;
    let rows = ecc_grid_rows(400, 0xECC);
    let artifact =
        ecc_grid_artifact(&PatternDistribution::default(), &rows, TelemetryLevel::Summary)
            .render();
    assert_eq!(
        artifact,
        golden("campaign_ecc.json"),
        "ECC grid drifted from tests/golden/campaign_ecc.json; if intentional, \
         regenerate with \
         `cargo run --release -- ecc-grid cc gzip --json tests/golden/campaign_ecc.json`"
    );
}

/// The grid comparison must be falsifiable in its *results*, not just its
/// config stanza: perturbing the probe budget moves the measured read
/// probability, and perturbing the strike distribution moves the analytic
/// residual rates — both must change the pinned bytes.
#[test]
fn perturbed_ecc_grid_is_caught() {
    use ses_core::telemetry::ecc_grid_artifact;
    use ses_core::PatternDistribution;
    let golden_text = golden("campaign_ecc.json");

    let fewer_probes = ecc_grid_rows(100, 0xECC);
    let perturbed =
        ecc_grid_artifact(&PatternDistribution::default(), &fewer_probes, TelemetryLevel::Summary)
            .render();
    assert_ne!(
        perturbed, golden_text,
        "a different probe budget must move the measured read probability"
    );

    let rows = ecc_grid_rows(400, 0xECC);
    let single_only =
        ecc_grid_artifact(&PatternDistribution::single_only(), &rows, TelemetryLevel::Summary)
            .render();
    assert_ne!(
        single_only, golden_text,
        "a single-bit-only distribution must move the analytic residual rates"
    );
    // The multi-bit distribution is what gives SEC-DED a non-zero silent
    // residual; prove the golden actually encodes that physics.
    assert!(
        golden_text.contains("\"read_probability\": 0.655,"),
        "golden must pin the measured cc read probability"
    );
}

/// Rebuilds exactly what `ser-repro campaign crafty --detect-latency
/// fixed:N --recovery idempotent --injections 150 --json ...` writes.
fn crafty_recovery_artifact(seed: u64, latency: u64) -> String {
    use ses_core::telemetry::campaign_artifact;
    use ses_core::{
        Campaign, CampaignConfig, DetectionModel, LatencyDistribution, RecoveryPolicy,
    };
    let spec = spec_by_name("crafty").expect("crafty in suite");
    let config = CampaignConfig {
        injections: 150,
        seed,
        detection: DetectionModel::Parity { tracking: None },
        detect_latency: Some(LatencyDistribution::Fixed(latency)),
        recovery: RecoveryPolicy::Idempotent,
        ..CampaignConfig::default()
    };
    let iq = config.pipeline.iq_entries;
    let detailed = Campaign::prepare(&spec, config).expect("campaign prepares").run_detailed();
    campaign_artifact("crafty", &detailed, iq, TelemetryLevel::Summary).render()
}

/// Satellite: the recovery campaign artifact — outcome counts with the
/// `recovered` class, the recovery stanza (region census, recovered vs
/// machine-check-fallback split, re-execution charge) — is pinned
/// byte-for-byte under an 8-cycle fixed detection latency.
#[test]
fn recovery_artifact_matches_golden() {
    assert_eq!(
        crafty_recovery_artifact(2026, 8),
        golden("campaign_recovery.json"),
        "recovery artifact drifted from tests/golden/campaign_recovery.json; \
         if intentional, regenerate with \
         `cargo run --release -- campaign crafty --detect-latency fixed:8 \
         --recovery idempotent --injections 150 \
         --json tests/golden/campaign_recovery.json`"
    );
}

/// The pin must be falsifiable in both knobs that define it: a different
/// fault sequence (seed) and a different detection latency must each move
/// the pinned bytes, and the golden must actually carry the stanza.
#[test]
fn perturbed_recovery_artifact_is_caught() {
    let golden_text = golden("campaign_recovery.json");
    assert!(golden_text.contains("\"recovery\""), "golden must carry the recovery stanza");
    assert_ne!(
        crafty_recovery_artifact(2027, 8),
        golden_text,
        "a different fault sequence must move the recovery artifact"
    );
    assert_ne!(
        crafty_recovery_artifact(2026, 0),
        golden_text,
        "zero latency recovers every detection and must move the artifact"
    );
}
