//! Pi-bit conservation through the cache hierarchy.
//!
//! The paper's "pi on memory" configuration (§4.3) rides the poison bit
//! on cache blocks: a store commits its pi bit into the L0 block, and
//! every dirty writeback carries the bit one level outward until it
//! reaches memory. These tests model that flow with one [`PiDirectory`]
//! per level chained on the `dirty_victim` eviction notifications of the
//! raw [`Cache`] API, and check the property the whole scheme rests on:
//! **a poison mark is never silently lost** — and, via [`Hierarchy`],
//! the inclusive-fill invariant the timing model assumes.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_mem::{
    AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, Level, LookupOutcome, PiDirectory,
};
use ses_types::Addr;

const BLOCK: u64 = 64;

/// Tiny caches so random streams evict constantly: 4-set direct-mapped
/// L0, then 2-way levels growing by 4x.
fn tiny(size: u64, assoc: usize) -> CacheConfig {
    CacheConfig {
        size_bytes: size,
        block_bytes: BLOCK,
        associativity: assoc,
        hit_latency: 1,
    }
}

/// A three-level cache stack with a pi directory per level plus a memory
/// escape set, propagating marks on dirty writebacks exactly as the
/// paper's block-pi bit would travel.
struct PiStack {
    levels: Vec<(Cache, PiDirectory)>,
    memory: HashSet<u64>,
}

impl PiStack {
    fn new() -> Self {
        let configs = [tiny(256, 1), tiny(1024, 2), tiny(4096, 2)];
        PiStack {
            levels: configs
                .into_iter()
                .map(|c| (Cache::new(c).unwrap(), PiDirectory::new(BLOCK)))
                .collect(),
            memory: HashSet::new(),
        }
    }

    /// Presents an access level by level (as `Hierarchy::access` does),
    /// carrying pi marks outward with every dirty victim.
    fn access(&mut self, addr: Addr, is_write: bool, poison: bool) {
        let mut evictions: Vec<(usize, Addr)> = Vec::new();
        for (i, (cache, _)) in self.levels.iter_mut().enumerate() {
            match cache.access(addr, is_write) {
                LookupOutcome::Hit => break,
                LookupOutcome::Miss { dirty_victim } => {
                    if let Some(v) = dirty_victim {
                        evictions.push((i, v));
                    }
                }
            }
        }
        // Writebacks: a dirty victim leaving level i deposits its pi mark
        // one level outward (or in memory, from the last level).
        for (i, victim) in evictions {
            if self.levels[i].1.is_marked(victim) {
                self.levels[i].1.clear(victim);
                match self.levels.get_mut(i + 1) {
                    Some((_, outer)) => outer.mark(victim),
                    None => {
                        self.memory.insert(victim.block_base(BLOCK).as_u64());
                    }
                }
            }
        }
        if is_write && poison {
            self.levels[0].1.mark(addr);
        }
    }

    /// Whether the pi mark for `addr` survives anywhere in the stack.
    fn marked_somewhere(&self, addr: Addr) -> bool {
        self.levels.iter().any(|(_, d)| d.is_marked(addr))
            || self.memory.contains(&addr.block_base(BLOCK).as_u64())
    }
}

#[test]
fn pi_travels_outward_on_dirty_writebacks() {
    let mut stack = PiStack::new();
    let poisoned = Addr::new(0x1_0000);
    stack.access(poisoned, true, true);
    assert!(stack.levels[0].1.is_marked(poisoned), "mark starts in L0");

    // Walk conflicting blocks through the same L0 set (4 sets of 64 B,
    // direct-mapped: stride 256 B aliases) until the poisoned block is
    // written back.
    let mut conflict = 0;
    while stack.levels[0].1.is_marked(poisoned) {
        conflict += 1;
        assert!(conflict < 64, "poisoned block never left L0");
        stack.access(Addr::new(0x1_0000 + conflict * 256), true, false);
    }
    assert!(
        stack.levels[1].1.is_marked(poisoned),
        "writeback must deposit the mark in L1"
    );
    assert!(stack.marked_somewhere(poisoned));

    // Keep thrashing until the mark escapes L1, then L2, then to memory.
    let mut wave = 0;
    while !stack.memory.contains(&poisoned.block_base(BLOCK).as_u64()) {
        wave += 1;
        assert!(wave < 4096, "mark must eventually reach memory");
        stack.access(Addr::new(0x1_0000 + wave * 256), true, false);
    }
    assert!(
        !stack.levels.iter().any(|(_, d)| d.is_marked(poisoned)),
        "mark left the caches when it reached memory"
    );
}

#[test]
fn random_streams_never_lose_a_poison_mark() {
    let mut rng = StdRng::seed_from_u64(0x9155);
    let mut stack = PiStack::new();
    let mut poisoned: HashSet<u64> = HashSet::new();

    for step in 0..20_000u64 {
        let addr = Addr::new(u64::from(rng.gen_range(0..512u32)) * 8);
        let is_write = rng.gen_range(0..3u32) == 0;
        let poison = is_write && rng.gen_range(0..8u32) == 0;
        stack.access(addr, is_write, poison);
        if poison {
            poisoned.insert(addr.block_base(BLOCK).as_u64());
        }
        if step % 500 == 0 {
            for &p in &poisoned {
                assert!(
                    stack.marked_somewhere(Addr::new(p)),
                    "step {step}: poison mark for {p:#x} vanished"
                );
            }
        }
    }
    assert!(!poisoned.is_empty(), "stream must have poisoned something");
    for &p in &poisoned {
        assert!(stack.marked_somewhere(Addr::new(p)));
    }
    // Marked population is bounded by what we poisoned: no spurious marks.
    let cache_marks: usize = stack.levels.iter().map(|(_, d)| d.marked_count()).sum();
    assert!(cache_marks + stack.memory.len() <= poisoned.len() * 2);
}

#[test]
fn hierarchy_fills_are_inclusive_under_random_streams() {
    let mut rng = StdRng::seed_from_u64(0x17C);
    let mut h = Hierarchy::new(HierarchyConfig::default());
    for _ in 0..5_000u64 {
        let addr = Addr::new(u64::from(rng.gen::<u32>()) % (1 << 20));
        let kind = match rng.gen_range(0..3u32) {
            0 => AccessKind::Store,
            1 => AccessKind::Prefetch,
            _ => AccessKind::Load,
        };
        let r = h.access(addr, kind);
        // Inclusive fill: after any access the block is resident at every
        // level on the refill path.
        for level in [Level::L0, Level::L1, Level::L2] {
            assert!(
                h.probe(addr, level),
                "{addr} not resident at {level:?} right after access"
            );
        }
        assert!(h.probe(addr, Level::Memory), "memory backs everything");
        // The reported hit level is consistent with missed_in().
        for level in [Level::L0, Level::L1, Level::L2] {
            assert_eq!(r.missed_in(level), r.hit_level > level);
        }
    }
    // Stats are coherent: every L1 access is an L0 miss, and so on down.
    let l0 = h.stats(Level::L0);
    let l1 = h.stats(Level::L1);
    let l2 = h.stats(Level::L2);
    assert_eq!(l0.hits + l0.misses, 5_000);
    assert_eq!(l1.hits + l1.misses, l0.misses);
    assert_eq!(l2.hits + l2.misses, l1.misses);
}
