//! Fault outcome taxonomy (the paper's Figure 1, measured).

use std::fmt;

/// Final classification of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The faulty bit was never consumed: idle slot, Ex-ACE state, or the
    /// entry was discarded (wrong-path flush / squash) before its read —
    /// outcomes 1–3 of Figure 1.
    Benign,
    /// No detection, and the program output changed (or the machine
    /// crashed on an undecodable word): silent data corruption, outcome 4.
    Sdc,
    /// A machine check fired but the output would have been unaffected:
    /// outcome 5.
    FalseDue,
    /// A machine check fired and the output would indeed have been
    /// affected: outcome 6.
    TrueDue,
    /// π-bit tracking suppressed the error and the output was indeed
    /// unaffected: a false DUE successfully avoided.
    SuppressedSafe,
    /// π-bit tracking suppressed the error but the output *would* have
    /// changed — an unsound suppression (e.g. a strike on the qualifying
    /// predicate of a falsely predicated instruction). The paper does not
    /// quantify this corner; this implementation measures it honestly.
    SuppressedSdc,
    /// The faulty run exceeded its instruction budget (a corrupted branch
    /// spun forever): treated as a visible failure.
    Hang,
    /// A machine check fired, but the deferred detection signal still
    /// landed inside the idempotent region containing the fault, so the
    /// would-be DUE was converted into a re-execution of that region —
    /// charged as IPC loss, not as an error event.
    Recovered,
}

impl Outcome {
    /// All outcomes, in reporting order. `Recovered` sits last so legacy
    /// (recovery-off) artifacts keep their historical key order.
    pub const ALL: [Outcome; 8] = [
        Outcome::Benign,
        Outcome::Sdc,
        Outcome::FalseDue,
        Outcome::TrueDue,
        Outcome::SuppressedSafe,
        Outcome::SuppressedSdc,
        Outcome::Hang,
        Outcome::Recovered,
    ];

    /// Whether this outcome represents a user-visible failure event
    /// (SDC-like or DUE-like).
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            Outcome::Sdc | Outcome::FalseDue | Outcome::TrueDue | Outcome::SuppressedSdc | Outcome::Hang
        )
    }

    /// Whether a machine check was raised.
    pub fn is_due(self) -> bool {
        matches!(self, Outcome::FalseDue | Outcome::TrueDue)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::Sdc => "SDC",
            Outcome::FalseDue => "false DUE",
            Outcome::TrueDue => "true DUE",
            Outcome::SuppressedSafe => "suppressed (safe)",
            Outcome::SuppressedSdc => "suppressed (SDC!)",
            Outcome::Hang => "hang",
            Outcome::Recovered => "recovered",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for o in Outcome::ALL {
            assert!(!o.label().is_empty());
            assert!(seen.insert(o.label()));
        }
    }

    #[test]
    fn classification_predicates() {
        assert!(Outcome::Sdc.is_failure());
        assert!(!Outcome::Benign.is_failure());
        assert!(!Outcome::SuppressedSafe.is_failure());
        assert!(Outcome::SuppressedSdc.is_failure());
        assert!(Outcome::FalseDue.is_due());
        assert!(Outcome::TrueDue.is_due());
        assert!(!Outcome::Sdc.is_due());
        assert!(
            !Outcome::Recovered.is_failure() && !Outcome::Recovered.is_due(),
            "a recovered fault costs IPC, not correctness"
        );
    }
}
