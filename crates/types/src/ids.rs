//! Identity newtypes: simulation time, dynamic instruction sequence numbers,
//! architectural register/predicate names and memory addresses.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in processor clock cycles.
///
/// Cycles are totally ordered and support saturating distance queries, which
/// the AVF lifetime accounting uses to measure bit residency intervals.
///
/// # Example
///
/// ```
/// use ses_types::Cycle;
/// let start = Cycle::new(10);
/// let end = start + 25;
/// assert_eq!(end.since(start), 25);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle (reset).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle at absolute time `t`.
    pub const fn new(t: u64) -> Self {
        Cycle(t)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Number of cycles elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The immediately following cycle.
    pub const fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// Dynamic instruction sequence number.
///
/// Every instruction fetched by the timing model — correct-path or
/// wrong-path — receives a unique, monotonically increasing `SeqNo`. Program
/// order among correct-path instructions coincides with `SeqNo` order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNo(u64);

impl SeqNo {
    /// The first sequence number handed out.
    pub const FIRST: SeqNo = SeqNo(0);

    /// Creates a sequence number from a raw index.
    pub const fn new(n: u64) -> Self {
        SeqNo(n)
    }

    /// Returns the raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next sequence number, advancing `self` in place.
    pub fn bump(&mut self) -> SeqNo {
        let cur = *self;
        self.0 += 1;
        cur
    }

    /// Whether `self` is younger (later in fetch order) than `other`.
    pub fn is_younger_than(self, other: SeqNo) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An architectural general-purpose register name, `r0`–`r63`.
///
/// `r0` is hardwired to zero, following the SES-64 ISA convention (itself
/// modelled on IA-64's `r0`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural general-purpose registers.
    pub const COUNT: usize = 64;
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Reg::COUNT`.
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < Self::COUNT,
            "register index {n} out of range"
        );
        Reg(n)
    }

    /// Creates a register name, returning `None` when out of range.
    pub fn try_new(n: u8) -> Option<Self> {
        ((n as usize) < Self::COUNT).then_some(Reg(n))
    }

    /// Raw register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all register names in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An architectural predicate register name, `p0`–`p7`.
///
/// `p0` is hardwired to *true*; an instruction guarded by `p0` always
/// executes. Instructions guarded by a false predicate are *falsely
/// predicated* and are one of the paper's sources of false DUE events.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pred(u8);

impl Pred {
    /// Number of architectural predicate registers.
    pub const COUNT: usize = 8;
    /// The always-true predicate.
    pub const TRUE: Pred = Pred(0);

    /// Creates a predicate name.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Pred::COUNT`.
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < Self::COUNT,
            "predicate index {n} out of range"
        );
        Pred(n)
    }

    /// Creates a predicate name, returning `None` when out of range.
    pub fn try_new(n: u8) -> Option<Self> {
        ((n as usize) < Self::COUNT).then_some(Pred(n))
    }

    /// Raw predicate index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-true predicate.
    pub const fn is_always_true(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all predicate names in index order.
    pub fn all() -> impl Iterator<Item = Pred> {
        (0..Self::COUNT as u8).map(Pred)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A byte address in the simulated flat address space.
///
/// Code and data share one 64-bit space; the cache hierarchy operates on
/// block-aligned `Addr` values.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Creates an address.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The address rounded down to a multiple of `block` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn block_base(self, block: u64) -> Addr {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        Addr(self.0 & !(block - 1))
    }

    /// Byte offset of this address within its `block`-byte block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn block_offset(self, block: u64) -> u64 {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        self.0 & (block - 1)
    }

    /// The address `bytes` later.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(5);
        assert_eq!((c + 7).as_u64(), 12);
        assert_eq!((c + 7).since(c), 7);
        assert_eq!(c.since(c + 7), 0, "since saturates");
        assert_eq!(c.next().as_u64(), 6);
        let mut m = Cycle::ZERO;
        m += 3;
        assert_eq!(m, Cycle::new(3));
        assert_eq!(Cycle::new(9) - Cycle::new(4), 5);
    }

    #[test]
    fn cycle_display() {
        assert_eq!(Cycle::new(42).to_string(), "cycle 42");
    }

    #[test]
    fn seqno_ordering_and_bump() {
        let mut s = SeqNo::FIRST;
        let a = s.bump();
        let b = s.bump();
        assert!(b.is_younger_than(a));
        assert!(!a.is_younger_than(b));
        assert!(!a.is_younger_than(a));
        assert_eq!(a.as_u64(), 0);
        assert_eq!(b.as_u64(), 1);
        assert_eq!(b.to_string(), "#1");
    }

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(63).index(), 63);
        assert!(Reg::try_new(64).is_none());
        assert!(Reg::try_new(63).is_some());
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::all().count(), Reg::COUNT);
        assert_eq!(Reg::new(7).to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(64);
    }

    #[test]
    fn pred_bounds() {
        assert!(Pred::TRUE.is_always_true());
        assert!(!Pred::new(3).is_always_true());
        assert!(Pred::try_new(8).is_none());
        assert_eq!(Pred::all().count(), Pred::COUNT);
        assert_eq!(Pred::new(2).to_string(), "p2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pred_new_panics_out_of_range() {
        let _ = Pred::new(8);
    }

    #[test]
    fn addr_block_math() {
        let a = Addr::new(0x1234);
        assert_eq!(a.block_base(64).as_u64(), 0x1200);
        assert_eq!(a.block_offset(64), 0x34);
        assert_eq!(a.offset(0x10).as_u64(), 0x1244);
        assert_eq!((a + 4).as_u64(), 0x1238);
        assert_eq!(format!("{a}"), "0x1234");
        assert_eq!(format!("{a:x}"), "1234");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_block_base_rejects_non_pow2() {
        let _ = Addr::new(10).block_base(48);
    }
}
