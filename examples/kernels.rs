//! AVF across real program shapes: run the hand-written kernel library
//! (Fibonacci, pointer chase, streaming copy, sieve, bitcount) through the
//! full stack and compare their vulnerability profiles.
//!
//! Run with `cargo run --release --example kernels`.

use ses_core::{AvfAnalysis, DeadMap, Pipeline, PipelineConfig, Table};
use ses_workloads::kernels;

fn main() -> Result<(), ses_core::SesError> {
    let mut t = Table::new(vec![
        "kernel",
        "dyn instrs",
        "IPC",
        "SDC AVF",
        "DUE AVF",
        "dead %",
        "output ok",
    ]);
    for k in kernels() {
        let trace = ses_arch::Emulator::new(&k.program).run(5_000_000)?;
        let ok = trace.output() == k.expected_output.as_slice();
        let dead = DeadMap::analyze(&trace);
        let result = Pipeline::new(PipelineConfig::default()).run(&k.program, &trace);
        let avf = AvfAnalysis::new(&result, &dead);
        t.row(vec![
            k.name.into(),
            trace.len().to_string(),
            format!("{:.2}", result.ipc().value()),
            avf.sdc_avf().to_string(),
            avf.due_avf().to_string(),
            format!("{:.1}%", dead.dead_fraction() * 100.0),
            if ok { "yes" } else { "NO" }.into(),
        ]);
        assert!(ok, "{} output mismatch", k.name);
    }
    println!("{t}");
    println!(
        "Tight dependence chains (fibonacci, bitcount) keep the queue full of\n\
         live state -- high AVF; the pointer chase stalls on loads with the\n\
         queue exposed behind them; kernels with almost no dead or neutral\n\
         instructions have nearly equal SDC and DUE AVFs (little false DUE\n\
         for the pi machinery to remove)."
    );
    Ok(())
}
