//! Build a custom workload and a hand-written SES-64 program, and push
//! both through the full pipeline — the "bring your own code" path a
//! downstream user of the library would take.
//!
//! Run with `cargo run --release --example custom_workload`.

use ses_core::{run_workload, Category, PipelineConfig, WorkloadSpec};
use ses_isa::{Instruction, ProgramBuilder};
use ses_types::{Pred, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: a custom spec for the synthesiser -----------------------
    // A pointer-chasing-flavoured workload: large working set, sparse
    // strides, frequent far misses.
    let mut spec = WorkloadSpec::quick("my-pointer-chaser", 0xC0FFEE);
    spec.category = Category::Integer;
    spec.target_dynamic = 80_000;
    spec.working_set_bytes = 8 * 1024 * 1024;
    spec.stride_bytes = 1024;
    spec.far_gate_mask = 0; // a far miss every iteration
    spec.mix.load_far = 2;
    spec.validate().map_err(ses_types::ConfigError::new)?;

    let run = run_workload(&spec, &PipelineConfig::default())?;
    let s = run.summary();
    println!(
        "{}: IPC {:.2}, SDC AVF {}, DUE AVF {}, dead fraction {:.1}%",
        spec.name,
        s.ipc.value(),
        s.sdc_avf,
        s.due_avf,
        run.dead.dead_fraction() * 100.0
    );

    // --- Part 2: a hand-written program ----------------------------------
    // Sum the first 1000 integers with a deliberately dead shadow
    // computation, then print the result.
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    b.push(Instruction::movi(r(1), 1000)); // counter
    b.push(Instruction::movi(r(2), 0)); // sum
    let top = b.new_label();
    b.bind(top);
    b.push(Instruction::add(r(2), r(2), r(1)));
    b.push(Instruction::mul(r(20), r(1), r(1))); // dead: r20 never read
    b.push(Instruction::addi(r(1), r(1), -1));
    b.push(Instruction::cmp_lt(Pred::new(1), Reg::ZERO, r(1)));
    b.branch(Pred::new(1), top);
    b.push(Instruction::out(r(2)));
    b.push(Instruction::halt());
    let program = b.build()?;

    let trace = ses_arch::Emulator::new(&program).run(100_000)?;
    assert_eq!(trace.output(), &[500_500], "Gauss agrees");
    let dead = ses_core::DeadMap::analyze(&trace);
    let result = ses_core::Pipeline::new(PipelineConfig::default()).run(&program, &trace);
    let avf = ses_core::AvfAnalysis::new(&result, &dead);
    println!(
        "hand-written loop: {} instructions, IPC {:.2}, SDC AVF {}, {:.0}% dynamically dead",
        trace.len(),
        result.ipc().value(),
        avf.sdc_avf(),
        dead.dead_fraction() * 100.0
    );
    println!(
        "the dead shadow multiply is {:.1}% of instructions and every one of its\n\
         non-destination bits is un-ACE: cheap false-DUE fodder a pi bit suppresses.",
        dead.dead_fraction() * 100.0
    );
    Ok(())
}
