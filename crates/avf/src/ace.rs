//! Per-bit ACE classification of instruction-queue residency intervals.
//!
//! Every (bit × cycle) of queue state falls into exactly one bucket:
//!
//! * **idle** — the slot held no valid entry;
//! * **unread** — the entry was valid but never read after this point
//!   (never issued, or already past its last read: the Ex-ACE window);
//!   strikes here are invisible to both program and parity;
//! * **exposed** — the entry was valid and would still be read; strikes
//!   here are *detected* by parity (DUE) and split into:
//!   * **ACE** bits — a strike changes the program's outcome (true DUE,
//!     or SDC without protection);
//!   * **un-ACE** bits — a strike is harmless but still detected (false
//!     DUE), subdivided by cause: wrong path, false predication, squash
//!     discard, neutral instruction (non-opcode bits), and the four
//!     dynamically-dead categories (non-destination-specifier bits).
//!
//! ACE rules follow the paper exactly: neutral instructions keep only
//! their opcode bits ACE (§4.1); dynamically dead instructions keep only
//! their destination-specifier bits ACE (§4.1); wrong-path, falsely
//! predicated and squash-discarded instructions are wholly un-ACE; live
//! committed instructions are wholly ACE (the paper's conservative
//! granularity).

use ses_isa::{bits_of_kind, BitKind, BIT_COUNT};
use ses_pipeline::{Occupant, Residency, ResidencyEnd};

use crate::dead::{DeadKind, DeadMap};

/// Why exposed bit-cycles are un-ACE (the false-DUE causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FalseDueCause {
    /// Wrong-path instruction.
    WrongPath,
    /// Falsely predicated instruction.
    FalselyPredicated,
    /// Entry discarded by the squash action and refetched cleanly.
    Squashed,
    /// Non-opcode bits of a neutral instruction.
    Neutral,
    /// Non-destination bits of an FDD-via-register instruction.
    DeadFddReg,
    /// Non-destination bits of a TDD-via-register instruction.
    DeadTddReg,
    /// Non-destination bits of an FDD-via-memory instruction.
    DeadFddMem,
    /// Non-destination bits of a TDD-via-memory instruction.
    DeadTddMem,
}

impl FalseDueCause {
    /// All causes.
    pub const ALL: [FalseDueCause; 8] = [
        FalseDueCause::WrongPath,
        FalseDueCause::FalselyPredicated,
        FalseDueCause::Squashed,
        FalseDueCause::Neutral,
        FalseDueCause::DeadFddReg,
        FalseDueCause::DeadTddReg,
        FalseDueCause::DeadFddMem,
        FalseDueCause::DeadTddMem,
    ];
}

/// Bit-cycle contributions of one residency interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyBits {
    /// ACE bit-cycles (exposed window).
    pub ace: u64,
    /// ACE bit-cycles attributed to each instruction-word field kind
    /// (indexed by [`BitKind::ALL`] order): which *bits* of the queue
    /// entry carry the vulnerability.
    pub ace_by_kind: [u64; 7],
    /// Un-ACE exposed bit-cycles, by cause (indexed by
    /// [`FalseDueCause::ALL`] order).
    pub unace: [u64; 8],
    /// Valid-but-unread bit-cycles (Ex-ACE window plus never-read
    /// residencies).
    pub unread: u64,
}

impl ResidencyBits {
    /// Total un-ACE exposed bit-cycles.
    pub fn unace_total(&self) -> u64 {
        self.unace.iter().sum()
    }

    /// Total valid bit-cycles accounted.
    pub fn valid_total(&self) -> u64 {
        self.ace + self.unace_total() + self.unread
    }

    /// Contribution for one cause.
    pub fn cause(&self, cause: FalseDueCause) -> u64 {
        let idx = FalseDueCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in table");
        self.unace[idx]
    }

    fn add_cause(&mut self, cause: FalseDueCause, amount: u64) {
        let idx = FalseDueCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in table");
        self.unace[idx] += amount;
    }
}

fn dest_spec_bits() -> u64 {
    (bits_of_kind(BitKind::DestSpec).count() + bits_of_kind(BitKind::PredDestSpec).count()) as u64
}

fn opcode_bits() -> u64 {
    bits_of_kind(BitKind::Opcode).count() as u64
}

fn kind_index(kind: BitKind) -> usize {
    BitKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in table")
}

fn kind_width(kind: BitKind) -> u64 {
    bits_of_kind(kind).count() as u64
}

/// Classifies one residency into bit-cycle buckets.
pub fn classify(res: &Residency, dead: &DeadMap) -> ResidencyBits {
    let bits = BIT_COUNT as u64;
    let exposed = res.exposed_cycles();
    let unread_cycles = res.valid_cycles() - exposed;
    let mut out = ResidencyBits {
        unread: unread_cycles * bits,
        ..Default::default()
    };
    if exposed == 0 {
        return out;
    }
    let exposed_bits = exposed * bits;

    match res.occupant {
        Occupant::WrongPath => out.add_cause(FalseDueCause::WrongPath, exposed_bits),
        Occupant::CorrectPath { trace_idx } => {
            if res.end == ResidencyEnd::Squashed {
                out.add_cause(FalseDueCause::Squashed, exposed_bits);
            } else if res.falsely_predicated {
                out.add_cause(FalseDueCause::FalselyPredicated, exposed_bits);
            } else if res.instr.is_neutral() {
                // Only the opcode bits can change the outcome (§4.1).
                let ace = opcode_bits() * exposed;
                out.ace += ace;
                out.ace_by_kind[kind_index(BitKind::Opcode)] += ace;
                out.add_cause(FalseDueCause::Neutral, exposed_bits - ace);
            } else {
                let kind = dead.get(trace_idx).kind;
                match kind {
                    DeadKind::Live => {
                        out.ace += exposed_bits;
                        for k in BitKind::ALL {
                            out.ace_by_kind[kind_index(k)] += kind_width(k) * exposed;
                        }
                    }
                    dead_kind => {
                        // Only the destination specifiers stay ACE (§4.1).
                        let ace = dest_spec_bits() * exposed;
                        out.ace += ace;
                        out.ace_by_kind[kind_index(BitKind::DestSpec)] +=
                            kind_width(BitKind::DestSpec) * exposed;
                        out.ace_by_kind[kind_index(BitKind::PredDestSpec)] +=
                            kind_width(BitKind::PredDestSpec) * exposed;
                        let cause = match dead_kind {
                            DeadKind::FddReg => FalseDueCause::DeadFddReg,
                            DeadKind::TddReg => FalseDueCause::DeadTddReg,
                            DeadKind::FddMem => FalseDueCause::DeadFddMem,
                            DeadKind::TddMem => FalseDueCause::DeadTddMem,
                            DeadKind::Live => unreachable!(),
                        };
                        out.add_cause(cause, exposed_bits - ace);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_arch::{Emulator, ExecutionTrace};
    use ses_isa::{Instruction, Program};
    use ses_pipeline::{Occupant, ResidencyEnd};
    use ses_types::{Cycle, Reg, SeqNo};

    fn residency(
        occupant: Occupant,
        instr: Instruction,
        read: Option<u64>,
        dealloc: u64,
        end: ResidencyEnd,
        fp: bool,
    ) -> Residency {
        Residency {
            slot: 0,
            seq: SeqNo::new(0),
            occupant,
            instr,
            alloc: Cycle::new(0),
            last_read: read.map(Cycle::new),
            dealloc: Cycle::new(dealloc),
            end,
            falsely_predicated: fp,
        }
    }

    fn trace_with(code: Vec<Instruction>) -> (ExecutionTrace, DeadMap) {
        let p = Program::new(code);
        let t = Emulator::new(&p).run(1000).unwrap();
        let d = DeadMap::analyze(&t);
        (t, d)
    }

    #[test]
    fn live_instruction_fully_ace_while_exposed() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5),
            Instruction::out(Reg::new(1)),
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(10),
            15,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 64);
        assert_eq!(b.unace_total(), 0);
        assert_eq!(b.unread, 5 * 64, "post-read Ex-ACE window");
        assert_eq!(b.valid_total(), 15 * 64);
    }

    #[test]
    fn wrong_path_fully_unace() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::WrongPath,
            Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)),
            Some(4),
            8,
            ResidencyEnd::FlushedWrongPath,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 0);
        assert_eq!(b.cause(FalseDueCause::WrongPath), 4 * 64);
        assert_eq!(b.unread, 4 * 64);
    }

    #[test]
    fn never_read_contributes_nothing_exposed() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::WrongPath,
            Instruction::nop(),
            None,
            20,
            ResidencyEnd::FlushedWrongPath,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace + b.unace_total(), 0);
        assert_eq!(b.unread, 20 * 64);
    }

    #[test]
    fn neutral_keeps_opcode_bits_ace() {
        let (_, dead) = trace_with(vec![Instruction::nop(), Instruction::halt()]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::nop(),
            Some(10),
            10,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 6, "6 opcode bits stay ACE");
        assert_eq!(b.cause(FalseDueCause::Neutral), 10 * 58);
    }

    #[test]
    fn dead_keeps_dest_spec_bits_ace() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5), // FDD: never read
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(10),
            12,
            ResidencyEnd::Retired,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.ace, 10 * 9, "6 dest + 3 pdest specifier bits stay ACE");
        assert_eq!(b.cause(FalseDueCause::DeadFddReg), 10 * 55);
    }

    #[test]
    fn falsely_predicated_fully_unace() {
        let (_, dead) = trace_with(vec![Instruction::halt()]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::add(Reg::new(1), Reg::new(2), Reg::new(3)),
            Some(3),
            5,
            ResidencyEnd::Retired,
            true,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.cause(FalseDueCause::FalselyPredicated), 3 * 64);
        assert_eq!(b.ace, 0);
    }

    #[test]
    fn squashed_takes_precedence() {
        let (_, dead) = trace_with(vec![
            Instruction::movi(Reg::new(1), 5),
            Instruction::out(Reg::new(1)),
            Instruction::halt(),
        ]);
        let res = residency(
            Occupant::CorrectPath { trace_idx: 0 },
            Instruction::movi(Reg::new(1), 5),
            Some(4),
            6,
            ResidencyEnd::Squashed,
            false,
        );
        let b = classify(&res, &dead);
        assert_eq!(b.cause(FalseDueCause::Squashed), 4 * 64);
        assert_eq!(b.ace, 0, "squashed content never commits");
    }
}
