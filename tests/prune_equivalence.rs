//! Convergence pruning is a pure optimisation: every campaign run with
//! `prune: true` must produce exactly the verdicts, recovery accounting,
//! and telemetry bytes of the full-replay executor it replaces.
//!
//! The pruned executor already cross-checks every injection against a
//! full replay in debug builds; these tests assert the equivalence at the
//! campaign level — across detection models, recovery campaigns, ECC
//! pattern campaigns, worker-thread counts, and checkpoint geometries.

use ses_core::telemetry::campaign_artifact;
use ses_core::{
    run_ecc_campaign, Campaign, CampaignConfig, DetectionModel, EccCampaignConfig,
    LatencyDistribution, PiScope, RecoveryPolicy, TelemetryLevel, TrackingConfig, WorkloadSpec,
};

fn tracking() -> TrackingConfig {
    TrackingConfig {
        scope: PiScope::StoreCommit,
        anti_pi: true,
        pet_entries: None,
        mem_granule: 8,
    }
}

/// Fuzzed corpus: per-fault verdict identity between the pruned and the
/// full-replay executor across workloads, seeds, and detection models
/// (no detection, immediate parity, π-bit tracking, double-bit strikes).
#[test]
fn fuzzed_corpus_verdicts_match_full_replay() {
    let models = [
        DetectionModel::None,
        DetectionModel::Parity { tracking: None },
        DetectionModel::Parity {
            tracking: Some(tracking()),
        },
    ];
    let mut checked = 0u32;
    for (case, (wl_seed, seed, double_bit)) in
        [(3u64, 7u64, false), (17, 101, false), (29, 5, true)].iter().enumerate()
    {
        let spec = WorkloadSpec::quick("prune-fuzz", *wl_seed);
        for (m, detection) in models.iter().enumerate() {
            let base = CampaignConfig {
                injections: 40,
                seed: *seed ^ (m as u64) << 8,
                detection: detection.clone(),
                double_bit: *double_bit,
                threads: 2,
                ..CampaignConfig::default()
            };
            let full = Campaign::prepare(&spec, base.clone()).unwrap().run_detailed();
            let pruned = Campaign::prepare(
                &spec,
                CampaignConfig {
                    prune: true,
                    ..base
                },
            )
            .unwrap()
            .run_detailed();
            assert_eq!(
                full.samples(),
                pruned.samples(),
                "verdicts diverged (case {case}, model {m})"
            );
            assert!(full.prune().is_none(), "prune-off runs must not grow a prune report");
            let report = pruned.prune().expect("prune-on runs report pruning");
            assert_eq!(report.injections, 40);
            checked += report.injections;
        }
    }
    assert_eq!(checked, 9 * 40, "every corpus case must have run");
}

/// Recovery campaigns (detection latency > 0, idempotent re-execution)
/// keep both the per-fault samples and the whole recovery stanza when
/// pruning is switched on.
#[test]
fn recovery_campaign_matches_with_pruning() {
    let spec = WorkloadSpec::quick("prune-recovery", 23);
    for latency in [
        LatencyDistribution::Fixed(6),
        LatencyDistribution::Geometric { mean: 12.0 },
    ] {
        let base = CampaignConfig {
            injections: 100,
            seed: 41,
            detection: DetectionModel::Parity { tracking: None },
            detect_latency: Some(latency),
            recovery: RecoveryPolicy::Idempotent,
            threads: 2,
            ..CampaignConfig::default()
        };
        let full = Campaign::prepare(&spec, base.clone()).unwrap().run_detailed();
        let pruned = Campaign::prepare(
            &spec,
            CampaignConfig {
                prune: true,
                ..base
            },
        )
        .unwrap()
        .run_detailed();
        assert_eq!(full.samples(), pruned.samples(), "recovery verdicts must match");
        assert!(full.recovery().is_some(), "latency > 0 must grow a recovery report");
        assert_eq!(
            full.recovery(),
            pruned.recovery(),
            "pruning must not perturb the recovery stanza"
        );
    }
}

/// ECC pattern campaigns drive the pipeline through
/// [`Campaign::inject_spec_quiet`], which routes through the pruned
/// executor when enabled — the whole report (dispositions, outcome
/// counts, per-class tallies) must be unchanged.
#[test]
fn ecc_pattern_campaign_matches_with_pruning() {
    let spec = WorkloadSpec::quick("prune-ecc", 31);
    let base = CampaignConfig {
        injections: 10,
        seed: 13,
        detection: DetectionModel::Parity { tracking: None },
        threads: 2,
        ..CampaignConfig::default()
    };
    let ecc = EccCampaignConfig {
        injections: 120,
        ..EccCampaignConfig::default()
    };
    let full_campaign = Campaign::prepare(&spec, base.clone()).unwrap();
    let pruned_campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            prune: true,
            ..base
        },
    )
    .unwrap();
    let full = run_ecc_campaign(&full_campaign, &ecc);
    let pruned = run_ecc_campaign(&pruned_campaign, &ecc);
    assert_eq!(full, pruned, "ECC campaign report must be prune-invariant");
}

/// The Summary artifact of a pruned campaign — pruning stanza included —
/// is byte-identical across worker-thread counts: per-fault charges are
/// pure and the prune fold runs in injection-index order.
#[test]
fn pruned_artifact_is_thread_count_invariant() {
    let spec = WorkloadSpec::quick("prune-threads", 19);
    let render = |threads: usize| {
        let config = CampaignConfig {
            injections: 80,
            seed: 7,
            detection: DetectionModel::Parity {
                tracking: Some(tracking()),
            },
            prune: true,
            threads,
            ..CampaignConfig::default()
        };
        let iq = config.pipeline.iq_entries;
        let detailed = Campaign::prepare(&spec, config).unwrap().run_detailed();
        campaign_artifact("prune-threads", &detailed, iq, TelemetryLevel::Summary).render()
    };
    let one = render(1);
    assert_eq!(one, render(2), "pruned artifact must not depend on threads (1 vs 2)");
    assert_eq!(one, render(8), "pruned artifact must not depend on threads (1 vs 8)");
    assert!(one.contains("\"pruning\""), "artifact must carry the pruning stanza");
}

/// Checkpoint/resume with pruning on: from-scratch (`Some(0)`) and
/// checkpointed (default interval) geometries agree on every verdict and
/// on the outcome histogram. (Pruning-stanza bytes legitimately differ —
/// replay-cycle and idle-skip savings are measured from each window's
/// start — so equality is on samples and counts, mirroring the
/// checkpointed-recovery guard.)
#[test]
fn pruned_run_survives_checkpoint_resume() {
    let spec = WorkloadSpec::quick("prune-ckpt-resume", 37);
    let run = |checkpoint_interval: Option<u64>| {
        let config = CampaignConfig {
            injections: 80,
            seed: 11,
            detection: DetectionModel::Parity {
                tracking: Some(tracking()),
            },
            prune: true,
            checkpoint_interval,
            ..CampaignConfig::default()
        };
        Campaign::prepare(&spec, config).unwrap().run_detailed()
    };
    let scratch = run(Some(0));
    let checkpointed = run(None);
    assert_eq!(
        scratch.samples(),
        checkpointed.samples(),
        "checkpoint geometry must not perturb pruned verdicts"
    );
    let (a, b) = (
        scratch.prune().expect("prune report"),
        checkpointed.prune().expect("prune report"),
    );
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.idle_skips, b.idle_skips, "idle detection is geometry-independent");
    assert_eq!(a.fp_stops, b.fp_stops, "fingerprint stops are geometry-independent");
}
