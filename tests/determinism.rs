//! Reproducibility: every layer of the stack is a pure function of its
//! seeds and configuration.

use ses_arch::Emulator;
use ses_core::{run_workload, synthesize, PipelineConfig, WorkloadSpec};

#[test]
fn synthesis_emulation_and_timing_are_deterministic() {
    let spec = WorkloadSpec::quick("det", 777);
    let a = run_workload(&spec, &PipelineConfig::default()).expect("a");
    let b = run_workload(&spec, &PipelineConfig::default()).expect("b");
    assert_eq!(a.program, b.program);
    assert_eq!(a.trace.output(), b.trace.output());
    assert_eq!(a.result.cycles, b.result.cycles);
    assert_eq!(a.result.committed, b.result.committed);
    assert_eq!(a.result.squashes, b.result.squashes);
    assert_eq!(a.result.residencies.len(), b.result.residencies.len());
    assert_eq!(a.avf.sdc_avf(), b.avf.sdc_avf());
    assert_eq!(a.avf.due_avf(), b.avf.due_avf());
}

#[test]
fn different_seeds_differ() {
    let mut s1 = WorkloadSpec::quick("det", 1);
    let mut s2 = WorkloadSpec::quick("det", 2);
    s1.seed = 1;
    s2.seed = 2;
    let p1 = synthesize(&s1);
    let p2 = synthesize(&s2);
    assert_ne!(p1, p2);
    let t1 = Emulator::new(&p1).run(100_000).unwrap();
    let t2 = Emulator::new(&p2).run(100_000).unwrap();
    assert_ne!(t1.output(), t2.output());
}

#[test]
fn golden_rerun_is_bit_identical() {
    let spec = WorkloadSpec::quick("det", 99);
    let p = synthesize(&spec);
    let t1 = Emulator::new(&p).run(100_000).unwrap();
    let t2 = Emulator::new(&p).run(100_000).unwrap();
    assert_eq!(t1, t2);
}

#[test]
fn campaign_report_is_seed_deterministic() {
    use ses_core::{Campaign, CampaignConfig, DetectionModel, Outcome};
    let spec = WorkloadSpec::quick("det-campaign", 5);
    let mk = || {
        Campaign::prepare(
            &spec,
            CampaignConfig {
                injections: 40,
                seed: 3,
                detection: DetectionModel::Parity { tracking: None },
                threads: 2,
                ..CampaignConfig::default()
            },
        )
        .unwrap()
        .run()
    };
    let (a, b) = (mk(), mk());
    for o in Outcome::ALL {
        assert_eq!(a.count(o), b.count(o), "outcome {o} must be stable");
    }
}

#[test]
fn campaign_artifact_is_thread_count_invariant() {
    use ses_core::telemetry::campaign_artifact;
    use ses_core::{Campaign, CampaignConfig, DetectionModel, TelemetryLevel};
    let spec = WorkloadSpec::quick("det-campaign-threads", 5);
    let run_with = |threads: usize| {
        let config = CampaignConfig {
            injections: 60,
            seed: 11,
            detection: DetectionModel::Parity { tracking: None },
            threads,
            ..CampaignConfig::default()
        };
        let iq = config.pipeline.iq_entries;
        let detailed = Campaign::prepare(&spec, config).unwrap().run_detailed();
        (detailed, iq)
    };
    let (one, iq) = run_with(1);
    let (four, _) = run_with(4);
    assert_eq!(one.samples(), four.samples(), "per-fault outcomes must match");
    // The Summary artifact excludes wall-clock and scheduling-dependent
    // counters, so it must be byte-identical across worker counts.
    let a = campaign_artifact("det", &one, iq, TelemetryLevel::Summary).render();
    let b = campaign_artifact("det", &four, iq, TelemetryLevel::Summary).render();
    assert_eq!(a, b, "campaign telemetry artifact must not depend on threads");
}

#[test]
fn suite_artifact_is_thread_count_invariant() {
    use ses_core::telemetry::suite_artifact;
    use ses_core::{run_suite_with, TelemetryLevel};
    let cfg = PipelineConfig::default();
    let one = run_suite_with(&cfg, 1, |_, run| run.summary()).unwrap();
    let many = run_suite_with(&cfg, 4, |_, run| run.summary()).unwrap();
    let a = suite_artifact(&cfg, &one, &[], TelemetryLevel::Summary).render();
    let b = suite_artifact(&cfg, &many, &[], TelemetryLevel::Summary).render();
    assert_eq!(a, b, "suite telemetry artifact must not depend on threads");
}

/// The adaptive campaign plans rounds single-threaded and evaluates them
/// through an order-preserving parallel map, so its Summary artifact —
/// estimate, per-stratum trial counts, CI trajectory and all — must be
/// byte-identical no matter how many workers evaluate the trials.
#[test]
fn adaptive_artifact_is_thread_count_invariant() {
    use ses_core::telemetry::adaptive_campaign_artifact;
    use ses_core::{
        AdaptiveCampaignConfig, AdaptiveConfig, AdaptiveSession, Campaign, CampaignConfig,
        DetectionModel, MetricKind, ReliabilityModel, TelemetryLevel,
    };
    let spec = WorkloadSpec::quick("det-adaptive-threads", 13);
    let cfg = AdaptiveCampaignConfig {
        adaptive: AdaptiveConfig {
            target_halfwidth: 0.08,
            min_per_stratum: 8,
            round_budget: 128,
            max_rounds: 16,
            seed: 0xD7,
            ..AdaptiveConfig::default()
        },
        metric: MetricKind::SdcAvf,
        pattern: None,
    };
    let render_with = |threads: usize| {
        let campaign = Campaign::prepare(
            &spec,
            CampaignConfig {
                seed: 21,
                detection: DetectionModel::Parity { tracking: None },
                threads,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        let mut session = AdaptiveSession::new(&campaign, cfg.clone());
        let report = session.run();
        adaptive_campaign_artifact(
            "det-adaptive",
            &cfg,
            &report,
            &ReliabilityModel::default(),
            TelemetryLevel::Summary,
        )
        .render()
    };
    let one = render_with(1);
    let two = render_with(2);
    let eight = render_with(8);
    assert_eq!(one, two, "adaptive artifact must not depend on threads (1 vs 2)");
    assert_eq!(one, eight, "adaptive artifact must not depend on threads (1 vs 8)");
}

/// Stopping an adaptive campaign mid-flight, checkpointing the scheduler,
/// and resuming in a fresh session must land on the same artifact as an
/// uninterrupted run — byte for byte, including the round trajectory.
#[test]
fn adaptive_artifact_survives_stop_and_resume() {
    use ses_core::telemetry::adaptive_campaign_artifact;
    use ses_core::{
        AdaptiveCampaignConfig, AdaptiveConfig, AdaptiveSession, Campaign, CampaignConfig,
        DetectionModel, MetricKind, ReliabilityModel, TelemetryLevel,
    };
    let spec = WorkloadSpec::quick("det-adaptive-resume", 29);
    let cfg = AdaptiveCampaignConfig {
        adaptive: AdaptiveConfig {
            target_halfwidth: 0.06,
            min_per_stratum: 8,
            round_budget: 128,
            max_rounds: 16,
            seed: 0xAB,
            ..AdaptiveConfig::default()
        },
        metric: MetricKind::DueAvf,
        pattern: None,
    };
    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            seed: 33,
            detection: DetectionModel::Parity { tracking: None },
            threads: 2,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    let render = |report: &ses_core::AdaptiveCampaignReport| {
        adaptive_campaign_artifact(
            "det-adaptive-resume",
            &cfg,
            report,
            &ReliabilityModel::default(),
            TelemetryLevel::Summary,
        )
        .render()
    };

    let mut straight = AdaptiveSession::new(&campaign, cfg.clone());
    let uninterrupted = straight.run();

    // Interrupt after the pilot round, serialise, resume elsewhere.
    let mut first = AdaptiveSession::new(&campaign, cfg.clone());
    assert!(first.step_round(), "pilot round must run");
    let ckpt = first.checkpoint();
    drop(first);
    let mut resumed = AdaptiveSession::resume(&campaign, cfg.clone(), &ckpt);
    let resumed_report = resumed.run();

    assert!(uninterrupted.total_trials > 0);
    assert_eq!(
        render(&uninterrupted),
        render(&resumed_report),
        "stop/resume must not perturb the adaptive artifact"
    );
}

/// Satellite: the multi-bit (spatial strike + ECC domain) adaptive
/// campaign inherits every determinism guarantee of the single-bit one —
/// the pattern draw and decoder verdict are pure functions of the
/// stratified coordinate, so the artifact is byte-identical across
/// worker-thread counts *and* across a checkpoint/resume boundary.
#[test]
fn pattern_adaptive_artifact_is_thread_count_invariant_and_resumable() {
    use ses_core::telemetry::adaptive_campaign_artifact;
    use ses_core::{
        AdaptiveCampaignConfig, AdaptiveConfig, AdaptiveSession, Campaign, CampaignConfig,
        DetectionModel, EccDomain, EccScheme, MetricKind, PatternDistribution, PatternModel,
        ReliabilityModel, TelemetryLevel,
    };
    let spec = WorkloadSpec::quick("det-ecc-adaptive", 41);
    let cfg = AdaptiveCampaignConfig {
        adaptive: AdaptiveConfig {
            target_halfwidth: 0.08,
            min_per_stratum: 8,
            round_budget: 128,
            max_rounds: 12,
            seed: 0xEC,
            ..AdaptiveConfig::default()
        },
        metric: MetricKind::DueAvf,
        pattern: Some(PatternModel {
            distribution: PatternDistribution::default(),
            domain: EccDomain::new(EccScheme::SecDed),
        }),
    };
    let prepare = |threads: usize| {
        Campaign::prepare(
            &spec,
            CampaignConfig {
                seed: 17,
                detection: DetectionModel::None,
                threads,
                ..CampaignConfig::default()
            },
        )
        .unwrap()
    };
    let render = |report: &ses_core::AdaptiveCampaignReport| {
        adaptive_campaign_artifact(
            "det-ecc-adaptive",
            &cfg,
            report,
            &ReliabilityModel::default(),
            TelemetryLevel::Summary,
        )
        .render()
    };
    let run_with = |threads: usize| {
        let campaign = prepare(threads);
        let report = AdaptiveSession::new(&campaign, cfg.clone()).run();
        render(&report)
    };
    let one = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    assert_eq!(one, two, "ECC adaptive artifact must not depend on threads (1 vs 2)");
    assert_eq!(one, eight, "ECC adaptive artifact must not depend on threads (1 vs 8)");
    assert!(
        one.contains("\"pattern_model\""),
        "multi-bit artifact must carry the spatial-strike stanza"
    );

    // Checkpoint/resume: interrupt after the pilot round, serialise the
    // scheduler, resume in a fresh session — same bytes.
    let campaign = prepare(2);
    let mut straight = AdaptiveSession::new(&campaign, cfg.clone());
    let uninterrupted = straight.run();
    let mut first = AdaptiveSession::new(&campaign, cfg.clone());
    assert!(first.step_round(), "pilot round must run");
    let ckpt = first.checkpoint();
    drop(first);
    let mut resumed = AdaptiveSession::resume(&campaign, cfg.clone(), &ckpt);
    let resumed_report = resumed.run();
    assert_eq!(
        render(&uninterrupted),
        render(&resumed_report),
        "stop/resume must not perturb the ECC adaptive artifact"
    );
}

/// Satellite: the recovery campaign inherits the thread-count guarantee —
/// the latency draw and region lookup are pure functions of the per-fault
/// coordinate, so the Summary artifact (recovery stanza included) is
/// byte-identical no matter how many workers evaluate the injections.
#[test]
fn recovery_artifact_is_thread_count_invariant() {
    use ses_core::telemetry::campaign_artifact;
    use ses_core::{
        Campaign, CampaignConfig, DetectionModel, LatencyDistribution, RecoveryPolicy,
        TelemetryLevel,
    };
    let spec = WorkloadSpec::quick("recovery-threads", 11);
    let render = |threads: usize| {
        let config = CampaignConfig {
            injections: 120,
            seed: 3,
            detection: DetectionModel::Parity { tracking: None },
            detect_latency: Some(LatencyDistribution::Geometric { mean: 12.0 }),
            recovery: RecoveryPolicy::Idempotent,
            threads,
            ..CampaignConfig::default()
        };
        let iq = config.pipeline.iq_entries;
        let detailed = Campaign::prepare(&spec, config).unwrap().run_detailed();
        campaign_artifact("recovery-threads", &detailed, iq, TelemetryLevel::Summary).render()
    };
    let one = render(1);
    assert_eq!(one, render(2), "recovery artifact must not depend on threads (1 vs 2)");
    assert_eq!(one, render(8), "recovery artifact must not depend on threads (1 vs 8)");
    assert!(one.contains("\"recovery\""), "artifact must carry the recovery stanza");
}

/// Checkpointed injection replay must not perturb recovery accounting:
/// the per-fault outcomes and the whole recovery stanza are identical
/// between a from-scratch campaign and one that resumes from pipeline
/// snapshots. (Full artifact bytes legitimately differ — the perf block
/// records cycles skipped — so equality is on samples and stanza.)
#[test]
fn recovery_survives_checkpoint_resume() {
    use ses_core::{
        Campaign, CampaignConfig, DetectionModel, LatencyDistribution, RecoveryPolicy,
    };
    let spec = WorkloadSpec::quick("recovery-ckpt", 23);
    let run = |checkpoint_interval: Option<u64>| {
        let config = CampaignConfig {
            injections: 120,
            seed: 41,
            detection: DetectionModel::Parity { tracking: None },
            detect_latency: Some(LatencyDistribution::Fixed(6)),
            recovery: RecoveryPolicy::Idempotent,
            checkpoint_interval,
            ..CampaignConfig::default()
        };
        Campaign::prepare(&spec, config).unwrap().run_detailed()
    };
    let scratch = run(Some(0));
    let checkpointed = run(None);
    assert!(
        checkpointed.perf().cycles_skipped > 0,
        "the checkpointed run must actually exercise snapshot resume"
    );
    assert_eq!(scratch.samples(), checkpointed.samples(), "per-fault outcomes must match");
    assert_eq!(
        scratch.recovery(),
        checkpointed.recovery(),
        "checkpoint/resume must not perturb the recovery stanza"
    );
}

/// Guard for pre-recovery artifact compatibility: a campaign with no
/// detection latency configured must emit exactly the legacy bytes — no
/// `recovery` stanza, no `recovered` outcome key.
#[test]
fn latency_off_artifact_has_no_recovery_stanza() {
    use ses_core::telemetry::campaign_artifact;
    use ses_core::{Campaign, CampaignConfig, DetectionModel, TelemetryLevel};
    let spec = WorkloadSpec::quick("latency-off", 5);
    let config = CampaignConfig {
        injections: 80,
        seed: 9,
        detection: DetectionModel::Parity { tracking: None },
        ..CampaignConfig::default()
    };
    let iq = config.pipeline.iq_entries;
    let detailed = Campaign::prepare(&spec, config).unwrap().run_detailed();
    assert!(detailed.recovery().is_none(), "legacy runs must not grow a recovery report");
    let rendered =
        campaign_artifact("latency-off", &detailed, iq, TelemetryLevel::Summary).render();
    assert!(!rendered.contains("\"recovery\""), "no recovery stanza on legacy runs");
    assert!(!rendered.contains("\"recovered\""), "no recovered outcome key on legacy runs");
}

/// Guard for pre-pruning artifact compatibility: a campaign run without
/// `--prune` must emit exactly the legacy bytes — no `pruning` stanza,
/// no prune report on the detailed result.
#[test]
fn prune_off_artifact_has_no_pruning_stanza() {
    use ses_core::telemetry::campaign_artifact;
    use ses_core::{Campaign, CampaignConfig, DetectionModel, TelemetryLevel};
    let spec = WorkloadSpec::quick("prune-off", 5);
    let config = CampaignConfig {
        injections: 80,
        seed: 9,
        detection: DetectionModel::Parity { tracking: None },
        ..CampaignConfig::default()
    };
    let iq = config.pipeline.iq_entries;
    let detailed = Campaign::prepare(&spec, config).unwrap().run_detailed();
    assert!(detailed.prune().is_none(), "legacy runs must not grow a prune report");
    let rendered =
        campaign_artifact("prune-off", &detailed, iq, TelemetryLevel::Summary).render();
    assert!(!rendered.contains("\"pruning\""), "no pruning stanza on legacy runs");
    let full = campaign_artifact("prune-off", &detailed, iq, TelemetryLevel::Full).render();
    assert!(!full.contains("\"pruning\""), "no pruning stanza at Full level either");
}

/// The single-bit adaptive artifact pre-dates the spatial-strike engine:
/// with `pattern: None` its bytes must not change — no stanza, no label
/// suffixes, nothing.
#[test]
fn single_bit_adaptive_artifact_has_no_pattern_stanza() {
    use ses_core::telemetry::adaptive_campaign_artifact;
    use ses_core::{
        AdaptiveCampaignConfig, AdaptiveConfig, AdaptiveSession, Campaign, CampaignConfig,
        DetectionModel, MetricKind, ReliabilityModel, TelemetryLevel,
    };
    let spec = WorkloadSpec::quick("det-no-pattern", 43);
    let cfg = AdaptiveCampaignConfig {
        adaptive: AdaptiveConfig {
            target_halfwidth: 0.1,
            min_per_stratum: 8,
            round_budget: 64,
            max_rounds: 6,
            seed: 0x51,
            ..AdaptiveConfig::default()
        },
        metric: MetricKind::SdcAvf,
        pattern: None,
    };
    let campaign = Campaign::prepare(
        &spec,
        CampaignConfig {
            seed: 19,
            detection: DetectionModel::None,
            threads: 2,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    let report = AdaptiveSession::new(&campaign, cfg.clone()).run();
    let rendered = adaptive_campaign_artifact(
        "det-no-pattern",
        &cfg,
        &report,
        &ReliabilityModel::default(),
        TelemetryLevel::Summary,
    )
    .render();
    assert!(!rendered.contains("pattern_model"));
    assert!(!rendered.contains("/single"), "stratum labels must stay unsuffixed");
}
