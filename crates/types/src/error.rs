//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// A configuration problem detected while building a simulator or experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    what: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable description.
    pub fn new(what: impl Into<String>) -> Self {
        ConfigError { what: what.into() }
    }

    /// The description of what was wrong.
    pub fn message(&self) -> &str {
        &self.what
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.what)
    }
}

impl Error for ConfigError {}

/// Top-level error type for fallible operations in the suite.
#[derive(Debug)]
#[non_exhaustive]
pub enum SesError {
    /// A configuration was rejected.
    Config(ConfigError),
    /// A program failed to decode (bad encoding, unknown opcode, …).
    Decode {
        /// The 64-bit word that failed to decode.
        word: u64,
        /// Why it failed.
        reason: String,
    },
    /// The functional emulator trapped (out-of-range access, bad jump, …).
    EmulationFault(String),
    /// An experiment exceeded its configured instruction or cycle budget.
    BudgetExceeded {
        /// What ran out ("instructions" or "cycles").
        resource: &'static str,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SesError::Config(e) => write!(f, "{e}"),
            SesError::Decode { word, reason } => {
                write!(f, "cannot decode instruction word {word:#018x}: {reason}")
            }
            SesError::EmulationFault(why) => write!(f, "emulation fault: {why}"),
            SesError::BudgetExceeded { resource, limit } => {
                write!(f, "simulation exceeded its {resource} budget of {limit}")
            }
        }
    }
}

impl Error for SesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SesError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SesError {
    fn from(e: ConfigError) -> Self {
        SesError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let c = ConfigError::new("queue size must be a power of two");
        assert!(c.to_string().contains("queue size"));
        assert_eq!(c.message(), "queue size must be a power of two");

        let e: SesError = c.clone().into();
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_some());

        let d = SesError::Decode {
            word: 0xdead_beef,
            reason: "unknown opcode".into(),
        };
        assert!(d.to_string().contains("unknown opcode"));
        assert!(d.source().is_none());

        let b = SesError::BudgetExceeded {
            resource: "cycles",
            limit: 100,
        };
        assert!(b.to_string().contains("cycles"));

        let f = SesError::EmulationFault("wild store".into());
        assert!(f.to_string().contains("wild store"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SesError>();
        assert_bounds::<ConfigError>();
    }
}
