//! Campaign-as-a-service battery: server-vs-CLI byte equivalence, cache
//! correctness, hostile-input robustness, and concurrency stress.
//!
//! The equivalence tests spawn the *actual* CLI binary
//! (`CARGO_BIN_EXE_ser-repro`) with `--json` and compare the file bytes
//! against the daemon's response body for the same (config, workload,
//! seed) — parameters are passed explicitly to both sides so a silent
//! default divergence between the CLI and the job layer cannot pass.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use ses_core::JsonValue;
use ses_serve::{http_get, http_post, JobSpec, Server, ServeConfig};

fn start_server(threads: usize, cache_bytes: usize) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        cache_bytes,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// Runs the real CLI with `--json <tmp>` and returns the artifact bytes.
fn cli_artifact(args: &[&str]) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path: PathBuf = std::env::temp_dir().join(format!(
        "ser-repro-serve-test-{}-{n}.json",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_ser-repro"))
        .args(args)
        .arg("--json")
        .arg(&path)
        .output()
        .expect("CLI binary runs");
    assert!(
        output.status.success(),
        "CLI {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read_to_string(&path).expect("CLI wrote artifact");
    let _ = std::fs::remove_file(&path);
    bytes
}

fn post_ok(addr: std::net::SocketAddr, kind: &str, body: &str) -> ses_serve::Response {
    let resp = http_post(addr, &format!("/v1/{kind}"), body).expect("request completes");
    assert_eq!(
        resp.status,
        200,
        "POST /v1/{kind} {body} failed: {}",
        resp.body_str()
    );
    resp
}

// ---------------------------------------------------------------------------
// Satellite 1: server-vs-CLI byte equivalence, across server thread counts.
// ---------------------------------------------------------------------------

#[test]
fn served_campaign_artifacts_match_cli_across_server_threads() {
    // Plain fixed-budget campaign (the CLI `inject` path; seed is the
    // CLI's fixed 2026), recovery flavour with its `recovery` stanza, and
    // ECC flavour with its `pattern_model` stanza.
    let plain_cli = cli_artifact(&["inject", "crafty", "--injections", "60", "--model", "parity"]);
    let recovery_cli = cli_artifact(&[
        "campaign",
        "crafty",
        "--detect-latency",
        "fixed:8",
        "--recovery",
        "idempotent",
        "--injections",
        "60",
        "--seed",
        "99",
    ]);
    let ecc_cli = cli_artifact(&[
        "campaign",
        "crafty",
        "--ecc",
        "sec-ded",
        "--injections",
        "80",
        "--seed",
        "7",
        "--node",
        "16nm",
        "--env",
        "avionics",
    ]);
    assert!(recovery_cli.contains("\"recovery\""));
    assert!(ecc_cli.contains("\"pattern_model\""));

    for threads in [1usize, 2, 8] {
        let server = start_server(threads, 64 << 20);
        let addr = server.addr();

        let plain = post_ok(
            addr,
            "campaign",
            r#"{"workload": "crafty", "injections": 60, "seed": 2026, "model": "parity"}"#,
        );
        assert_eq!(
            plain.body_str(),
            plain_cli,
            "plain campaign bytes diverge from CLI at server --threads {threads}"
        );

        let recovery = post_ok(
            addr,
            "campaign",
            r#"{"workload": "crafty", "injections": 60, "seed": 99, "detect_latency": "fixed:8", "recovery": "idempotent"}"#,
        );
        assert_eq!(
            recovery.body_str(),
            recovery_cli,
            "recovery campaign bytes diverge from CLI at server --threads {threads}"
        );

        let ecc = post_ok(
            addr,
            "campaign",
            r#"{"workload": "crafty", "injections": 80, "seed": 7, "ecc": "sec-ded", "node": "16nm", "env": "avionics"}"#,
        );
        assert_eq!(
            ecc.body_str(),
            ecc_cli,
            "ecc campaign bytes diverge from CLI at server --threads {threads}"
        );

        server.shutdown();
    }
}

#[test]
fn served_suite_artifact_matches_cli() {
    let cli = cli_artifact(&["suite", "--squash", "l1", "--threads", "2"]);
    let server = start_server(2, 64 << 20);
    let resp = post_ok(
        server.addr(),
        "suite",
        r#"{"squash": "l1", "threads": 2}"#,
    );
    assert_eq!(resp.body_str(), cli);
    server.shutdown();
}

#[test]
fn served_ecc_grid_artifact_matches_cli() {
    let cli = cli_artifact(&["ecc-grid", "crafty", "mcf", "--probes", "120", "--seed", "5"]);
    let server = start_server(2, 64 << 20);
    let resp = post_ok(
        server.addr(),
        "ecc-grid",
        r#"{"workloads": ["crafty", "mcf"], "probes": 120, "seed": 5}"#,
    );
    assert_eq!(resp.body_str(), cli);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Satellite 2: cache correctness.
// ---------------------------------------------------------------------------

#[test]
fn cache_hit_returns_cold_run_bytes() {
    let server = start_server(2, 64 << 20);
    let addr = server.addr();
    let body = r#"{"workload": "crafty", "injections": 40, "seed": 11}"#;

    let cold = post_ok(addr, "campaign", body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    let warm = post_ok(addr, "campaign", body);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    assert_eq!(cold.body_str(), warm.body_str());
    assert_eq!(cold.header("x-job-key"), warm.header("x-job-key"));
    server.shutdown();
}

#[test]
fn eviction_then_requery_reproduces_identical_bytes() {
    // A budget that holds exactly one fuzz artifact (cache entry =
    // canonical key ~82 bytes + body ~200 bytes), so the second distinct
    // job must evict the first.
    let server = start_server(2, 400);
    let addr = server.addr();
    let job_a = r#"{"iters": 25, "seed": 3}"#;
    let job_b = r#"{"iters": 25, "seed": 4}"#;

    let a1 = post_ok(addr, "fuzz", job_a);
    assert_eq!(a1.header("x-cache"), Some("miss"));
    let b1 = post_ok(addr, "fuzz", job_b);
    assert_eq!(b1.header("x-cache"), Some("miss"));
    // `a` was evicted: this is a recompute, and it must reproduce the
    // cold bytes exactly.
    let a2 = post_ok(addr, "fuzz", job_a);
    assert_eq!(a2.header("x-cache"), Some("miss"));
    assert_eq!(a1.body_str(), a2.body_str());
    assert_ne!(a1.body_str(), b1.body_str());

    let stats = http_get(addr, "/v1/stats").expect("stats");
    let doc = JsonValue::parse(stats.body_str()).expect("stats parse");
    let evictions = doc
        .get("cache")
        .and_then(|c| c.get("evictions"))
        .and_then(|v| v.as_u64())
        .expect("evictions counter");
    assert!(evictions >= 1, "expected at least one eviction");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distinct configs never collide on a cache key: any perturbation of
    /// any parameter produces a different canonical form (the cache key).
    #[test]
    fn perturbed_configs_never_collide_on_cache_key(
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
        inj_a in 1u32..500,
        inj_b in 1u32..500,
        model_a in 0usize..3,
        model_b in 0usize..3,
        latency_a in prop_oneof![Just(None), Just(Some("fixed:4")), Just(Some("geometric:6"))],
        latency_b in prop_oneof![Just(None), Just(Some("fixed:4")), Just(Some("geometric:6"))],
    ) {
        let models = ["none", "parity", "tracking"];
        let build = |seed: u64, inj: u32, model: usize, latency: Option<&str>| {
            let latency_field = match latency {
                Some(l) => format!(r#", "detect_latency": "{l}""#),
                None => String::new(),
            };
            // detect_latency forces the recovery flavour, where an
            // explicit model choice is honoured the same way.
            let body = format!(
                r#"{{"workload": "crafty", "injections": {inj}, "seed": {seed}, "model": "{}"{latency_field}}}"#,
                models[model]
            );
            let doc = JsonValue::parse(&body).expect("body renders as JSON");
            JobSpec::parse("campaign", &doc).expect("job parses")
        };
        let a = build(seed_a, inj_a, model_a, latency_a);
        let b = build(seed_b, inj_b, model_b, latency_b);
        let params_equal = (seed_a, inj_a, model_a, latency_a) == (seed_b, inj_b, model_b, latency_b);
        prop_assert_eq!(a.canonical() == b.canonical(), params_equal);
    }
}

// ---------------------------------------------------------------------------
// Satellite 3: hostile-input robustness.
// ---------------------------------------------------------------------------

/// Sends raw bytes, half-closes the write side, and reads the response.
fn raw_request(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(bytes).expect("write");
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    String::from_utf8_lossy(&out).into_owned()
}

fn assert_structured_error(response: &str, status: u16) {
    assert!(
        response.starts_with(&format!("HTTP/1.1 {status} ")),
        "expected status {status}, got: {response:.120}"
    );
    let body_start = response.find("\r\n\r\n").expect("header terminator") + 4;
    let doc = JsonValue::parse(&response[body_start..]).expect("error body is valid JSON");
    assert_eq!(doc.get("artifact").and_then(|v| v.as_str()), Some("error"));
    assert_eq!(
        doc.get("status").and_then(|v| v.as_u64()),
        Some(u64::from(status))
    );
    assert!(doc
        .get("error")
        .and_then(|v| v.as_str())
        .is_some_and(|m| !m.is_empty()));
}

/// The daemon answers a normal request correctly — asserted after every
/// hostile input to prove the worker survived.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let health = http_get(addr, "/v1/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let doc = JsonValue::parse(health.body_str()).expect("health parses");
    assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
}

#[test]
fn hostile_inputs_yield_structured_errors_and_daemon_keeps_serving() {
    let server = start_server(2, 64 << 20);
    let addr = server.addr();

    // Truncated request: promises a body, half-closes before sending it.
    let r = raw_request(
        addr,
        b"POST /v1/campaign HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"work",
    );
    assert_structured_error(&r, 400);
    assert_still_serving(addr);

    // Truncated head: no header terminator at all.
    let r = raw_request(addr, b"POST /v1/campaign HTT");
    assert_structured_error(&r, 400);
    assert_still_serving(addr);

    // Oversized body: rejected from the Content-Length alone.
    let r = raw_request(
        addr,
        b"POST /v1/campaign HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_structured_error(&r, 413);
    assert_still_serving(addr);

    // Malformed request line.
    let r = raw_request(addr, b"complete garbage\r\n\r\n");
    assert_structured_error(&r, 400);
    assert_still_serving(addr);

    // Unknown routes and methods.
    let r = http_post(addr, "/v1/no-such-job", "{}").expect("request");
    assert_eq!(r.status, 404);
    let r = http_get(addr, "/nope").expect("request");
    assert_eq!(r.status, 404);
    let r = raw_request(addr, b"DELETE /v1/stats HTTP/1.1\r\n\r\n");
    assert_structured_error(&r, 405);
    assert_still_serving(addr);

    // Malformed JSON body.
    let r = http_post(addr, "/v1/campaign", "{\"workload\": ").expect("request");
    assert_eq!(r.status, 400);
    let doc = JsonValue::parse(r.body_str()).expect("error body parses");
    assert!(doc
        .get("error")
        .and_then(|v| v.as_str())
        .is_some_and(|m| m.contains("malformed JSON")));
    assert_still_serving(addr);

    // Valid JSON, invalid job: unknown workload, unknown field, bad type.
    for body in [
        r#"{"workload": "no-such-bench"}"#,
        r#"{"workload": "crafty", "bogus": 1}"#,
        r#"{"workload": "crafty", "injections": "lots"}"#,
        r#"{"workload": "crafty", "recovery": "idempotent", "ecc": "sec"}"#,
        r#"[1, 2, 3]"#,
    ] {
        let r = http_post(addr, "/v1/campaign", body).expect("request");
        assert_eq!(r.status, 400, "body {body} should be a 400");
        let doc = JsonValue::parse(r.body_str()).expect("error body parses");
        assert_eq!(doc.get("artifact").and_then(|v| v.as_str()), Some("error"));
        assert_still_serving(addr);
    }

    // Mid-response disconnect: fire a valid job and slam the connection
    // shut without reading; the worker's failed write must not kill it.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let body = r#"{"iters": 25, "seed": 9}"#;
        let req = format!(
            "POST /v1/fuzz HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).expect("write");
        drop(s);
    }
    // Give the worker a moment to hit the broken pipe, then prove the
    // daemon still answers real jobs end to end.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let r = post_ok(addr, "fuzz", r#"{"iters": 25, "seed": 10}"#);
    let doc = JsonValue::parse(r.body_str()).expect("artifact parses");
    assert_eq!(doc.get("artifact").and_then(|v| v.as_str()), Some("fuzz"));

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Satellite 4: concurrency stress — N threads, identical + distinct jobs.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_stress_identical_bytes_and_hit_counter_matches_dedup() {
    let server = start_server(8, 64 << 20);
    let addr = server.addr();

    // 4 distinct (cheap) jobs, hammered by 16 clients x 8 requests.
    let jobs: Vec<String> = (0..4)
        .map(|s| format!(r#"{{"iters": 30, "seed": {}}}"#, 100 + s))
        .collect();
    let clients = 16usize;
    let per_client = 8usize;

    let responses: Vec<(usize, String, String)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let jobs = &jobs;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for r in 0..per_client {
                    let j = (c + r) % jobs.len();
                    let resp = post_ok(addr, "fuzz", &jobs[j]);
                    out.push((
                        j,
                        resp.header("x-cache").expect("x-cache header").to_string(),
                        resp.body_str().to_string(),
                    ));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let total = clients * per_client;
    assert_eq!(responses.len(), total);

    // Every response validates against the artifact schema; identical
    // jobs yield identical bytes.
    let mut canonical_bodies: Vec<Option<String>> = vec![None; jobs.len()];
    for (j, _cache, body) in &responses {
        let doc = JsonValue::parse(body).expect("artifact parses");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(u64::from(ses_core::SCHEMA_VERSION))
        );
        assert_eq!(doc.get("artifact").and_then(|v| v.as_str()), Some("fuzz"));
        match &canonical_bodies[*j] {
            None => canonical_bodies[*j] = Some(body.clone()),
            Some(first) => assert_eq!(first, body, "job {j} bytes diverged across requests"),
        }
    }

    // The cache hit counter matches the dedup count exactly: single-flight
    // means each distinct job computes once, every other request is a hit.
    let misses = responses.iter().filter(|(_, c, _)| c == "miss").count();
    let hits = responses.iter().filter(|(_, c, _)| c == "hit").count();
    assert_eq!(misses, jobs.len(), "each distinct job computes exactly once");
    assert_eq!(hits, total - jobs.len());

    let stats = http_get(addr, "/v1/stats").expect("stats");
    let doc = JsonValue::parse(stats.body_str()).expect("stats parse");
    let cache = doc.get("cache").expect("cache stanza");
    assert_eq!(
        cache.get("hits").and_then(|v| v.as_u64()),
        Some((total - jobs.len()) as u64)
    );
    assert_eq!(
        cache.get("misses").and_then(|v| v.as_u64()),
        Some(jobs.len() as u64)
    );

    server.shutdown();
}
