//! Adaptive stratified campaigns: the `ses-sampler` scheduler driven by
//! the checkpointed injection engine.
//!
//! An [`AdaptiveSession`] binds an [`AdaptiveScheduler`] to a prepared
//! [`Campaign`]: the scheduler plans each round (which strata get how
//! many trials, at which exact coordinates), the session evaluates the
//! round on the campaign's work-sharded parallel path, and the observed
//! outcomes flow back as Bernoulli events of the chosen [`MetricKind`].
//! Because planning is single-threaded and evaluation preserves trial
//! order, the whole campaign — trajectory, per-stratum counts, final
//! estimate — is invariant under worker-thread count, and
//! [`AdaptiveSession::checkpoint`] / [`AdaptiveSession::resume`] make a
//! mid-campaign stop invisible in the artifact.

use ses_mem::{EccDomain, WordVerdict};
use ses_metrics::{RateInterval, ReliabilityModel};
use ses_pipeline::{EccReadOutcome, FaultSpec};
use ses_sampler::{
    lifetime_cells, splitmix64, AdaptiveCheckpoint, AdaptiveConfig, AdaptiveScheduler,
    OccupancyProfile, RoundRecord, Strata, StratifiedEstimate, StratumState, Trial,
};
use ses_types::{Cycle, Ipc};

use crate::campaign::Campaign;
use crate::outcome::Outcome;
use crate::pattern::{mask_for_class, PatternDistribution};

/// Cycle windows the occupancy profile buckets the run into.
const OCC_WINDOWS: usize = 16;

/// Which campaign outcome counts as the Bernoulli event being estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Silent-corruption events (SDC, unsound suppression, hang): the
    /// statistical SDC AVF.
    SdcAvf,
    /// Machine-check events (false or true DUE): the statistical DUE AVF.
    DueAvf,
}

impl MetricKind {
    /// Whether `outcome` is this metric's event.
    pub fn is_event(self, outcome: Outcome) -> bool {
        match self {
            MetricKind::SdcAvf => matches!(
                outcome,
                Outcome::Sdc | Outcome::SuppressedSdc | Outcome::Hang
            ),
            MetricKind::DueAvf => outcome.is_due(),
        }
    }

    /// Stable label for telemetry artifacts.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::SdcAvf => "sdc_avf",
            MetricKind::DueAvf => "due_avf",
        }
    }
}

/// Spatial-strike configuration of an adaptive campaign: the pattern
/// distribution the strikes are drawn from and the ECC domain that
/// filters them. Adding this crosses the stratification with a
/// pattern-class axis, so the scheduler steers trials toward the classes
/// that still produce events under the domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternModel {
    /// Pattern-class distribution (integer permille weights double as
    /// exact stratum-replication factors).
    pub distribution: PatternDistribution,
    /// The protection domain guarding every stored word.
    pub domain: EccDomain,
}

/// Configuration of an adaptive stratified campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCampaignConfig {
    /// Scheduler parameters (target half-width, pilot size, round budget,
    /// seed).
    pub adaptive: AdaptiveConfig,
    /// The metric whose proportion is estimated.
    pub metric: MetricKind,
    /// Spatial multi-bit strike model; `None` keeps the classic
    /// single-bit campaign (and its artifact bytes) unchanged.
    pub pattern: Option<PatternModel>,
}

impl Default for AdaptiveCampaignConfig {
    fn default() -> Self {
        AdaptiveCampaignConfig {
            adaptive: AdaptiveConfig::default(),
            metric: MetricKind::SdcAvf,
            pattern: None,
        }
    }
}

/// Builds the injection-space partition for a prepared campaign.
///
/// The golden run's residency lifetimes feed three things: the occupancy
/// profile that buckets cycle windows, the live/Ex-ACE-tail phase split
/// of every occupied span (a strike after the last issue read lands in
/// dead state), and the idle-coordinate mask (a strike on an empty slot
/// resolves benign by construction, so those coordinates weight into the
/// estimate at exactly zero without being sampled). Strata plus the
/// masked mass cover `baseline_cycles × iq_entries × 64` exactly.
pub fn build_strata(campaign: &Campaign) -> Strata {
    let cycles = campaign.baseline_cycles().max(1);
    let iq = campaign.iq_entries();
    let spans = campaign.lifetime_spans();
    let profile = OccupancyProfile::from_intervals(
        cycles,
        iq,
        spans.iter().map(|s| s.occupancy()),
        OCC_WINDOWS,
    );
    // The live/tail split comes from the spans themselves (ses-avf's
    // canonical boundary), via the sampler's shared cell derivation.
    let cells = lifetime_cells(spans);
    Strata::build_cells(cycles, iq, &profile, &cells)
}

/// [`build_strata`], optionally crossed with the pattern-class axis of a
/// [`PatternModel`]: each geometric stratum is replicated per non-zero
/// pattern class, weighted by the class's distribution mass.
pub fn build_strata_with(campaign: &Campaign, pattern: Option<&PatternModel>) -> Strata {
    let base = build_strata(campaign);
    match pattern {
        None => base,
        Some(p) => {
            let weights: Vec<_> = p
                .distribution
                .class_weights()
                .into_iter()
                .filter(|&(_, w)| w > 0)
                .collect();
            base.with_pattern_classes(&weights)
        }
    }
}

/// One adaptive campaign in flight over a prepared [`Campaign`].
pub struct AdaptiveSession<'c> {
    campaign: &'c Campaign,
    scheduler: AdaptiveScheduler,
    metric: MetricKind,
    pattern: Option<PatternModel>,
    seed: u64,
}

impl<'c> AdaptiveSession<'c> {
    /// Starts a fresh session over a prepared campaign.
    pub fn new(campaign: &'c Campaign, cfg: AdaptiveCampaignConfig) -> Self {
        let seed = cfg.adaptive.seed;
        AdaptiveSession {
            scheduler: AdaptiveScheduler::new(
                build_strata_with(campaign, cfg.pattern.as_ref()),
                cfg.adaptive,
            ),
            campaign,
            metric: cfg.metric,
            pattern: cfg.pattern,
            seed,
        }
    }

    /// Resumes a session from a mid-campaign checkpoint taken over an
    /// identically prepared campaign and configuration. The continued
    /// run plans exactly the rounds an uninterrupted run would have.
    pub fn resume(
        campaign: &'c Campaign,
        cfg: AdaptiveCampaignConfig,
        ckpt: &AdaptiveCheckpoint,
    ) -> Self {
        let seed = cfg.adaptive.seed;
        AdaptiveSession {
            scheduler: AdaptiveScheduler::restore(
                build_strata_with(campaign, cfg.pattern.as_ref()),
                cfg.adaptive,
                ckpt,
            ),
            campaign,
            metric: cfg.metric,
            pattern: cfg.pattern,
            seed,
        }
    }

    /// Plans and evaluates one round on the campaign's parallel path.
    /// Returns `false` when the campaign had already stopped (no round
    /// was run).
    pub fn step_round(&mut self) -> bool {
        let plan: Vec<Trial> = self.scheduler.plan_round();
        if plan.is_empty() {
            return false;
        }
        let campaign = self.campaign;
        let strata = self.scheduler.strata();
        let events: Vec<bool> = campaign
            .parallel_map(plan.len() as u32, |i| {
                let t = &plan[i as usize];
                // The resume-vs-scratch determinism guard runs on a fixed
                // subsample; running it on every trial of an exhaustive
                // stratum would double debug-build cost for no coverage.
                let verify = cfg!(debug_assertions) && i.is_multiple_of(64);
                let inject = |spec: FaultSpec| {
                    if verify {
                        campaign.inject_spec(spec)
                    } else {
                        campaign.inject_spec_quiet(spec)
                    }
                };
                let outcome = match strata.strata()[t.stratum].key.pattern {
                    None => inject(FaultSpec::single(
                        Cycle::new(t.coord.cycle),
                        t.coord.slot,
                        t.coord.bit,
                    )),
                    Some(class) => {
                        let model = self
                            .pattern
                            .expect("pattern-stratified partition implies a pattern model");
                        // Extra placement randomness (only random doubles
                        // consume it), derived from the coordinate so it is
                        // identical across thread counts and resume.
                        let aux = splitmix64(
                            self.seed
                                ^ t.coord.cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (t.coord.slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                                ^ u64::from(t.coord.bit),
                        );
                        let mask = mask_for_class(class, t.coord.bit, aux);
                        match model.domain.classify_word(mask) {
                            // Absorbed at the decoder: benign with no
                            // pipeline run — the cost saving ECC campaigns
                            // get for free.
                            WordVerdict::Corrected => Outcome::Benign,
                            WordVerdict::Signalled => {
                                inject(FaultSpec::with_pattern(
                                    Cycle::new(t.coord.cycle),
                                    t.coord.slot,
                                    mask,
                                    Some(EccReadOutcome::Signal),
                                ))
                            }
                            WordVerdict::Silent { effective } => {
                                inject(FaultSpec::with_pattern(
                                    Cycle::new(t.coord.cycle),
                                    t.coord.slot,
                                    effective,
                                    Some(EccReadOutcome::Silent),
                                ))
                            }
                        }
                    }
                };
                self.metric.is_event(outcome)
            })
            .into_iter()
            .collect();
        self.scheduler.record_round(&plan, &events);
        true
    }

    /// Runs rounds until the scheduler's stopping condition holds.
    pub fn run(&mut self) -> AdaptiveCampaignReport {
        while self.step_round() {}
        self.report()
    }

    /// Captures the scheduler state for a later [`AdaptiveSession::resume`].
    pub fn checkpoint(&self) -> AdaptiveCheckpoint {
        self.scheduler.checkpoint()
    }

    /// The underlying scheduler (trajectory, per-stratum states).
    pub fn scheduler(&self) -> &AdaptiveScheduler {
        &self.scheduler
    }

    /// Whether the campaign has reached its stopping condition.
    pub fn done(&self) -> bool {
        self.scheduler.done()
    }

    /// Summarises the session into a report (valid at any point, final
    /// once [`AdaptiveSession::done`]).
    pub fn report(&self) -> AdaptiveCampaignReport {
        let estimate = self.scheduler.estimate();
        let strata = self.scheduler.strata();
        let per_stratum: Vec<StratumReport> = strata
            .strata()
            .iter()
            .zip(self.scheduler.states())
            .map(|(s, st)| StratumReport {
                label: s.key.label(),
                size: s.size(),
                weight: s.size() as f64 / strata.total_size() as f64,
                state: *st,
            })
            .collect();
        AdaptiveCampaignReport {
            metric: self.metric,
            ipc: self.campaign.baseline_ipc(),
            space_size: strata.total_size(),
            masked_size: strata.masked_size(),
            total_trials: self.scheduler.total_trials(),
            rounds: self.scheduler.rounds_done(),
            trajectory: self.scheduler.trajectory().to_vec(),
            strata: per_stratum,
            estimate,
        }
    }
}

/// Final state of one stratum as reported in the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// Stable stratum label, e.g. `q1/control/live/occ3`.
    pub label: String,
    /// Coordinates in the stratum.
    pub size: u64,
    /// Exact partition weight.
    pub weight: f64,
    /// Observation state (trials, events, exhausted, stop round).
    pub state: StratumState,
}

/// The result of an adaptive stratified campaign, with honest intervals
/// end to end: per-stratum CIs, the propagated aggregate CI, and the
/// FIT/MTTF/MITF interval the reliability model derives from it.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCampaignReport {
    /// The estimated metric.
    pub metric: MetricKind,
    /// Fault-free IPC of the workload (pairs with the AVF in MITF).
    pub ipc: f64,
    /// Size of the injection space (`cycles × slots × 64`).
    pub space_size: u64,
    /// Coordinates excluded from sampling because a strike there is
    /// benign by construction (empty queue slot): they enter the
    /// post-stratified weights as an exact-zero stratum.
    pub masked_size: u64,
    /// Total trials spent.
    pub total_trials: u64,
    /// Rounds executed.
    pub rounds: u32,
    /// Per-round convergence trajectory.
    pub trajectory: Vec<RoundRecord>,
    /// Per-stratum final states in stable stratum order.
    pub strata: Vec<StratumReport>,
    /// The post-stratified estimate with its propagated interval.
    pub estimate: StratifiedEstimate,
}

impl AdaptiveCampaignReport {
    /// Trials a uniform campaign would need to reach this report's
    /// *achieved* aggregate half-width at the same estimated proportion
    /// (`n = p(1-p)(1.96/h)²`). A fully exhaustive campaign (half-width
    /// zero) is only matched by enumerating the whole space.
    pub fn uniform_equivalent_trials(&self) -> u64 {
        let p = self.estimate.estimate;
        let h = self.estimate.halfwidth;
        if h <= 0.0 {
            return self.space_size;
        }
        let n = (p * (1.0 - p) * (1.96 / h).powi(2)).ceil();
        (n as u64).max(1)
    }

    /// The trial-count advantage over uniform sampling at equal achieved
    /// half-width (>1 means the adaptive campaign was cheaper).
    pub fn uniform_savings(&self) -> f64 {
        if self.total_trials == 0 {
            return 0.0;
        }
        self.uniform_equivalent_trials() as f64 / self.total_trials as f64
    }

    /// Propagates the AVF interval through the reliability model into a
    /// FIT/MTTF/MITF interval.
    pub fn rate_interval(&self, model: &ReliabilityModel) -> RateInterval {
        model.rate_interval(
            Ipc::new(self.ipc),
            self.estimate.estimate,
            self.estimate.halfwidth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use ses_pipeline::{DetectionModel, PipelineConfig};
    use ses_workloads::WorkloadSpec;

    fn small_campaign(threads: usize) -> Campaign {
        let spec = WorkloadSpec::quick("adaptive-unit", 17);
        let config = CampaignConfig {
            seed: 42,
            detection: DetectionModel::None,
            threads,
            pipeline: PipelineConfig {
                iq_entries: 8,
                ..PipelineConfig::default()
            },
            ..CampaignConfig::default()
        };
        Campaign::prepare(&spec, config).unwrap()
    }

    fn quick_adaptive() -> AdaptiveCampaignConfig {
        AdaptiveCampaignConfig {
            adaptive: AdaptiveConfig {
                target_halfwidth: 0.12,
                min_per_stratum: 6,
                round_budget: 96,
                max_rounds: 12,
                exhaust_threshold: 0,
                seed: 7,
            },
            metric: MetricKind::SdcAvf,
            pattern: None,
        }
    }

    #[test]
    fn strata_cover_the_whole_injection_space() {
        let c = small_campaign(1);
        let strata = build_strata(&c);
        assert_eq!(
            strata.total_size(),
            c.baseline_cycles() * c.iq_entries() as u64 * 64
        );
        let covered: u64 = strata.strata().iter().map(|s| s.size()).sum();
        assert_eq!(covered + strata.masked_size(), strata.total_size());
        // The masked mass is exactly the idle slot-cycles: occupied
        // cycles per the residency log, times 64 bits, is the sampled
        // size.
        let occupied: u64 = c
            .lifetime_spans()
            .iter()
            .map(|s| s.valid_cycles())
            .sum();
        assert_eq!(strata.sampled_size(), occupied * 64);
    }

    #[test]
    fn session_is_thread_count_invariant() {
        let run = |threads| {
            let c = small_campaign(threads);
            let mut s = AdaptiveSession::new(&c, quick_adaptive());
            s.run()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "report must not depend on worker threads");
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let c = small_campaign(2);
        let mut full = AdaptiveSession::new(&c, quick_adaptive());
        let full_report = full.run();

        let mut first = AdaptiveSession::new(&c, quick_adaptive());
        assert!(first.step_round());
        let ckpt = first.checkpoint();
        let mut resumed = AdaptiveSession::resume(&c, quick_adaptive(), &ckpt);
        let resumed_report = resumed.run();
        assert_eq!(full_report, resumed_report);
    }

    #[test]
    fn estimate_stays_within_reason_and_saves_trials() {
        let c = small_campaign(2);
        // A tight target: the regime adaptive sampling is built for
        // (at loose targets the pilot round alone exceeds the handful
        // of trials uniform sampling would need).
        let mut cfg = quick_adaptive();
        cfg.adaptive.target_halfwidth = 0.03;
        cfg.adaptive.round_budget = 512;
        let report = AdaptiveSession::new(&c, cfg).run();
        assert!(report.total_trials > 0);
        assert!(report.estimate.estimate >= 0.0 && report.estimate.estimate <= 1.0);
        assert!(report.rounds >= 1);
        // At a tight target the masked idle mass and the low-variance
        // tail strata must beat uniform sampling at equal achieved
        // half-width.
        assert!(report.uniform_savings() >= 1.0, "adaptive must not lose");
        let (plo, phi) = report.estimate.interval();
        let (ulo, uhi) = report.estimate.union_bound();
        assert!(plo >= ulo - 1e-12 && phi <= uhi + 1e-12);
    }

    #[test]
    fn masked_coordinates_are_benign_by_construction() {
        let c = small_campaign(1);
        let strata = build_strata(&c);
        assert!(strata.masked_size() > 0, "quick run leaves idle slots");
        // Scan for idle coordinates and check the engine agrees they
        // resolve benign — the soundness condition for excluding them
        // from sampling.
        let mut checked = 0;
        'outer: for cycle in 0..c.baseline_cycles() {
            for slot in 0..c.iq_entries() {
                let coord = ses_sampler::FaultCoord { cycle, slot, bit: 0 };
                if strata.stratum_of(&coord).is_none() {
                    for bit in [0u32, 31, 63] {
                        let spec = ses_pipeline::FaultSpec::single(
                            ses_types::Cycle::new(cycle),
                            slot,
                            bit,
                        );
                        assert_eq!(
                            c.inject_spec(spec),
                            Outcome::Benign,
                            "masked coordinate {cycle}/{slot}/{bit} must be idle"
                        );
                    }
                    checked += 1;
                    if checked >= 25 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(checked > 0, "no masked coordinate found to check");
    }

    #[test]
    fn pattern_session_is_thread_count_invariant_and_resumable() {
        use ses_mem::{EccDomain, EccScheme};
        let cfg = || AdaptiveCampaignConfig {
            metric: MetricKind::DueAvf,
            pattern: Some(PatternModel {
                distribution: PatternDistribution::default(),
                domain: EccDomain::new(EccScheme::SecDed),
            }),
            ..quick_adaptive()
        };
        let run = |threads| {
            let c = small_campaign(threads);
            AdaptiveSession::new(&c, cfg()).run()
        };
        let one = run(1);
        let two = run(2);
        assert_eq!(one, two, "pattern report must not depend on threads");

        let c = small_campaign(2);
        let mut first = AdaptiveSession::new(&c, cfg());
        assert!(first.step_round());
        let ckpt = first.checkpoint();
        let resumed = AdaptiveSession::resume(&c, cfg(), &ckpt).run();
        assert_eq!(one, resumed, "resume must match the uninterrupted run");
        // Stratum labels carry the pattern-class suffix.
        assert!(one.strata.iter().any(|s| s.label.ends_with("/single")));
        assert!(one
            .strata
            .iter()
            .any(|s| s.label.ends_with("/random-double")));
    }

    #[test]
    fn pattern_strata_weights_carry_the_distribution() {
        let c = small_campaign(1);
        let model = PatternModel {
            distribution: PatternDistribution::default(),
            domain: EccDomain::new(ses_mem::EccScheme::HammingSec),
        };
        let base = build_strata(&c);
        let crossed = build_strata_with(&c, Some(&model));
        assert_eq!(crossed.len(), base.len() * 4);
        assert_eq!(crossed.total_size(), base.total_size() * 1000);
        assert_eq!(crossed.masked_size(), base.masked_size() * 1000);
        // Summed over strata, each class holds exactly its distribution
        // mass of the sampled space.
        let class_mass: u64 = crossed
            .strata()
            .iter()
            .filter(|s| s.key.pattern == Some(ses_sampler::PatternClass::Single))
            .map(|s| s.size())
            .sum();
        assert_eq!(class_mass, base.sampled_size() * 850);
    }

    #[test]
    fn metric_kinds_partition_outcomes() {
        for o in Outcome::ALL {
            assert!(
                !(MetricKind::SdcAvf.is_event(o) && MetricKind::DueAvf.is_event(o)),
                "{o:?} cannot be both SDC and DUE"
            );
        }
        assert!(MetricKind::SdcAvf.is_event(Outcome::Hang));
        assert!(MetricKind::DueAvf.is_event(Outcome::FalseDue));
    }
}
