//! Detection latency and idempotent-region recovery.
//!
//! The paper assumes a detected error raises a machine check immediately;
//! real detectors (parity trees, ECC pipelines, residue checks) deliver
//! their verdict cycles later. Zeng et al. ("Lightweight Soft Error
//! Resilience for In-Order Cores") exploit that window: if the deferred
//! signal still lands inside the *idempotent region* where the error
//! occurred, the machine rewinds to the region entry and re-executes —
//! converting a would-be DUE into a bounded IPC tax. Only signals that
//! escape their region fall back to the machine check.
//!
//! This module carries the campaign-facing configuration and accounting:
//! [`LatencyDistribution`] models the detector's signal delay,
//! [`RecoveryPolicy`] selects machine-check or idempotent recovery, and
//! [`RecoveryReport`] aggregates what recovery cost. The region analysis
//! itself lives in [`ses_avf::region`].

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Detection-signal latency model, in cycles between the corrupted word
/// being read and the error signal being acted on.
///
/// Sampling is a pure function of the caller-supplied seed, so campaigns
/// stay byte-identical across thread counts and checkpoint/resume.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyDistribution {
    /// Every detection takes exactly this many cycles.
    Fixed(u64),
    /// Geometric latency with the given mean: each cycle the deferred
    /// signal delivers with probability `1 / (mean + 1)`. A mean of 0
    /// degenerates to zero-latency detection.
    Geometric {
        /// Mean latency in cycles.
        mean: f64,
    },
    /// Table-driven: `(latency, weight)` pairs, sampled proportionally to
    /// weight (a measured detector histogram).
    Table(Vec<(u64, u32)>),
}

impl LatencyDistribution {
    /// Deterministically samples a latency in cycles from `seed`.
    pub fn sample(&self, seed: u64) -> u64 {
        match self {
            LatencyDistribution::Fixed(cycles) => *cycles,
            LatencyDistribution::Geometric { mean } => {
                if *mean <= 0.0 {
                    return 0;
                }
                let p = 1.0 / (mean + 1.0);
                let mut rng = StdRng::seed_from_u64(seed);
                let u: f64 = rng.gen();
                // Inverse-CDF of the geometric distribution on {0, 1, ...}.
                let l = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
                if l.is_finite() && l >= 0.0 {
                    l as u64
                } else {
                    0
                }
            }
            LatencyDistribution::Table(rows) => {
                let total: u64 = rows.iter().map(|&(_, w)| u64::from(w)).sum();
                if total == 0 {
                    return 0;
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let mut pick = rng.gen_range(0..total);
                for &(latency, w) in rows {
                    let w = u64::from(w);
                    if pick < w {
                        return latency;
                    }
                    pick -= w;
                }
                rows.last().map(|&(l, _)| l).unwrap_or(0)
            }
        }
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        match self {
            LatencyDistribution::Fixed(cycles) => *cycles as f64,
            LatencyDistribution::Geometric { mean } => mean.max(0.0),
            LatencyDistribution::Table(rows) => {
                let total: f64 = rows.iter().map(|&(_, w)| f64::from(w)).sum();
                if total == 0.0 {
                    0.0
                } else {
                    rows.iter()
                        .map(|&(l, w)| l as f64 * f64::from(w))
                        .sum::<f64>()
                        / total
                }
            }
        }
    }
}

impl fmt::Display for LatencyDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyDistribution::Fixed(c) => write!(f, "fixed:{c}"),
            LatencyDistribution::Geometric { mean } => write!(f, "geometric:{mean}"),
            LatencyDistribution::Table(rows) => {
                write!(f, "table:")?;
                for (i, (l, w)) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{l}x{w}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for LatencyDistribution {
    type Err = String;

    /// Parses the CLI syntax: `fixed:N`, `geometric:MEAN`, or
    /// `table:L1xW1,L2xW2,...`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, arg) = s
            .split_once(':')
            .ok_or_else(|| format!("expected kind:arg, got '{s}'"))?;
        match kind {
            "fixed" => arg
                .parse()
                .map(LatencyDistribution::Fixed)
                .map_err(|_| format!("bad fixed latency '{arg}'")),
            "geometric" | "geo" => arg
                .parse()
                .map(|mean: f64| LatencyDistribution::Geometric { mean })
                .map_err(|_| format!("bad geometric mean '{arg}'")),
            "table" => {
                let mut rows = Vec::new();
                for part in arg.split(',') {
                    let (l, w) = part
                        .split_once('x')
                        .ok_or_else(|| format!("bad table row '{part}' (want LxW)"))?;
                    let l = l.parse().map_err(|_| format!("bad latency '{l}'"))?;
                    let w = w.parse().map_err(|_| format!("bad weight '{w}'"))?;
                    rows.push((l, w));
                }
                if rows.is_empty() {
                    return Err("empty latency table".into());
                }
                Ok(LatencyDistribution::Table(rows))
            }
            other => Err(format!(
                "unknown latency kind '{other}' (want fixed/geometric/table)"
            )),
        }
    }
}

/// What the campaign does with a detected fault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Raise a machine check (the paper's model; the legacy behaviour).
    #[default]
    MachineCheck,
    /// Re-execute the current idempotent region when the signal still
    /// lands inside the region where the error occurred; otherwise fall
    /// back to the machine check.
    Idempotent,
}

impl RecoveryPolicy {
    /// Stable lower-case label for telemetry.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPolicy::MachineCheck => "machine-check",
            RecoveryPolicy::Idempotent => "idempotent",
        }
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "machine-check" | "machinecheck" | "none" => Ok(RecoveryPolicy::MachineCheck),
            "idempotent" => Ok(RecoveryPolicy::Idempotent),
            other => Err(format!(
                "unknown recovery policy '{other}' (want idempotent or machine-check)"
            )),
        }
    }
}

/// How one detected fault was resolved under the recovery policy; exposed
/// so property tests can pin per-fault monotonicity and conservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryDecision {
    /// Sampled detection latency in cycles.
    pub latency_cycles: u64,
    /// The latency converted to committed instructions at baseline IPC.
    pub delay_instructions: u64,
    /// Committed-trace index of the corrupted instruction (`None` for
    /// wrong-path corruptions, which have no committed anchor).
    pub fault_index: Option<u64>,
    /// Bounds `[start, end)` of the idempotent region containing the
    /// fault, when the fault has a committed anchor.
    pub region: Option<(u64, u64)>,
    /// Whether the signal landed inside the fault's region and the DUE
    /// was converted into a re-execution.
    pub recovered: bool,
    /// Instructions recovery re-executes (0 when not recovered).
    pub reexec_instructions: u64,
}

/// Monotonic recovery counters shared by the injection workers. All
/// updates are order-independent sums, so aggregates are deterministic
/// across thread schedules.
#[derive(Debug, Default)]
pub(crate) struct RecoveryCounters {
    pub(crate) recovered: AtomicU32,
    pub(crate) fallback_due: AtomicU32,
    pub(crate) reexec_instructions: AtomicU64,
    pub(crate) latency_cycles: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct RecoveryCounterValues {
    pub(crate) recovered: u32,
    pub(crate) fallback_due: u32,
    pub(crate) reexec_instructions: u64,
    pub(crate) latency_cycles: u64,
}

impl RecoveryCounters {
    pub(crate) fn values(&self) -> RecoveryCounterValues {
        RecoveryCounterValues {
            recovered: self.recovered.load(Ordering::Relaxed),
            fallback_due: self.fallback_due.load(Ordering::Relaxed),
            reexec_instructions: self.reexec_instructions.load(Ordering::Relaxed),
            latency_cycles: self.latency_cycles.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record(&self, decision: &RecoveryDecision) {
        self.latency_cycles
            .fetch_add(decision.latency_cycles, Ordering::Relaxed);
        if decision.recovered {
            self.recovered.fetch_add(1, Ordering::Relaxed);
            self.reexec_instructions
                .fetch_add(decision.reexec_instructions, Ordering::Relaxed);
        } else {
            self.fallback_due.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Aggregated recovery accounting for one campaign execution, surfaced as
/// the schema-versioned `recovery` telemetry stanza.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryReport {
    /// Detected faults converted into region re-executions.
    pub recovered: u32,
    /// Detected faults whose signal escaped the fault's region and fell
    /// back to a machine-check DUE.
    pub fallback_due: u32,
    /// Total instructions re-executed across all recoveries.
    pub reexec_instructions: u64,
    /// Sum of sampled detection latencies (cycles) over detected faults.
    pub latency_cycles: u64,
    /// Idempotent regions in the golden trace.
    pub regions: u32,
    /// Mean region length in dynamic instructions.
    pub mean_region_len: f64,
}

impl RecoveryReport {
    /// Detected faults (recovered + fallback).
    pub fn detected(&self) -> u32 {
        self.recovered + self.fallback_due
    }

    /// Fraction of detected faults recovered (0 when none detected).
    pub fn recovered_fraction(&self) -> f64 {
        let d = self.detected();
        if d == 0 {
            0.0
        } else {
            f64::from(self.recovered) / f64::from(d)
        }
    }

    /// Mean instructions re-executed per recovery (0 when none).
    pub fn mean_reexec_instructions(&self) -> f64 {
        if self.recovered == 0 {
            0.0
        } else {
            self.reexec_instructions as f64 / f64::from(self.recovered)
        }
    }

    /// Mean sampled detection latency in cycles over detected faults.
    pub fn mean_latency_cycles(&self) -> f64 {
        let d = self.detected();
        if d == 0 {
            0.0
        } else {
            self.latency_cycles as f64 / f64::from(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_constant() {
        let d = LatencyDistribution::Fixed(7);
        for seed in 0..20 {
            assert_eq!(d.sample(seed), 7);
        }
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn geometric_latency_is_deterministic_and_near_its_mean() {
        let d = LatencyDistribution::Geometric { mean: 6.0 };
        let a: Vec<u64> = (0..2000).map(|s| d.sample(s)).collect();
        let b: Vec<u64> = (0..2000).map(|s| d.sample(s)).collect();
        assert_eq!(a, b, "same seed, same sample");
        let empirical = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!(
            (empirical - 6.0).abs() < 1.0,
            "empirical mean {empirical} should be near 6"
        );
        assert_eq!(LatencyDistribution::Geometric { mean: 0.0 }.sample(3), 0);
    }

    #[test]
    fn table_latency_respects_weights() {
        let d = LatencyDistribution::Table(vec![(2, 3), (10, 1)]);
        let samples: Vec<u64> = (0..4000).map(|s| d.sample(s)).collect();
        let twos = samples.iter().filter(|&&l| l == 2).count();
        let tens = samples.iter().filter(|&&l| l == 10).count();
        assert_eq!(twos + tens, samples.len());
        let frac = twos as f64 / samples.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "2-cycle fraction {frac}");
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["fixed:4", "geometric:6.5", "table:1x3,8x1"] {
            let d: LatencyDistribution = s.parse().unwrap();
            assert_eq!(d.to_string(), s);
        }
        assert_eq!(
            "geo:2".parse::<LatencyDistribution>().unwrap(),
            LatencyDistribution::Geometric { mean: 2.0 }
        );
        assert!("warp:9".parse::<LatencyDistribution>().is_err());
        assert!("fixed".parse::<LatencyDistribution>().is_err());
        assert!("table:".parse::<LatencyDistribution>().is_err());
        assert!("idempotent".parse::<RecoveryPolicy>().is_ok());
        assert!("machine-check".parse::<RecoveryPolicy>().is_ok());
        assert!("retry".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn report_derived_rates() {
        let r = RecoveryReport {
            recovered: 3,
            fallback_due: 1,
            reexec_instructions: 12,
            latency_cycles: 8,
            regions: 10,
            mean_region_len: 4.0,
        };
        assert_eq!(r.detected(), 4);
        assert!((r.recovered_fraction() - 0.75).abs() < 1e-12);
        assert!((r.mean_reexec_instructions() - 4.0).abs() < 1e-12);
        assert!((r.mean_latency_cycles() - 2.0).abs() < 1e-12);
        assert_eq!(RecoveryReport::default().recovered_fraction(), 0.0);
        assert_eq!(RecoveryReport::default().mean_reexec_instructions(), 0.0);
        assert_eq!(RecoveryReport::default().mean_latency_cycles(), 0.0);
    }
}
