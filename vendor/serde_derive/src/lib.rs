//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! schema markers but never serializes through serde itself (run artifacts
//! use the deterministic writer in `ses-metrics::telemetry`). These derives
//! therefore expand to nothing, which keeps the dependency graph fully
//! offline-resolvable: no syn, no quote, no crates.io.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
