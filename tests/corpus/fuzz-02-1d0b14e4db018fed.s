; fuzz corpus entry 2: campaign seed 1, program seed 0x1d0b14e4db018fed
; regenerate with: ser-repro fuzz --seed 1 --emit-corpus <dir> --corpus-count 12
(p0) movi r1 = 18    ; +0x0000
(p0) movi r2 = 0    ; +0x0008
(p0) movi r3 = 131072    ; +0x0010
(p0) movi r4 = 1    ; +0x0018
(p0) movi r10 = 1856    ; +0x0020
(p0) movi r11 = 1983    ; +0x0028
(p0) movi r12 = 324    ; +0x0030
(p0) movi r13 = 893    ; +0x0038
(p0) movi r14 = 1176    ; +0x0040
(p0) movi r15 = 487    ; +0x0048
(p0) movi r16 = 62    ; +0x0050
(p0) movi r17 = 1619    ; +0x0058
(p0) movi r18 = 663    ; +0x0060
(p0) movi r19 = 181    ; +0x0068
(p0) st8 [r3 + 0] = r12    ; +0x0070
(p0) st8 [r3 + 8] = r14    ; +0x0078
(p0) st8 [r3 + 16] = r10    ; +0x0080
(p0) st8 [r3 + 24] = r13    ; +0x0088
(p0) and r6 = r1, r4    ; +0x0090
(p0) cmp.eq p2 = r6, r0    ; +0x0098
(p2) out r2    ; +0x00a0
(p0) ld8 r16 = [r3 + 40]    ; +0x00a8
(p0) or r19 = r19, r19    ; +0x00b0
(p0) sub r19 = r19, r13    ; +0x00b8
(p0) shr r15 = r10, r16    ; +0x00c0
(p0) and r6 = r14, r4    ; +0x00c8
(p0) cmp.eq p3 = r6, r0    ; +0x00d0
(p3) and r13 = r12, r14    ; +0x00d8
(p3) or r17 = r11, r19    ; +0x00e0
(p0) addi r6 = r12, -1818    ; +0x00e8
(p0) cmp.lt p4 = r6, r0    ; +0x00f0
(p4) br +24    ; +0x00f8
(p0) add r15 = r14, r4    ; +0x0100
(p0) add r16 = r13, r4    ; +0x0108
(p0) addi r6 = r14, -1027    ; +0x0110
(p0) cmp.lt p5 = r6, r0    ; +0x0118
(p5) br +24    ; +0x0120
(p0) add r18 = r14, r4    ; +0x0128
(p0) add r13 = r11, r4    ; +0x0130
(p0) st8 [r3 + 1080] = r13    ; +0x0138
(p0) and r6 = r1, r4    ; +0x0140
(p0) cmp.eq p6 = r6, r0    ; +0x0148
(p6) out r2    ; +0x0150
(p0) addi r12 = r12, -91    ; +0x0158
(p0) and r6 = r1, r4    ; +0x0160
(p0) cmp.eq p7 = r6, r0    ; +0x0168
(p7) out r2    ; +0x0170
(p0) st8 [r3 + 1072] = r15    ; +0x0178
(p0) and r6 = r12, r4    ; +0x0180
(p0) cmp.eq p2 = r6, r0    ; +0x0188
(p2) and r14 = r18, r19    ; +0x0190
(p2) sub r15 = r17, r11    ; +0x0198
(p0) st8 [r3 + 24] = r17    ; +0x01a0
(p0) ld8 r15 = [r3 + 32]    ; +0x01a8
(p0) and r6 = r11, r4    ; +0x01b0
(p0) cmp.eq p3 = r6, r0    ; +0x01b8
(p3) add r11 = r15, r13    ; +0x01c0
(p3) xor r19 = r10, r16    ; +0x01c8
(p3) and r14 = r12, r11    ; +0x01d0
(p0) add r2 = r2, r15    ; +0x01d8
(p0) addi r1 = r1, -1    ; +0x01e0
(p0) cmp.lt p1 = r0, r1    ; +0x01e8
(p1) br -352    ; +0x01f0
(p0) out r2    ; +0x01f8
(p0) halt    ; +0x0200
(p0) movi r40 = 3    ; +0x0208
(p0) movi r41 = 4    ; +0x0210
(p0) movi r42 = 5    ; +0x0218
(p0) movi r43 = 6    ; +0x0220
(p0) add r2 = r2, r4    ; +0x0228
(p0) ret r31    ; +0x0230
(p0) movi r40 = 4    ; +0x0238
(p0) movi r41 = 5    ; +0x0240
(p0) movi r42 = 6    ; +0x0248
(p0) movi r43 = 7    ; +0x0250
(p0) add r2 = r2, r4    ; +0x0258
(p0) ret r31    ; +0x0260
