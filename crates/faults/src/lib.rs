//! Single-bit fault-injection campaigns.
//!
//! Statistical fault injection is the alternative AVF methodology the paper
//! cites (Kim & Somani; Wang et al.): strike random (cycle, entry, bit)
//! coordinates of the instruction queue, follow each fault through the
//! timing model under a chosen detection model, and classify the final
//! outcome against the golden run's output — reproducing the paper's
//! Figure 1 taxonomy empirically:
//!
//! 1. benign — the faulty bit was never read (idle, Ex-ACE, discarded);
//! 2. SDC — no detection and the program output changed;
//! 3. false DUE — a machine check fired although the output would have
//!    been unaffected;
//! 4. true DUE — a machine check fired and the output would indeed have
//!    been corrupted;
//! 5. suppressed — π-bit tracking proved the error harmless and stayed
//!    silent (split into genuinely-safe and the rare unsound case where
//!    the output would actually have changed, which the campaign reports
//!    honestly as `SuppressedSdc`).
//!
//! Campaign estimates converge to the analytic AVFs of `ses-avf`, which is
//! exercised as an integration-level cross-validation.
//!
//! # Example
//!
//! ```
//! use ses_faults::{Campaign, CampaignConfig};
//! use ses_pipeline::DetectionModel;
//! use ses_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::quick("fi-demo", 5);
//! let config = CampaignConfig {
//!     injections: 20,
//!     seed: 1,
//!     detection: DetectionModel::Parity { tracking: None },
//!     ..CampaignConfig::default()
//! };
//! let report = Campaign::prepare(&spec, config)?.run();
//! assert_eq!(report.total(), 20);
//! # Ok::<(), ses_types::SesError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod adaptive;
mod campaign;
mod ecc_campaign;
mod outcome;
mod pattern;
mod recovery;
mod report;

pub use adaptive::{
    build_strata, build_strata_with, AdaptiveCampaignConfig, AdaptiveCampaignReport,
    AdaptiveSession, MetricKind, PatternModel, StratumReport,
};
pub use campaign::{Campaign, CampaignConfig, DetailedReport, UniformRun};
pub use ecc_campaign::{read_probability, run_ecc_campaign, EccCampaignConfig, EccCampaignReport};
pub use outcome::Outcome;
pub use pattern::{
    class_instances, mask_for_class, PatternDistribution, ResidualModel, StrikePattern,
};
pub use recovery::{LatencyDistribution, RecoveryDecision, RecoveryPolicy, RecoveryReport};
pub use report::{CampaignPerf, CampaignReport, PruneReport};
