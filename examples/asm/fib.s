; Fibonacci: print fib(1)..fib(12), then a deliberately dead shadow value.
; Assembled and executed by `ser-repro run-asm examples/asm/fib.s`.
	movi r1 = 12          ; counter
	movi r2 = 0           ; fib(n-1)
	movi r3 = 1           ; fib(n)
loop:
	add  r4 = r2, r3      ; next
	mul  r20 = r4, r4     ; dead: r20 is never read
	out  r3
	add  r2 = r3, r0
	add  r3 = r4, r0
	addi r1 = r1, -1
	cmp.lt p1 = r0, r1
	(p1) br loop
	halt
